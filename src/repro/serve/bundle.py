"""Versioned, frozen model bundles for the serving layer.

A :class:`ModelBundle` is the deployment artifact of a trained pipeline
(:class:`repro.learn.NSHD` / ``BaselineHD`` / ``VanillaHD``): every array
inference needs — CNN extractor weights, manifold FC, projection (or
nonlinear basis), class hypervectors, scaler statistics — captured into a
single atomic, CRC-verified archive (:mod:`repro.nn.serialize`) together
with a JSON provenance block (git SHA, config fingerprint, creation
time, pipeline topology) stored as the ``"bundle"`` manifest section.

Bundles are *frozen*: they carry no optimizer state, no RNG state, no
training history — exactly the inference closure and nothing else.  Two
deployment transforms can be applied at export time:

* ``binarize=True`` hard-quantizes the class hypervectors to bipolar
  form, enabling the engine's bit-packed XOR-popcount fast path
  (Schmuck-style dense binary HD inference).
* ``quantize_bits=8`` stores the manifold FC weights (and, for
  non-binarized bundles, the class matrix) as symmetric int8 payloads —
  the Vitis-AI-style deployment path of :mod:`repro.hardware.quantize`.

:meth:`ModelBundle.verify` re-reads an archive with CRC enforcement and
structurally validates the arrays against the provenance block, so a
serving process can refuse a torn or mismatched artifact before it ever
answers a request.
"""

from __future__ import annotations

import copy
import time
from typing import Any, Dict, List, Optional

import numpy as np

from ..hardware.quantize import QuantizedTensor, quantize_symmetric
from ..hd.hypervector import hard_quantize, is_bipolar
from ..nn.serialize import (CheckpointError, load_state_with_manifest,
                            manifest_section, save_state)
from ..pipeline import (CompileError, CompilePlan, StageError, StageGraph)
from ..telemetry import (config_fingerprint, decode_non_finite,
                         encode_non_finite, git_info)

__all__ = ["BUNDLE_VERSION", "BUNDLE_SECTION", "BundleError", "ModelBundle"]

#: Current bundle schema version (bumped on incompatible layout changes).
BUNDLE_VERSION = 1

#: Manifest section name carrying the bundle provenance block.
BUNDLE_SECTION = "bundle"


class BundleError(RuntimeError):
    """A model bundle is missing, malformed, or incompatible."""


def _spec_fields(spec: Dict[str, Any], *fields: str) -> Dict[str, Any]:
    """Project a stage spec onto the legacy ``info`` field names."""
    return {field: spec[field] for field in fields if field in spec}


class ModelBundle:
    """Frozen inference artifact: arrays + JSON provenance ``info``.

    Construct via :meth:`from_pipeline` (export) or :meth:`load`
    (deserialize); the raw constructor is for tests and tools that
    already hold a validated ``(arrays, info)`` pair.
    """

    def __init__(self, arrays: Dict[str, np.ndarray],
                 info: Dict[str, Any]):
        self.arrays = dict(arrays)
        self.info = dict(info)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    @classmethod
    def from_pipeline(cls, pipeline, config: Optional[Dict[str, Any]] = None,
                      binarize: bool = False,
                      quantize_bits: Optional[int] = None,
                      baseline_features: Optional[np.ndarray] = None,
                      baseline_labels: Optional[np.ndarray] = None,
                      baseline_sample: int = 2048,
                      baseline_bins: int = 10,
                      compile_passes=None,
                      compile_executors=None) -> "ModelBundle":
        """Capture a trained pipeline's inference closure.

        Parameters
        ----------
        pipeline:
            A *fitted* NSHD / BaselineHD / VanillaHD instance.
        config:
            The run configuration to fingerprint into the provenance
            block (free-form JSON-serializable dict).
        binarize:
            Hard-quantize the class hypervectors to bipolar ±1 at export
            time.  This is what unlocks the engine's bit-packed
            XOR-popcount path; for an already-bipolar class matrix it is
            a no-op.
        quantize_bits:
            When set (e.g. 8), store the manifold FC weight — and the
            class matrix, unless ``binarize`` already made it 1-bit — as
            symmetric integer payloads (``*.q`` / ``*.scale`` arrays).
        baseline_features:
            Training features at the *scale-stage input* (the same
            representation :meth:`InferenceEngine.predict_features`
            receives).  When given, a :class:`~repro.telemetry.quality.
            QualityBaseline` — per-feature mean/std/decile sketches,
            class priors, train margin/confidence quantiles — is
            captured into ``info["quality_baseline"]`` so the serving
            engine can run streaming drift monitors against it.
        baseline_labels:
            Training labels aligned with ``baseline_features`` (class
            priors).  Defaults to the pipeline's own predictions.
        baseline_sample:
            Deterministic (evenly spaced) subsample cap applied to the
            baseline rows; the sketches only need O(1k) rows.
        baseline_bins:
            Number of PSI bins in the per-feature sketches.
        compile_passes / compile_executors:
            The serving compile plan to persist under
            ``info["compile"]``: ``compile_passes`` is ``"all"`` or a
            list of registered pass names, ``compile_executors`` is
            ``"auto"`` or a ``{stage name → executor name}`` map (see
            :func:`repro.pipeline.compile_graph`).  The **arrays stay
            uncompiled/canonical** — compilation happens at engine
            build time, so the same bundle can be served interpreted or
            compiled.  Unknown names are rejected here, at export time.
            Bundles exported without a plan (including every
            pre-compile bundle) decode to the empty plan: passes
            default to none.
        """
        scaler = getattr(pipeline, "scaler", None)
        if scaler is None or scaler.mean is None:
            raise BundleError(
                "pipeline has no fitted FeatureScaler — bundle export "
                "requires a trained pipeline (call fit first)")
        trainer = getattr(pipeline, "trainer", None)
        if trainer is None or not np.any(trainer.class_matrix):
            raise BundleError(
                "pipeline has an uninitialized class-hypervector matrix — "
                "bundle export requires a trained pipeline")
        graph: Optional[StageGraph] = getattr(pipeline, "graph", None)
        if graph is None:
            raise BundleError(
                "pipeline has no StageGraph — bundle export requires a "
                "graph-building pipeline (NSHD / BaselineHD / VanillaHD)")

        # The graph is the single source of truth: its per-stage arrays
        # (historical flat key names) become the payload, its topology
        # rides in ``info["graph"]``, and the legacy info fields are
        # projections of the stage specs so pre-refactor consumers keep
        # reading the same provenance shape.
        arrays: Dict[str, np.ndarray] = dict(graph.state_arrays())
        topology = graph.topology()
        specs = {spec["name"]: spec for spec in topology["stages"]}

        info: Dict[str, Any] = {
            "bundle_version": BUNDLE_VERSION,
            "pipeline": type(pipeline).__name__,
            "dim": int(pipeline.dim),
            "num_classes": int(pipeline.num_classes),
            "created_at": float(time.time()),
            "git": git_info(),
            "config": dict(config or {}),
            "config_fingerprint": config_fingerprint(dict(config or {})),
            "binarized": bool(binarize),
            "quantize_bits": int(quantize_bits) if quantize_bits else None,
            "graph": topology,
        }

        if compile_passes is not None or compile_executors is not None:
            try:
                plan = CompilePlan(passes=compile_passes,
                                   executors=compile_executors)
            except CompileError as exc:
                raise BundleError(f"invalid compile plan: {exc}") from exc
            info["compile"] = plan.to_dict()

        info["encoder"] = dict(specs["encode"]["encoder"])
        if "extract" in specs:
            info["extractor"] = _spec_fields(
                specs["extract"], "model", "layer_index", "num_classes",
                "image_size", "width_mult", "feature_shape")
        else:
            info["extractor"] = None
            info["image_size"] = int(getattr(pipeline, "num_features", 0))
        if "reduce" in specs:
            info["manifold"] = _spec_fields(
                specs["reduce"], "feature_shape", "out_features",
                "pooling", "has_bias")
        else:
            info["manifold"] = None

        # -- deployment transforms (quantize / binarize) ---------------
        if "reduce" in specs and quantize_bits:
            weight = arrays.pop("manifold.weight")
            arrays.update(quantize_symmetric(
                weight, quantize_bits).to_arrays("manifold.weight"))

        classes = np.asarray(arrays.pop("classes"), dtype=np.float64)
        if binarize:
            arrays["classes"] = hard_quantize(classes)
        elif quantize_bits:
            arrays.update(quantize_symmetric(
                classes, quantize_bits).to_arrays("classes"))
        else:
            arrays["classes"] = classes

        # -- training quality baseline (drift-monitor reference) -------
        if baseline_features is not None:
            info["quality_baseline"] = cls._capture_baseline(
                graph, pipeline, baseline_features, baseline_labels,
                sample=baseline_sample, n_bins=baseline_bins)

        info["arrays"] = sorted(arrays)
        return cls(arrays, info)

    @staticmethod
    def _capture_baseline(graph: StageGraph, pipeline,
                          features: np.ndarray,
                          labels: Optional[np.ndarray],
                          sample: int = 2048,
                          n_bins: int = 10) -> Dict[str, Any]:
        """Sketch the training distribution for streaming drift checks.

        Runs the *pre-transform* stage slice (scale → encode) plus the
        classify stage's raw similarities on a deterministic subsample,
        so the stored margin/confidence quantiles reflect exactly the
        closure the bundle ships — not the live training objects.
        """
        from ..telemetry.quality import QualityBaseline

        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if labels is not None:
            labels = np.asarray(labels).reshape(-1)
            if labels.shape[0] != features.shape[0]:
                raise BundleError(
                    f"baseline_labels has {labels.shape[0]} rows but "
                    f"baseline_features has {features.shape[0]}")
        if sample and features.shape[0] > sample:
            # Evenly spaced subsample: deterministic, order-preserving,
            # and unbiased for shuffled training sets.
            idx = np.linspace(0, features.shape[0] - 1, int(sample))
            idx = np.unique(idx.astype(np.intp))
            features = features[idx]
            if labels is not None:
                labels = labels[idx]
        encoded = graph.run(features, start="scale", stop="classify")
        sims = graph.stage("classify").similarities(encoded)
        baseline = QualityBaseline.from_training(
            features, labels=labels,
            num_classes=int(pipeline.num_classes),
            similarities=np.asarray(sims), n_bins=n_bins)
        return baseline.to_dict()

    # ------------------------------------------------------------------
    # Online promotion (shadow → live derivation)
    # ------------------------------------------------------------------
    def promoted(self, class_matrix: np.ndarray,
                 generation: int = 1,
                 feedback_count: int = 0,
                 class_priors: Optional[np.ndarray] = None,
                 extra: Optional[Dict[str, Any]] = None) -> "ModelBundle":
        """Derive a version-bumped child bundle with a new class matrix.

        The online-learning promotion path: everything except the class
        hypervectors (extractor, manifold, encoder, scaler, feature
        sketches) is inherited from this bundle, the ``classes`` payload
        is replaced with the shadow matrix, and the provenance gains an
        ``info["online"]`` block plus a *new* config fingerprint (so
        ``/predict`` responses and reload summaries distinguish the
        generations).  The matrix may have **more rows** than the
        parent — class-incremental arrival — but never fewer, and the
        dimensionality must match.

        For a ``binarized`` parent the new matrix is re-quantized with
        :func:`~repro.hd.hypervector.hard_quantize` so the packed
        XOR-popcount path stays available; rows that were not touched
        by feedback stay bit-exact (``hard_quantize`` is the identity
        on ±1 rows).

        ``class_priors`` recomputes the quality-baseline class priors
        (required reading for class-incremental growth: the frozen
        training priors give a brand-new class zero mass, which would
        read as permanent prediction skew on ``/driftz``).  When the
        parent has a baseline and the label space grew, priors become
        **mandatory** — refusing to export is better than exporting a
        baseline that always fires.
        """
        classes = np.atleast_2d(np.asarray(class_matrix,
                                           dtype=np.float64))
        parent_k = int(self.info["num_classes"])
        dim = int(self.info["dim"])
        if classes.shape[1] != dim:
            raise BundleError(
                f"promoted class matrix has dim {classes.shape[1]}, "
                f"bundle encodes into dim {dim}")
        if classes.shape[0] < parent_k:
            raise BundleError(
                f"promoted class matrix has {classes.shape[0]} classes, "
                f"fewer than the parent's {parent_k} — class removal is "
                "not a promotion")
        if not np.isfinite(classes).all():
            raise BundleError("promoted class matrix contains NaN/Inf")
        if self.info.get("binarized"):
            classes = hard_quantize(classes)

        arrays = dict(self.arrays)
        # Drop any int8-quantized class payload: the promoted matrix is
        # stored as the authoritative float (or re-binarized) array.
        arrays.pop("classes.q", None)
        arrays.pop("classes.scale", None)
        arrays["classes"] = classes
        info = copy.deepcopy(self.info)
        info["num_classes"] = int(classes.shape[0])

        baseline_dict = info.get("quality_baseline")
        if class_priors is not None:
            if baseline_dict is None:
                raise BundleError(
                    "class_priors given but the parent bundle carries "
                    "no quality_baseline section")
            from ..telemetry.quality import QualityBaseline
            baseline = QualityBaseline.from_dict(baseline_dict)
            info["quality_baseline"] = \
                baseline.with_class_priors(class_priors).to_dict()
        elif baseline_dict is not None \
                and classes.shape[0] != parent_k:
            raise BundleError(
                "class-incremental promotion of a baselined bundle "
                "requires recomputed class_priors — the training "
                "priors give the new class zero mass and /driftz "
                "prediction skew would fire permanently")

        parent_fingerprint = info.get("config_fingerprint")
        online = {
            "generation": int(generation),
            "parent_fingerprint": parent_fingerprint,
            "feedback_count": int(feedback_count),
            "promoted_at": float(time.time()),
            "classes_added": int(classes.shape[0] - parent_k),
        }
        if extra:
            online.update(dict(extra))
        info["online"] = online
        info["created_at"] = float(time.time())
        info["config_fingerprint"] = config_fingerprint({
            "config": info.get("config", {}),
            "online_generation": int(generation),
            "parent": parent_fingerprint,
            "num_classes": int(classes.shape[0]),
        })
        info["arrays"] = sorted(arrays)
        child = ModelBundle(arrays, info)
        child.validate()
        return child

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Atomically write the bundle archive (CRC manifest included)."""
        save_state(
            self.arrays, path,
            meta={"kind": "model-bundle",
                  "bundle_version": int(self.info["bundle_version"])},
            sections={BUNDLE_SECTION: encode_non_finite(self.info)})

    @classmethod
    def load(cls, path: str, verify: bool = True) -> "ModelBundle":
        """Read a bundle; raises :class:`BundleError` on any mismatch."""
        try:
            state, manifest = load_state_with_manifest(path, verify=verify)
        except CheckpointError as exc:
            raise BundleError(str(exc)) from exc
        section = manifest_section(manifest, BUNDLE_SECTION)
        if section is None:
            raise BundleError(
                f"{path!r} is not a model bundle (no {BUNDLE_SECTION!r} "
                "manifest section) — it may be a training checkpoint")
        info = decode_non_finite(section)
        version = info.get("bundle_version")
        if not isinstance(version, int) or version < 1:
            raise BundleError(
                f"bundle {path!r} has an invalid version {version!r}")
        if version > BUNDLE_VERSION:
            raise BundleError(
                f"bundle {path!r} was written by a newer schema "
                f"(version {version} > supported {BUNDLE_VERSION})")
        return cls(state, info)

    @classmethod
    def verify(cls, path: str) -> Dict[str, Any]:
        """CRC-enforced load + structural validation; returns ``info``.

        Serving processes call this before answering requests: a torn
        archive, a missing array, or a shape that contradicts the
        provenance block all raise :class:`BundleError` here instead of
        producing garbage predictions later.
        """
        bundle = cls.load(path, verify=True)
        bundle.validate()
        return bundle.info

    # ------------------------------------------------------------------
    # Structural validation & typed accessors
    # ------------------------------------------------------------------
    def _require(self, *names: str) -> None:
        missing = [n for n in names if n not in self.arrays]
        if missing:
            raise BundleError(
                f"bundle is missing required arrays {missing} for "
                f"pipeline {self.info.get('pipeline')!r}")

    def validate(self) -> None:
        """Check that arrays exist and agree with the provenance block."""
        info = self.info
        dim = int(info["dim"])
        num_classes = int(info["num_classes"])
        self._require("scaler.mean", "scaler.std")

        enc = info.get("encoder") or {}
        in_features = int(enc.get("in_features", 0))
        if enc.get("type") == "random_projection":
            self._require("encoder.projection")
            shape = tuple(self.arrays["encoder.projection"].shape)
            if shape != (in_features, dim):
                raise BundleError(
                    f"encoder.projection has shape {shape}, provenance "
                    f"says ({in_features}, {dim})")
        elif enc.get("type") == "nonlinear":
            self._require("encoder.basis", "encoder.phase")
            shape = tuple(self.arrays["encoder.basis"].shape)
            if shape != (in_features, dim):
                raise BundleError(
                    f"encoder.basis has shape {shape}, provenance says "
                    f"({in_features}, {dim})")
        else:
            raise BundleError(f"unknown encoder type {enc.get('type')!r}")

        classes = self.class_matrix()
        if classes.shape != (num_classes, dim):
            raise BundleError(
                f"class matrix has shape {classes.shape}, provenance "
                f"says ({num_classes}, {dim})")
        if info.get("binarized") and not is_bipolar(classes):
            raise BundleError(
                "provenance claims a binarized class matrix but the "
                "stored values are not bipolar")

        manifold = info.get("manifold")
        if manifold is not None:
            weight = self.manifold_weight()
            pooled = self._pooled_count(manifold)
            expected = (int(manifold["out_features"]), pooled)
            if weight.shape != expected:
                raise BundleError(
                    f"manifold weight has shape {weight.shape}, "
                    f"provenance says {expected}")
            if manifold.get("has_bias"):
                self._require("manifold.bias")

        extractor = info.get("extractor")
        if extractor is not None:
            if not any(name.startswith("model.") for name in self.arrays):
                raise BundleError(
                    "provenance declares an extractor but the bundle "
                    "carries no model.* arrays")

    @staticmethod
    def _pooled_count(manifold_info: Dict[str, Any]) -> int:
        c, h, w = (int(s) for s in manifold_info["feature_shape"])
        if manifold_info.get("pooling"):
            return c * (h // 2) * (w // 2)
        return c * h * w

    # -- accessors ------------------------------------------------------
    def class_matrix(self) -> np.ndarray:
        """Float class-hypervector matrix (dequantized when int8)."""
        if "classes" in self.arrays:
            return np.asarray(self.arrays["classes"], dtype=np.float64)
        if "classes.q" in self.arrays:
            return QuantizedTensor.from_arrays(
                self.arrays, "classes").dequantize()
        raise BundleError("bundle has no class-hypervector payload")

    def manifold_weight(self) -> np.ndarray:
        """Float manifold FC weight (dequantized when int8)."""
        if "manifold.weight" in self.arrays:
            return np.asarray(self.arrays["manifold.weight"],
                              dtype=np.float64)
        if "manifold.weight.q" in self.arrays:
            return QuantizedTensor.from_arrays(
                self.arrays, "manifold.weight").dequantize()
        raise BundleError("bundle has no manifold weight payload")

    def manifold_bias(self) -> Optional[np.ndarray]:
        bias = self.arrays.get("manifold.bias")
        return None if bias is None else np.asarray(bias, dtype=np.float64)

    def model_state(self) -> Dict[str, np.ndarray]:
        """The extractor CNN's state dict (``model.`` prefix stripped)."""
        return {name[len("model."):]: value
                for name, value in self.arrays.items()
                if name.startswith("model.")}

    # ------------------------------------------------------------------
    # Stage graph
    # ------------------------------------------------------------------
    def graph_topology(self) -> Dict[str, Any]:
        """The bundle's stage-graph topology.

        New-format bundles carry it verbatim in ``info["graph"]``;
        pre-refactor bundles (no ``graph`` key) get an equivalent
        topology synthesized from the legacy ``encoder`` / ``extractor``
        / ``manifold`` provenance fields — the compatibility shim that
        keeps every old artifact loadable and servable.
        """
        topology = self.info.get("graph")
        if topology:
            return topology
        info = self.info
        stages: List[Dict[str, Any]] = []
        extractor = info.get("extractor")
        if extractor is not None:
            stages.append({"type": "extract", "name": "extract",
                           **extractor})
        else:
            stages.append({"type": "flatten", "name": "flatten"})
        stages.append({"type": "scale", "name": "scale"})
        manifold = info.get("manifold")
        if manifold is not None:
            stages.append({"type": "reduce", "name": "reduce", **manifold})
        stages.append({"type": "encode", "name": "encode",
                       "encoder": dict(info.get("encoder") or {})})
        stages.append({"type": "classify", "name": "classify",
                       "metric": "cosine"})
        return {"version": 1,
                "name": str(info.get("pipeline", "bundle")).lower(),
                "stages": stages}

    def build_graph(self, build_extractor: bool = True) -> StageGraph:
        """Frozen, executable :class:`StageGraph` for this bundle.

        Quantized payloads (int8 class matrix / manifold weight) are
        dequantized into the float arrays the stages expect; with
        ``build_extractor=False`` the (expensive to rebuild) CNN extract
        stage is dropped so the graph starts at the feature interface.
        """
        topology = dict(self.graph_topology())
        specs = list(topology.get("stages") or [])
        if not build_extractor:
            specs = [spec for spec in specs if spec.get("type") != "extract"]
        topology["stages"] = specs

        resolved: Dict[str, np.ndarray] = dict(self.arrays)
        resolved["classes"] = self.class_matrix()
        if any(spec.get("type") == "reduce" for spec in specs):
            resolved["manifold.weight"] = self.manifold_weight()
        try:
            return StageGraph.from_topology(topology, resolved)
        except StageError as exc:
            raise BundleError(
                f"bundle stage graph could not be built: {exc}") from exc

    def compile_plan(self) -> CompilePlan:
        """The persisted serving compile plan (empty for pre-compile
        bundles: no passes, no executors — they serve interpreted
        exactly as before)."""
        try:
            return CompilePlan.from_dict(self.info.get("compile"))
        except CompileError as exc:
            raise BundleError(
                f"bundle carries an invalid compile plan: {exc}") from exc

    @property
    def binary_classes(self) -> bool:
        """Whether the stored class matrix is strictly bipolar ±1."""
        return ("classes" in self.arrays
                and is_bipolar(np.asarray(self.arrays["classes"])))

    def nbytes(self) -> int:
        """Total payload size of all arrays in bytes."""
        return int(sum(np.asarray(a).nbytes for a in self.arrays.values()))

    def summary(self) -> List[str]:
        """Human-readable description lines (CLI / logs)."""
        info = self.info
        lines = [
            f"pipeline={info['pipeline']} dim={info['dim']} "
            f"classes={info['num_classes']}",
            f"config_fingerprint={info['config_fingerprint']} "
            f"git={info.get('git', {}).get('short_sha', 'unknown')}",
            f"binarized={info.get('binarized')} "
            f"quantize_bits={info.get('quantize_bits')}",
            f"arrays={len(self.arrays)} payload={self.nbytes()} B",
        ]
        return lines

    def __repr__(self) -> str:
        return (f"ModelBundle({self.info.get('pipeline')}, "
                f"dim={self.info.get('dim')}, "
                f"classes={self.info.get('num_classes')}, "
                f"arrays={len(self.arrays)})")
