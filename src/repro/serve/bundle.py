"""Versioned, frozen model bundles for the serving layer.

A :class:`ModelBundle` is the deployment artifact of a trained pipeline
(:class:`repro.learn.NSHD` / ``BaselineHD`` / ``VanillaHD``): every array
inference needs — CNN extractor weights, manifold FC, projection (or
nonlinear basis), class hypervectors, scaler statistics — captured into a
single atomic, CRC-verified archive (:mod:`repro.nn.serialize`) together
with a JSON provenance block (git SHA, config fingerprint, creation
time, pipeline topology) stored as the ``"bundle"`` manifest section.

Bundles are *frozen*: they carry no optimizer state, no RNG state, no
training history — exactly the inference closure and nothing else.  Two
deployment transforms can be applied at export time:

* ``binarize=True`` hard-quantizes the class hypervectors to bipolar
  form, enabling the engine's bit-packed XOR-popcount fast path
  (Schmuck-style dense binary HD inference).
* ``quantize_bits=8`` stores the manifold FC weights (and, for
  non-binarized bundles, the class matrix) as symmetric int8 payloads —
  the Vitis-AI-style deployment path of :mod:`repro.hardware.quantize`.

:meth:`ModelBundle.verify` re-reads an archive with CRC enforcement and
structurally validates the arrays against the provenance block, so a
serving process can refuse a torn or mismatched artifact before it ever
answers a request.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

import numpy as np

from ..hardware.quantize import QuantizedTensor, quantize_symmetric
from ..hd.encoders import NonlinearEncoder, RandomProjectionEncoder
from ..hd.hypervector import hard_quantize, is_bipolar
from ..nn.serialize import (CheckpointError, load_state_with_manifest,
                            manifest_section, save_state)
from ..telemetry import (config_fingerprint, decode_non_finite,
                         encode_non_finite, git_info)

__all__ = ["BUNDLE_VERSION", "BUNDLE_SECTION", "BundleError", "ModelBundle"]

#: Current bundle schema version (bumped on incompatible layout changes).
BUNDLE_VERSION = 1

#: Manifest section name carrying the bundle provenance block.
BUNDLE_SECTION = "bundle"


class BundleError(RuntimeError):
    """A model bundle is missing, malformed, or incompatible."""


def _encoder_spec(encoder) -> Dict[str, Any]:
    if isinstance(encoder, RandomProjectionEncoder):
        return {"type": "random_projection",
                "in_features": int(encoder.in_features),
                "dim": int(encoder.dim),
                "quantize": bool(encoder.quantize)}
    if isinstance(encoder, NonlinearEncoder):
        return {"type": "nonlinear",
                "in_features": int(encoder.in_features),
                "dim": int(encoder.dim),
                "quantize": bool(encoder.quantize)}
    raise BundleError(
        f"cannot bundle encoder of type {type(encoder).__name__}; "
        "supported: RandomProjectionEncoder, NonlinearEncoder")


class ModelBundle:
    """Frozen inference artifact: arrays + JSON provenance ``info``.

    Construct via :meth:`from_pipeline` (export) or :meth:`load`
    (deserialize); the raw constructor is for tests and tools that
    already hold a validated ``(arrays, info)`` pair.
    """

    def __init__(self, arrays: Dict[str, np.ndarray],
                 info: Dict[str, Any]):
        self.arrays = dict(arrays)
        self.info = dict(info)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    @classmethod
    def from_pipeline(cls, pipeline, config: Optional[Dict[str, Any]] = None,
                      binarize: bool = False,
                      quantize_bits: Optional[int] = None) -> "ModelBundle":
        """Capture a trained pipeline's inference closure.

        Parameters
        ----------
        pipeline:
            A *fitted* NSHD / BaselineHD / VanillaHD instance.
        config:
            The run configuration to fingerprint into the provenance
            block (free-form JSON-serializable dict).
        binarize:
            Hard-quantize the class hypervectors to bipolar ±1 at export
            time.  This is what unlocks the engine's bit-packed
            XOR-popcount path; for an already-bipolar class matrix it is
            a no-op.
        quantize_bits:
            When set (e.g. 8), store the manifold FC weight — and the
            class matrix, unless ``binarize`` already made it 1-bit — as
            symmetric integer payloads (``*.q`` / ``*.scale`` arrays).
        """
        scaler = getattr(pipeline, "scaler", None)
        if scaler is None or scaler.mean is None:
            raise BundleError(
                "pipeline has no fitted FeatureScaler — bundle export "
                "requires a trained pipeline (call fit first)")
        trainer = getattr(pipeline, "trainer", None)
        if trainer is None or not np.any(trainer.class_matrix):
            raise BundleError(
                "pipeline has an uninitialized class-hypervector matrix — "
                "bundle export requires a trained pipeline")

        arrays: Dict[str, np.ndarray] = {
            "scaler.mean": np.asarray(scaler.mean, dtype=np.float64),
            "scaler.std": np.asarray(scaler.std, dtype=np.float64),
        }
        info: Dict[str, Any] = {
            "bundle_version": BUNDLE_VERSION,
            "pipeline": type(pipeline).__name__,
            "dim": int(pipeline.dim),
            "num_classes": int(pipeline.num_classes),
            "created_at": float(time.time()),
            "git": git_info(),
            "config": dict(config or {}),
            "config_fingerprint": config_fingerprint(dict(config or {})),
            "binarized": bool(binarize),
            "quantize_bits": int(quantize_bits) if quantize_bits else None,
        }

        # -- encoder ---------------------------------------------------
        encoder = pipeline.encoder
        info["encoder"] = _encoder_spec(encoder)
        if isinstance(encoder, RandomProjectionEncoder):
            arrays["encoder.projection"] = np.asarray(encoder.projection,
                                                      dtype=np.float64)
        else:
            arrays["encoder.basis"] = np.asarray(encoder.basis,
                                                 dtype=np.float64)
            arrays["encoder.phase"] = np.asarray(encoder.phase,
                                                 dtype=np.float64)

        # -- extractor (truncated CNN) ---------------------------------
        extractor = getattr(pipeline, "extractor", None)
        if extractor is not None:
            model = extractor.model
            info["extractor"] = {
                "model": model.name,
                "layer_index": int(extractor.layer_index),
                "num_classes": int(model.num_classes),
                "image_size": int(model.image_size),
                "width_mult": float(getattr(model, "width_mult", 1.0)),
                "feature_shape": [int(s) for s in extractor.feature_shape],
            }
            for name, value in model.state_dict().items():
                arrays[f"model.{name}"] = np.asarray(value)
        else:
            info["extractor"] = None
            info["image_size"] = int(getattr(pipeline, "num_features", 0))

        # -- manifold FC -----------------------------------------------
        manifold = getattr(pipeline, "manifold", None)
        if manifold is not None:
            weight = np.asarray(manifold.fc.weight.data, dtype=np.float64)
            bias = (np.asarray(manifold.fc.bias.data, dtype=np.float64)
                    if manifold.fc.bias is not None else None)
            info["manifold"] = {
                "feature_shape": [int(s) for s in manifold.feature_shape],
                "out_features": int(manifold.out_features),
                "pooling": bool(manifold.pooling),
                "has_bias": bias is not None,
            }
            if quantize_bits:
                arrays.update(quantize_symmetric(
                    weight, quantize_bits).to_arrays("manifold.weight"))
            else:
                arrays["manifold.weight"] = weight
            if bias is not None:
                arrays["manifold.bias"] = bias
        else:
            info["manifold"] = None

        # -- class hypervectors ----------------------------------------
        classes = np.asarray(trainer.class_matrix, dtype=np.float64)
        if binarize:
            arrays["classes"] = hard_quantize(classes)
        elif quantize_bits:
            arrays.update(quantize_symmetric(
                classes, quantize_bits).to_arrays("classes"))
        else:
            arrays["classes"] = classes

        info["arrays"] = sorted(arrays)
        return cls(arrays, info)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Atomically write the bundle archive (CRC manifest included)."""
        save_state(
            self.arrays, path,
            meta={"kind": "model-bundle",
                  "bundle_version": int(self.info["bundle_version"])},
            sections={BUNDLE_SECTION: encode_non_finite(self.info)})

    @classmethod
    def load(cls, path: str, verify: bool = True) -> "ModelBundle":
        """Read a bundle; raises :class:`BundleError` on any mismatch."""
        try:
            state, manifest = load_state_with_manifest(path, verify=verify)
        except CheckpointError as exc:
            raise BundleError(str(exc)) from exc
        section = manifest_section(manifest, BUNDLE_SECTION)
        if section is None:
            raise BundleError(
                f"{path!r} is not a model bundle (no {BUNDLE_SECTION!r} "
                "manifest section) — it may be a training checkpoint")
        info = decode_non_finite(section)
        version = info.get("bundle_version")
        if not isinstance(version, int) or version < 1:
            raise BundleError(
                f"bundle {path!r} has an invalid version {version!r}")
        if version > BUNDLE_VERSION:
            raise BundleError(
                f"bundle {path!r} was written by a newer schema "
                f"(version {version} > supported {BUNDLE_VERSION})")
        return cls(state, info)

    @classmethod
    def verify(cls, path: str) -> Dict[str, Any]:
        """CRC-enforced load + structural validation; returns ``info``.

        Serving processes call this before answering requests: a torn
        archive, a missing array, or a shape that contradicts the
        provenance block all raise :class:`BundleError` here instead of
        producing garbage predictions later.
        """
        bundle = cls.load(path, verify=True)
        bundle.validate()
        return bundle.info

    # ------------------------------------------------------------------
    # Structural validation & typed accessors
    # ------------------------------------------------------------------
    def _require(self, *names: str) -> None:
        missing = [n for n in names if n not in self.arrays]
        if missing:
            raise BundleError(
                f"bundle is missing required arrays {missing} for "
                f"pipeline {self.info.get('pipeline')!r}")

    def validate(self) -> None:
        """Check that arrays exist and agree with the provenance block."""
        info = self.info
        dim = int(info["dim"])
        num_classes = int(info["num_classes"])
        self._require("scaler.mean", "scaler.std")

        enc = info.get("encoder") or {}
        in_features = int(enc.get("in_features", 0))
        if enc.get("type") == "random_projection":
            self._require("encoder.projection")
            shape = tuple(self.arrays["encoder.projection"].shape)
            if shape != (in_features, dim):
                raise BundleError(
                    f"encoder.projection has shape {shape}, provenance "
                    f"says ({in_features}, {dim})")
        elif enc.get("type") == "nonlinear":
            self._require("encoder.basis", "encoder.phase")
            shape = tuple(self.arrays["encoder.basis"].shape)
            if shape != (in_features, dim):
                raise BundleError(
                    f"encoder.basis has shape {shape}, provenance says "
                    f"({in_features}, {dim})")
        else:
            raise BundleError(f"unknown encoder type {enc.get('type')!r}")

        classes = self.class_matrix()
        if classes.shape != (num_classes, dim):
            raise BundleError(
                f"class matrix has shape {classes.shape}, provenance "
                f"says ({num_classes}, {dim})")
        if info.get("binarized") and not is_bipolar(classes):
            raise BundleError(
                "provenance claims a binarized class matrix but the "
                "stored values are not bipolar")

        manifold = info.get("manifold")
        if manifold is not None:
            weight = self.manifold_weight()
            pooled = self._pooled_count(manifold)
            expected = (int(manifold["out_features"]), pooled)
            if weight.shape != expected:
                raise BundleError(
                    f"manifold weight has shape {weight.shape}, "
                    f"provenance says {expected}")
            if manifold.get("has_bias"):
                self._require("manifold.bias")

        extractor = info.get("extractor")
        if extractor is not None:
            if not any(name.startswith("model.") for name in self.arrays):
                raise BundleError(
                    "provenance declares an extractor but the bundle "
                    "carries no model.* arrays")

    @staticmethod
    def _pooled_count(manifold_info: Dict[str, Any]) -> int:
        c, h, w = (int(s) for s in manifold_info["feature_shape"])
        if manifold_info.get("pooling"):
            return c * (h // 2) * (w // 2)
        return c * h * w

    # -- accessors ------------------------------------------------------
    def class_matrix(self) -> np.ndarray:
        """Float class-hypervector matrix (dequantized when int8)."""
        if "classes" in self.arrays:
            return np.asarray(self.arrays["classes"], dtype=np.float64)
        if "classes.q" in self.arrays:
            return QuantizedTensor.from_arrays(
                self.arrays, "classes").dequantize()
        raise BundleError("bundle has no class-hypervector payload")

    def manifold_weight(self) -> np.ndarray:
        """Float manifold FC weight (dequantized when int8)."""
        if "manifold.weight" in self.arrays:
            return np.asarray(self.arrays["manifold.weight"],
                              dtype=np.float64)
        if "manifold.weight.q" in self.arrays:
            return QuantizedTensor.from_arrays(
                self.arrays, "manifold.weight").dequantize()
        raise BundleError("bundle has no manifold weight payload")

    def manifold_bias(self) -> Optional[np.ndarray]:
        bias = self.arrays.get("manifold.bias")
        return None if bias is None else np.asarray(bias, dtype=np.float64)

    def model_state(self) -> Dict[str, np.ndarray]:
        """The extractor CNN's state dict (``model.`` prefix stripped)."""
        return {name[len("model."):]: value
                for name, value in self.arrays.items()
                if name.startswith("model.")}

    @property
    def binary_classes(self) -> bool:
        """Whether the stored class matrix is strictly bipolar ±1."""
        return ("classes" in self.arrays
                and is_bipolar(np.asarray(self.arrays["classes"])))

    def nbytes(self) -> int:
        """Total payload size of all arrays in bytes."""
        return int(sum(np.asarray(a).nbytes for a in self.arrays.values()))

    def summary(self) -> List[str]:
        """Human-readable description lines (CLI / logs)."""
        info = self.info
        lines = [
            f"pipeline={info['pipeline']} dim={info['dim']} "
            f"classes={info['num_classes']}",
            f"config_fingerprint={info['config_fingerprint']} "
            f"git={info.get('git', {}).get('short_sha', 'unknown')}",
            f"binarized={info.get('binarized')} "
            f"quantize_bits={info.get('quantize_bits')}",
            f"arrays={len(self.arrays)} payload={self.nbytes()} B",
        ]
        return lines

    def __repr__(self) -> str:
        return (f"ModelBundle({self.info.get('pipeline')}, "
                f"dim={self.info.get('dim')}, "
                f"classes={self.info.get('num_classes')}, "
                f"arrays={len(self.arrays)})")
