"""Tracing gate: boot a traced fleet, stitch every request's spans
across processes, and assert the tree is shaped right.

Boots a real 4-worker fleet (each worker a ``python -m repro.serve``
subprocess armed with ``REPRO_TRACE_DIR``) behind an in-process
:class:`~repro.serve.router.Router` with request tracing on, fires
distinct ``/predict`` requests, then SIGKILLs one worker mid-run —
the supervisor's probes are deliberately slowed so the dead worker
stays in rotation and the router *must* take the failover-retry path.

Every process exports its spans as JSONL (``trace-<service>-<pid>
.jsonl``); the gate stitches them with
:func:`~repro.telemetry.stitch_traces` and asserts, per request:

* the trace id echoed in the response's ``X-Trace-Id`` is present and
  stitches to **exactly one** root (``complete=True``);
* the root is the router's ``router.request`` span and each worker-side
  ``server.request`` span's parent is one of the router's
  ``router.attempt`` spans (the traceparent hop worked);
* the tree reaches through the batcher into the stage graph:
  ``serve.batcher.queue`` / ``serve.batcher.dispatch`` /
  ``serve.predict`` plus at least one ``stage.*`` span;
* at least one post-kill request shows a real failover: >= 2 attempts
  on distinct workers, a ``router.retry_backoff`` span, and an errored
  first attempt.

It also exercises the live observability surface (``/tracez`` lookup,
``/requestz`` log, trace-id echo on 404/400 errors) and gates the
tracing-**disabled** span overhead at < 5% (best of 3), so the
always-on hub hook stays effectively free when tracing is off.

Wired into ``scripts/run_all.sh`` via ``scripts/check_trace.sh``.
"""

import argparse
import glob
import http.client
import json
import os
import shutil
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from serve_bench import synthetic_bundle  # noqa: E402

from repro.serve import Router, Supervisor  # noqa: E402
from repro.telemetry import (disable_request_tracing,  # noqa: E402
                             disabled_request_trace_overhead,
                             enable_request_tracing, read_trace_jsonl,
                             render_trace_tree, stitch_traces)
from repro.utils.rng import fresh_rng  # noqa: E402


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="gate the end-to-end request tracing path "
                    "(stitched parentage, failover spans, overhead)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--requests", type=int, default=12,
                        help="traced requests per half (before/after "
                             "the worker kill)")
    parser.add_argument("--dim", type=int, default=512)
    parser.add_argument("--features", type=int, default=32)
    parser.add_argument("--classes", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--overhead-limit", type=float, default=1.05,
                        help="tracing-disabled span cost ceiling "
                             "(hooked/baseline, median of 3)")
    parser.add_argument("--skip-overhead", action="store_true",
                        help="skip the microbenchmark (loaded CI hosts)")
    return parser.parse_args(argv)


def http_request(host, port, method, path, payload=None, timeout=15.0):
    """One request → (status, parsed json body, headers dict)."""
    conn = http.client.HTTPConnection(host, int(port), timeout=timeout)
    try:
        body = None
        headers = {}
        if payload is not None:
            body = payload if isinstance(payload, bytes) \
                else json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body, headers)
        response = conn.getresponse()
        raw = response.read()
        try:
            parsed = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            parsed = {}
        return response.status, parsed, dict(response.getheaders())
    finally:
        conn.close()


def span_names(entry) -> set:
    return {str(s.get("name", "")) for s in entry["spans"]}


def spans_named(entry, name):
    return [s for s in entry["spans"] if s.get("name") == name]


def main(argv=None) -> int:
    args = parse_args(argv)
    failures = []

    def check(condition, label):
        print(("PASS" if condition else "FAIL") + f"  {label}")
        if not condition:
            failures.append(label)

    # -- overhead gate first, while the hub is still dormant ----------
    if not args.skip_overhead:
        # Gate on the best of 3 calls: the dormant hook's true cost is
        # a lower bound of every run — scheduler noise only inflates.
        ratios = sorted(disabled_request_trace_overhead()
                        for _ in range(3))
        check(ratios[0] < args.overhead_limit,
              f"tracing-disabled span overhead {ratios[0]:.4f}x < "
              f"{args.overhead_limit}x (runs: "
              f"{', '.join(f'{r:.4f}' for r in ratios)})")

    workdir = tempfile.mkdtemp(prefix="check_trace_")
    trace_dir = os.path.join(workdir, "traces")
    os.makedirs(trace_dir, exist_ok=True)
    bundle_path = os.path.join(workdir, "bundle.npz")
    synthetic_bundle(args.dim, args.features, args.classes,
                     args.seed).save(bundle_path)

    rng = fresh_rng((args.seed, "check-trace-load"))
    features = rng.standard_normal((2 * args.requests, args.features))

    # Slow probes on purpose: after the SIGKILL the supervisor does not
    # notice for ~probe_interval_s, so the dead worker stays in rotation
    # and the router is guaranteed to hit connect errors → retries.
    # Breakers are parked wide open-thresholded so every failover is a
    # real errored attempt span, not a breaker skip.
    supervisor = Supervisor(
        bundle_path, workers=args.workers,
        probe_interval_s=5.0, probe_timeout_s=1.0,
        startup_timeout_s=60.0, trace_dir=trace_dir,
        worker_args=["--cache-size", "0"])
    router = Router(
        supervisor, port=0, max_attempts=3, retry_backoff_s=0.02,
        request_timeout_s=5.0,
        breaker_options={"failure_threshold": 10_000,
                         "min_requests": 10_000})
    enable_request_tracing(service="check-router", sample_rate=1.0,
                           trace_dir=trace_dir)
    try:
        supervisor.start()
        router.start()
        host, port = router.address
        print(f"fleet up: {args.workers} traced workers behind "
              f"{router.url} (spans → {trace_dir})")

        # -- phase 1: clean requests, all workers healthy -------------
        clean_ids = []
        for row in features[:args.requests]:
            status, payload, headers = http_request(
                host, port, "POST", "/predict",
                {"features": row.tolist()})
            if status != 200:
                check(False, f"clean /predict answered {status}")
                continue
            clean_ids.append(headers.get("X-Trace-Id"))
            if payload.get("request_id") != headers.get("X-Trace-Id"):
                check(False, "response request_id matches X-Trace-Id")
        check(len(clean_ids) == args.requests
              and all(clean_ids),
              f"all {args.requests} clean requests answered 200 with "
              f"a trace id")

        # -- phase 2: SIGKILL w0, keep firing → failover retries ------
        supervisor.kill_worker("w0")
        print("killed w0; supervisor probes are slow, so the router "
              "must discover it the hard way")
        failover_ids = []
        for row in features[args.requests:]:
            status, payload, headers = http_request(
                host, port, "POST", "/predict",
                {"features": row.tolist()})
            check(status == 200,
                  f"post-kill /predict answered {status} "
                  f"(trace {headers.get('X-Trace-Id')})")
            failover_ids.append(headers.get("X-Trace-Id"))

        # -- satellite: ids echo on error responses too ---------------
        status, payload, headers = http_request(host, port,
                                                "GET", "/nope")
        check(status == 404 and headers.get("X-Trace-Id"),
              "router 404 still echoes X-Trace-Id")
        status, payload, headers = http_request(
            host, port, "POST", "/predict", b"not json")
        check(status == 400 and headers.get("X-Trace-Id")
              and payload.get("request_id"),
              "router 400 carries X-Trace-Id header and request_id "
              "in the payload")
        worker_url = next(w.url for w in supervisor.workers
                          if w.worker_id != "w0")
        worker_host, worker_port = \
            worker_url.split("//", 1)[1].rsplit(":", 1)
        status, payload, headers = http_request(
            worker_host, worker_port, "GET", "/nope")
        check(status == 404 and headers.get("X-Trace-Id"),
              "worker 404 still echoes X-Trace-Id")

        # -- live observability surface on the router -----------------
        status, payload, _ = http_request(host, port, "GET", "/tracez")
        retained = [t.get("trace_id")
                    for t in payload.get("retained", [])] \
            if status == 200 else []
        check(status == 200 and retained,
              f"/tracez snapshot lists retained traces "
              f"({len(retained)})")
        probe_id = retained[0] if retained else (clean_ids or [""])[0]
        status, payload, _ = http_request(
            host, port, "GET", f"/tracez?trace_id={probe_id}")
        check(status == 200 and payload.get("trace_id") == probe_id
              and payload.get("spans"),
              f"/tracez?trace_id= returns the retained trace "
              f"({probe_id})")
        status, payload, _ = http_request(host, port, "GET",
                                          "/requestz?limit=5")
        check(status == 200
              and payload.get("appended", 0) >= 2 * args.requests
              and all(r.get("trace_id")
                      for r in payload.get("requests", [])),
              f"/requestz logged every request with its trace id "
              f"(appended={payload.get('appended')})")
        status, payload, _ = http_request(
            host, port, "GET", f"/requestz?trace_id={clean_ids[0]}")
        check(status == 200 and len(payload.get("requests", [])) == 1,
              "/requestz?trace_id= pulls one request's record")

        # -- stitch the JSONL exports across all processes ------------
        time.sleep(0.5)  # let the last spans hit their files
        files = sorted(glob.glob(os.path.join(trace_dir,
                                              "trace-*.jsonl")))
        check(len(files) >= args.workers + 1,
              f"router + every worker exported a trace file "
              f"({len(files)} files)")
        stitched = stitch_traces(read_trace_jsonl(*files))

        required = {"router.request", "router.attempt",
                    "server.request", "serve.batcher.queue",
                    "serve.batcher.dispatch", "serve.predict"}
        all_ids = [t for t in clean_ids + failover_ids if t]
        bad_shape = []
        for trace_id in all_ids:
            entry = stitched.get(trace_id)
            if entry is None:
                bad_shape.append((trace_id, "missing from export"))
                continue
            names = span_names(entry)
            attempts = spans_named(entry, "router.attempt")
            attempt_ids = {s["span_id"] for s in attempts}
            root_name = entry["roots"][0]["span"]["name"] \
                if entry["roots"] else "?"
            if not entry["complete"]:
                bad_shape.append((trace_id,
                                  f"{len(entry['roots'])} roots"))
            elif root_name != "router.request":
                bad_shape.append((trace_id, f"root={root_name}"))
            elif not required <= names:
                bad_shape.append(
                    (trace_id,
                     f"missing {sorted(required - names)}"))
            elif not any(n.startswith("stage.") for n in names):
                bad_shape.append((trace_id, "no stage.* span"))
            elif any(s.get("parent_id") not in attempt_ids
                     for s in spans_named(entry, "server.request")):
                bad_shape.append(
                    (trace_id, "server.request not parented to a "
                               "router.attempt"))
            elif len({str(s.get("service")) for s in entry["spans"]
                      if str(s.get("service")).startswith("worker-")}
                     ) < 1:
                bad_shape.append((trace_id, "no worker-side service"))
        for trace_id, why in bad_shape[:5]:
            print(f"  bad trace {trace_id}: {why}")
        check(not bad_shape,
              f"every request stitched to one well-formed "
              f"router→worker→batcher→stage tree "
              f"({len(all_ids) - len(bad_shape)}/{len(all_ids)})")

        retried = []
        for trace_id in failover_ids:
            entry = stitched.get(trace_id)
            if entry is None:
                continue
            attempts = spans_named(entry, "router.attempt")
            workers_hit = {str((s.get("attrs") or {}).get("worker"))
                           for s in attempts}
            if (len(attempts) >= 2 and len(workers_hit) >= 2
                    and spans_named(entry, "router.retry_backoff")
                    and any(s.get("status") == "error"
                            for s in attempts)):
                retried.append(trace_id)
        check(len(retried) >= 1,
              f"failover retry visible in the stitched trees "
              f"({len(retried)} trace(s) with an errored attempt, "
              f"backoff, and a second worker)")

        if retried:
            entry = stitched[retried[0]]
            print(f"\nstitched failover trace {retried[0]} "
                  f"(services: {', '.join(entry['services'])}):")
            for line in render_trace_tree(entry["roots"]).splitlines():
                print(f"  {line}")
        elif all_ids and stitched.get(all_ids[0]):
            entry = stitched[all_ids[0]]
            print(f"\nstitched trace {all_ids[0]}:")
            for line in render_trace_tree(entry["roots"]).splitlines():
                print(f"  {line}")
    finally:
        router.stop()
        supervisor.stop()
        disable_request_tracing()
        shutil.rmtree(workdir, ignore_errors=True)

    if failures:
        print(f"\nTRACE GATE FAILED: {len(failures)} assertion(s):",
              file=sys.stderr)
        for label in failures:
            print(f"  - {label}", file=sys.stderr)
        return 1
    print("\ntrace gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
