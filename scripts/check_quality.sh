#!/bin/bash
# Tier-2 model-quality check: streaming drift monitors + alert rules.
#   * unit tests: PSI / baseline sketches / rolling drift windows
#     (tests/test_telemetry_quality.py), the alert predicate + state
#     machine (tests/test_telemetry_alerts.py), and the bundle →
#     engine → server → router → CLI wiring
#     (tests/test_serve_quality.py);
#   * live gate: serve a baselined bundle through the CLI config path,
#     inject a covariate shift and a label-skew fault into the load
#     generator, and assert the declared alerts reach `firing` within
#     a bounded request budget while clean traffic raises none;
#   * overhead gate: monitors-on vs monitors-off serve P99 must stay
#     within 5% (best of 3 interleaved runs), ledgered + median/MAD
#     trend-gated like the bench pipelines.
# (see scripts/check_quality.py)
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== quality check: drift/alert unit tests =="
python -m pytest -q tests/test_telemetry_quality.py \
    tests/test_telemetry_alerts.py tests/test_serve_quality.py

echo
echo "== quality check: live drift-injection gate (shift / skew / overhead) =="
python scripts/check_quality.py

echo
echo "quality checks passed"
