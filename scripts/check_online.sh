#!/bin/bash
# Tier-2 online-learning check: guarded /feedback, shadow models, and
# gated atomic promotion on the serving path.
#   * unit tests: ShadowModel ingestion / holdout ring / rate limiting
#     (tests/test_online_shadow.py), promotion gates + bundle promotion
#     (tests/test_online_promotion.py), the HTTP /feedback | /promote |
#     /onlinez surface and [online] config parsing
#     (tests/test_serve_feedback.py), and the OnlineHD sparse-update
#     property tests (tests/test_online_and_sequences.py);
#   * live gate: serve a clustered bundle through the CLI config path,
#     apply a label shift via /feedback and require recovery to >= 90%
#     of clean accuracy within budget (with a replay-free forgetting
#     curve), feed a poisoned stream that must never promote, add a
#     brand-new class online with bit-exact parity for existing rows,
#     and hammer /predict across a promotion with zero torn responses;
#   * ledgered as kind="online" and median/MAD trend-gated like the
#     bench pipelines.
# `bash scripts/check_online.sh --inject-poison` runs only the
# poison-rejection self-check (see scripts/check_online.py).
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if [[ "${1:-}" == "--inject-poison" ]]; then
    echo "== online check: poison self-check only =="
    python scripts/check_online.py --inject-poison
    exit 0
fi

echo "== online check: shadow/promotion/feedback unit tests =="
python -m pytest -q tests/test_online_shadow.py \
    tests/test_online_promotion.py tests/test_serve_feedback.py \
    tests/test_online_and_sequences.py

echo
echo "== online check: live gate (recovery / poison / new-class / atomic) =="
python scripts/check_online.py

echo
echo "online checks passed"
