"""Pretrain and cache every teacher CNN used by the benchmarks.

Run once before ``pytest benchmarks/``; results land in ``.cache/`` and
all subsequent runs load them instantly.
"""
import time

from repro.experiments import MODEL_NAMES, get_teacher, load_dataset

# Accuracy-critical teachers first (vgg16 / efficientnet_b0 drive the
# Fig. 7-9/11 benches), then the remaining s10 models, then the
# many-class (CIFAR-100 stand-in) teachers.
PLAN = [("s10", "vgg16"), ("s10", "efficientnet_b0"),
        ("s10", "mobilenetv2"), ("s10", "efficientnet_b7"),
        ("s25", "vgg16")]

for dataset_key, model_name in PLAN:
    x_tr, y_tr, x_te, y_te = load_dataset(dataset_key)
    t0 = time.time()
    model = get_teacher(model_name, dataset_key, verbose=True)
    acc = model.accuracy(x_te, y_te)
    print(f"[{dataset_key}] {model_name}: test_acc={acc:.3f} "
          f"({time.time() - t0:.0f}s)", flush=True)
