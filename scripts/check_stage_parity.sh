#!/bin/bash
# Tier-2 stage-graph parity gate: prove on a freshly trained model that
# the single stage-graph program serves every consumer identically.
#   * train a small NSHD end-to-end (fresh CNN, fresh HD fit);
#   * pipeline.predict (live graph) == frozen-topology replay
#     (graph.topology() + state_arrays() -> StageGraph.from_topology);
#   * checkpoint round-trip: save_checkpoint persists the graph section,
#     a fresh pipeline restored from it predicts bit-exactly;
#   * serve round-trip: exported float bundle served by InferenceEngine
#     == pipeline.predict, from raw features and from images;
#   * packed round-trip: binarized bundle's XOR-popcount path == its own
#     float path bit-exactly (same bipolar operands, same ranking);
#   * compiled round-trip: the same bundles served through the graph
#     compiler (all fusion passes + threaded encode + packed classify)
#     predict bit-exactly what the interpreted engine predicts.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== stage parity: train -> freeze -> checkpoint -> serve =="
python - <<'EOF'
import os
import sys
import tempfile

import numpy as np

sys.path.insert(0, "src")

from repro.data import make_dataset, normalize_images  # noqa: E402
from repro.learn import NSHD  # noqa: E402
from repro.models import create_model, train_cnn  # noqa: E402
from repro.nn.serialize import (GRAPH_SECTION, load_manifest,  # noqa: E402
                                manifest_section)
from repro.pipeline import StageGraph  # noqa: E402
from repro.serve import InferenceEngine, ModelBundle  # noqa: E402

x_tr, y_tr, x_te, y_te = make_dataset(num_classes=4, num_train=96,
                                      num_test=40, seed=11)
x_tr, mean, std = normalize_images(x_tr)
x_te, _, _ = normalize_images(x_te, mean, std)

model = create_model("vgg16", num_classes=4, width_mult=0.125, seed=5)
train_cnn(model, x_tr, y_tr, epochs=1, batch_size=32, lr=2e-3, seed=5,
          augment=False)

pipeline = NSHD(model, layer_index=21, dim=256, reduced_features=16,
                seed=0)
pipeline.fit(x_tr, y_tr, epochs=2)
labels = np.asarray(pipeline.predict(x_te))
raw = pipeline.extractor.extract(x_te)
print(f"trained NSHD: {pipeline.graph.describe()}")

# 1. Frozen-topology replay == live graph.
frozen = StageGraph.from_topology(pipeline.graph.topology(),
                                  pipeline.graph.state_arrays())
np.testing.assert_array_equal(frozen.run(np.asarray(x_te)), labels)
print("frozen topology replay == live pipeline (bit-exact)")

with tempfile.TemporaryDirectory() as tmp:
    # 2. Checkpoint round-trip carries the graph section and restores.
    ckpt = os.path.join(tmp, "parity_ckpt.npz")
    pipeline.save_checkpoint(ckpt, epoch=2)
    section = manifest_section(load_manifest(ckpt), GRAPH_SECTION)
    assert section is not None, "checkpoint missing graph topology"
    restored = NSHD(model, layer_index=21, dim=256, reduced_features=16,
                    seed=0)
    restored.load_checkpoint(ckpt)
    np.testing.assert_array_equal(restored.predict(x_te), labels)
    print("checkpoint round-trip (with graph section) == trained model")

    # 3. Serve round-trip: float bundle through the graph executor.
    float_path = os.path.join(tmp, "parity_bundle.npz")
    ModelBundle.from_pipeline(pipeline,
                              config={"gate": "stage_parity"}).save(
                                  float_path)
    engine = InferenceEngine.from_path(float_path, cache_size=0)
    assert engine.graph.names == pipeline.graph.names, \
        "served topology != training topology"
    np.testing.assert_array_equal(engine.predict_features(raw), labels)
    np.testing.assert_array_equal(engine.predict(x_te), labels)
    print("served float bundle == pipeline.predict (features and images)")

    # 4. Packed round-trip: XOR-popcount path == the same bundle's
    #    float path, bit-exactly.
    packed_path = os.path.join(tmp, "parity_bundle_packed.npz")
    ModelBundle.from_pipeline(pipeline, config={"gate": "stage_parity"},
                              binarize=True).save(packed_path)
    packed = InferenceEngine.from_path(packed_path, cache_size=0)
    assert packed.use_packed, "binarized bundle did not select packed path"
    floating = InferenceEngine.from_path(packed_path, use_packed=False,
                                         cache_size=0)
    np.testing.assert_array_equal(packed.predict_features(raw),
                                  floating.predict_features(raw))
    print("packed XOR-popcount path == float path on binarized bundle")

    # 5. Compiled round-trip: run the gate twice — passes off
    #    (interpreted, step 3 above) vs all fusion passes + threaded
    #    encode executor (+ packed classify on the binarized bundle).
    #    Predictions must stay bit-exact.
    encode_name = next(n for n, s in zip(engine.graph.names,
                                         engine.graph.stages)
                       if getattr(s, "encoder_type", None) is not None)
    compiled = InferenceEngine.from_path(
        float_path, cache_size=0, passes="all",
        executors={encode_name: "threaded"})
    assert compiled.compile_passes, "no fusion pass applied"
    assert compiled.executor_plan.get(encode_name) == "threaded", \
        f"threaded encode not bound: {compiled.executor_plan}"
    np.testing.assert_array_equal(compiled.predict_features(raw), labels)
    np.testing.assert_array_equal(compiled.predict(x_te), labels)
    print(f"compiled engine (passes={compiled.compile_passes}, "
          f"executors={compiled.executor_plan}) == interpreted "
          f"(bit-exact)")

    compiled_packed = InferenceEngine.from_path(
        packed_path, cache_size=0, passes="all", executors="auto")
    assert compiled_packed.use_packed, \
        "compiled binarized bundle did not select packed executor"
    np.testing.assert_array_equal(compiled_packed.predict_features(raw),
                                  packed.predict_features(raw))
    print("compiled packed engine == interpreted packed engine "
          "(bit-exact)")

print("stage parity: OK")
EOF

echo
echo "stage parity checks passed"
