"""Serving benchmark: closed-loop load generator over the micro-batcher.

Measures three ways of answering the same prediction stream with one
:class:`~repro.serve.engine.InferenceEngine`:

1. **single** — the naive per-request loop: one ``predict_features``
   call per sample (the baseline every serving stack is judged
   against);
2. **batched** — engine calls at ``--batch`` samples per GEMM (the
   upper bound micro-batching can reach);
3. **closed-loop** — ``--clients`` generator threads submitting
   samples through the :class:`~repro.serve.batching.MicroBatcher`,
   recording per-request latency; reports throughput and latency
   P50/P95/P99;
4. **http** — the same closed loop over a real
   :class:`~repro.serve.server.ModelServer` socket, each client thread
   holding one persistent keep-alive ``http.client.HTTPConnection``
   (a stale pooled connection is replayed once on a fresh one, and
   both reconnects and hard connection errors are counted — a healthy
   run reuses every connection and reports zero of each).

The run is appended to the run ledger (``kind="serve"``) with the
latency quantiles, connection-error counts, and the batcher's
telemetry snapshot, and gated
against the rolling median+MAD baseline exactly like the training smoke
runs (``scripts/check_regression.sh``).  ``--min-speedup`` turns the
batched-vs-single ratio into an exit status for CI.

``--compile`` repeats the single/batched phases on a **compiled**
engine (all fusion passes; same bundle, same samples), asserts the
predictions stay bit-exact, and ledgers the compiled-vs-interpreted
delta as a second ``kind="compile"`` record gated against its own
median+MAD baseline.

By default the engine runs a **synthetic bundle** (random bipolar
projection + class hypervectors, identity scaler): throughput is a
function of shapes and dtypes, not weight values, and synthesizing
skips a minute of CNN smoke training.  Pass ``--bundle PATH`` to bench
a real exported bundle instead.

Usage::

    python scripts/serve_bench.py                       # synthetic, D=2048
    python scripts/serve_bench.py --requests 2000 --clients 8
    python scripts/serve_bench.py --bundle results/nshd.bundle.npz
"""

import argparse
import http.client
import json
import os
import sys
import threading
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import telemetry  # noqa: E402
from repro.serve import InferenceEngine, ModelBundle, ModelServer  # noqa: E402
from repro.serve.batching import MicroBatcher  # noqa: E402
from repro.serve.bundle import BUNDLE_VERSION  # noqa: E402
from repro.telemetry import (disable_request_tracing,  # noqa: E402
                             disabled_request_trace_overhead,
                             enable_request_tracing, get_flight_recorder,
                             render_trace_tree)
from repro.telemetry import regress  # noqa: E402
from repro.telemetry.ledger import (RunLedger, RunRecord,  # noqa: E402
                                    config_fingerprint, git_info)
from repro.utils.rng import fresh_rng  # noqa: E402


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="benchmark the serving engine and micro-batcher, "
                    "ledger the result, gate against the rolling baseline")
    parser.add_argument("--bundle", default=None,
                        help="path to an exported bundle (default: "
                             "synthesize a random binarized bundle)")
    parser.add_argument("--dim", type=int, default=2048,
                        help="hypervector dimensionality (synthetic)")
    parser.add_argument("--features", type=int, default=128,
                        help="input feature count (synthetic)")
    parser.add_argument("--classes", type=int, default=10,
                        help="class count (synthetic)")
    parser.add_argument("--requests", type=int, default=1024,
                        help="requests per measurement phase")
    parser.add_argument("--batch", type=int, default=32,
                        help="micro-batch size (acceptance floor: >= 32)")
    parser.add_argument("--clients", type=int, default=8,
                        help="closed-loop client threads")
    parser.add_argument("--workers", type=int, default=2,
                        help="micro-batcher worker threads")
    parser.add_argument("--max-latency-ms", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-http", action="store_true",
                        help="skip the HTTP keep-alive phase (sockets "
                             "through a real ModelServer)")
    parser.add_argument("--no-trace", action="store_true",
                        help="skip the traced HTTP phase (per-request "
                             "tracing A/B, slowest-trace report, "
                             "tracing-overhead ledger fields)")
    parser.add_argument("--float-path", action="store_true",
                        help="bench the float cosine path instead of the "
                             "bit-packed fast path")
    parser.add_argument("--compile", action="store_true",
                        help="also bench a compiled engine (all fusion "
                             "passes) against the interpreted one and "
                             "ledger the delta as kind=\"compile\"")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit nonzero unless batched/single "
                             "throughput ratio >= this")
    parser.add_argument("--ledger-dir",
                        default=os.path.join(REPO_ROOT, "results", "ledger"))
    parser.add_argument("--no-append", action="store_true")
    parser.add_argument("--no-gate", action="store_true")
    parser.add_argument("--json-out", default=None,
                        help="optional path for the raw result JSON")
    return parser.parse_args(argv)


def synthetic_bundle(dim: int, features: int, classes: int,
                     seed: int) -> ModelBundle:
    """A structurally-valid random bundle (throughput depends only on
    shapes, so random weights bench the same code path as real ones)."""
    rng = fresh_rng((seed, "serve-bench"))
    projection = np.where(rng.random((features, dim)) < 0.5, -1.0, 1.0)
    class_matrix = np.where(rng.random((classes, dim)) < 0.5, -1.0, 1.0)
    config = {"synthetic": True, "dim": dim, "features": features,
              "classes": classes, "seed": seed}
    arrays = {
        "scaler.mean": np.zeros(features),
        "scaler.std": np.ones(features),
        "encoder.projection": projection,
        "classes": class_matrix,
    }
    info = {
        "bundle_version": BUNDLE_VERSION,
        "pipeline": "SyntheticHD",
        "dim": dim, "num_classes": classes,
        "created_at": float(time.time()),
        "git": git_info(REPO_ROOT),
        "config": config,
        "config_fingerprint": config_fingerprint(config),
        "binarized": True, "quantize_bits": None,
        "encoder": {"type": "random_projection", "in_features": features,
                    "dim": dim, "quantize": True},
        "extractor": None, "manifold": None,
        "arrays": sorted(arrays),
    }
    return ModelBundle(arrays, info)


def bench_single(engine: InferenceEngine, samples: np.ndarray) -> dict:
    """Naive per-request loop: one predict call per sample."""
    t0 = telemetry.clock()
    for row in samples:
        engine.predict_features(row)
    elapsed = telemetry.clock() - t0
    return {"wall_s": elapsed,
            "throughput_rps": len(samples) / max(elapsed, 1e-9)}


def bench_batched(engine: InferenceEngine, samples: np.ndarray,
                  batch: int) -> dict:
    """Engine-level batching at ``batch`` samples per call."""
    t0 = telemetry.clock()
    for start in range(0, len(samples), batch):
        engine.predict_features(samples[start:start + batch])
    elapsed = telemetry.clock() - t0
    return {"wall_s": elapsed,
            "throughput_rps": len(samples) / max(elapsed, 1e-9)}


def bench_closed_loop(engine: InferenceEngine, samples: np.ndarray,
                      batch: int, clients: int, workers: int,
                      max_latency_ms: float) -> dict:
    """Closed-loop generator: ``clients`` threads, per-request latency."""
    latencies: list = [[] for _ in range(clients)]
    errors = [0] * clients
    shares = np.array_split(np.arange(len(samples)), clients)
    with MicroBatcher(engine.predict_features, max_batch_size=batch,
                      max_latency_ms=max_latency_ms, workers=workers,
                      default_timeout_s=30.0) as batcher:
        def client(cid: int) -> None:
            for i in shares[cid]:
                t0 = telemetry.clock()
                try:
                    batcher.submit(samples[i])
                except Exception:
                    errors[cid] += 1
                    continue
                latencies[cid].append(
                    1000.0 * (telemetry.clock() - t0))

        threads = [threading.Thread(target=client, args=(cid,))
                   for cid in range(clients)]
        t0 = telemetry.clock()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = telemetry.clock() - t0
        stats = dict(batcher.stats)
    lat = np.concatenate([np.asarray(chunk) for chunk in latencies]) \
        if any(latencies) else np.array([0.0])
    completed = int(stats.get("completed", 0))
    return {
        "wall_s": elapsed,
        "throughput_rps": completed / max(elapsed, 1e-9),
        "completed": completed,
        "errors": int(sum(errors)),
        "batches": int(stats.get("batches", 0)),
        "mean_batch": completed / max(1, int(stats.get("batches", 1))),
        "latency_ms": {
            "p50": float(np.percentile(lat, 50)),
            "p95": float(np.percentile(lat, 95)),
            "p99": float(np.percentile(lat, 99)),
            "max": float(lat.max()),
        },
    }


def bench_http(engine: InferenceEngine, samples: np.ndarray,
               batch: int, clients: int, workers: int,
               max_latency_ms: float,
               capture_traces: bool = False) -> dict:
    """Closed loop over a real socket with keep-alive reuse.

    Each client thread owns one persistent
    :class:`http.client.HTTPConnection` for its whole request share; a
    request that dies on a stale/broken connection is replayed once on
    a fresh one (counted as a reconnect) before it becomes a hard
    connection error.  Under normal operation both counts are zero —
    they are recorded in the ledger so a regression back to
    connection-per-request (or a server that starts dropping keep-alive)
    shows up in the baseline gate.

    ``capture_traces=True`` (the traced A/B phase) records each
    response's ``X-Trace-Id`` next to its latency, and the result gains
    ``slowest`` (10 slowest requests, slowest first) and ``failed``
    (every non-200/errored request) lists of ``(latency_ms, status,
    trace_id)`` for flight-recorder lookups.
    """
    latencies: list = [[] for _ in range(clients)]
    conn_errors = [0] * clients
    http_errors = [0] * clients
    reconnects = [0] * clients
    completed = [0] * clients
    records: list = [[] for _ in range(clients)]
    failed: list = [[] for _ in range(clients)]
    shares = np.array_split(np.arange(len(samples)), clients)
    bodies = [json.dumps({"features": samples[i].tolist()}).encode("ascii")
              for i in range(len(samples))]
    headers = {"Content-Type": "application/json"}

    server = ModelServer(engine, port=0, max_batch_size=batch,
                         max_latency_ms=max_latency_ms, workers=workers,
                         high_watermark=None, timeout_s=30.0).start()
    host, port = server.address
    try:
        def once(conn: http.client.HTTPConnection, i: int) -> tuple:
            conn.request("POST", "/predict", bodies[i], headers)
            response = conn.getresponse()
            response.read()
            return response.status, response.getheader("X-Trace-Id")

        def client(cid: int) -> None:
            conn = http.client.HTTPConnection(host, port, timeout=30.0)
            for i in shares[cid]:
                t0 = telemetry.clock()
                try:
                    status, trace_id = once(conn, int(i))
                except (http.client.HTTPException, OSError):
                    # Stale keep-alive connection: replay once, fresh.
                    conn.close()
                    reconnects[cid] += 1
                    conn = http.client.HTTPConnection(host, port,
                                                      timeout=30.0)
                    try:
                        status, trace_id = once(conn, int(i))
                    except (http.client.HTTPException, OSError):
                        conn_errors[cid] += 1
                        if capture_traces:
                            failed[cid].append((None, None, None))
                        conn.close()
                        conn = http.client.HTTPConnection(host, port,
                                                          timeout=30.0)
                        continue
                lat_ms = 1000.0 * (telemetry.clock() - t0)
                if status != 200:
                    http_errors[cid] += 1
                    if capture_traces:
                        failed[cid].append((lat_ms, status, trace_id))
                    continue
                completed[cid] += 1
                latencies[cid].append(lat_ms)
                if capture_traces:
                    records[cid].append((lat_ms, status, trace_id))
            conn.close()

        threads = [threading.Thread(target=client, args=(cid,))
                   for cid in range(clients)]
        t0 = telemetry.clock()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = telemetry.clock() - t0
    finally:
        server.stop()
    lat = np.concatenate([np.asarray(chunk) for chunk in latencies]) \
        if any(latencies) else np.array([0.0])
    done = int(sum(completed))
    out = {
        "wall_s": elapsed,
        "throughput_rps": done / max(elapsed, 1e-9),
        "completed": done,
        "connection_errors": int(sum(conn_errors)),
        "reconnects": int(sum(reconnects)),
        "http_errors": int(sum(http_errors)),
        "latency_ms": {
            "p50": float(np.percentile(lat, 50)),
            "p95": float(np.percentile(lat, 95)),
            "p99": float(np.percentile(lat, 99)),
            "max": float(lat.max()),
        },
    }
    if capture_traces:
        all_records = [r for chunk in records for r in chunk]
        all_records.sort(key=lambda r: -r[0])
        out["slowest"] = all_records[:10]
        out["failed"] = [r for chunk in failed for r in chunk]
    return out


def report_traces(traced: dict) -> None:
    """Print the slowest/failed requests with flight-recorder lookups."""
    recorder = get_flight_recorder()

    def describe(lat_ms, status, trace_id) -> None:
        lat = f"{lat_ms:8.2f}ms" if lat_ms is not None else "   (conn)"
        print(f"  {lat}  HTTP {status or '---'}  trace={trace_id}")
        found = recorder.lookup(trace_id) if trace_id else None
        if found is None:
            print("            (not retained by the flight recorder)")
            return
        print(f"            retained_for={','.join(found['retained_for'])} "
              f"spans={len(found['spans'])}")
        for line in render_trace_tree(found["tree"]).splitlines():
            print(f"            {line}")

    print(f"\nslowest {len(traced['slowest'])} traced requests:")
    for lat_ms, status, trace_id in traced["slowest"]:
        describe(lat_ms, status, trace_id)
    if traced["failed"]:
        print(f"\nfailed traced requests ({len(traced['failed'])}):")
        for lat_ms, status, trace_id in traced["failed"]:
            describe(lat_ms, status, trace_id)
    else:
        print("\nno failed traced requests")


def main(argv=None) -> int:
    args = parse_args(argv)
    telemetry.get_registry().reset()
    telemetry.get_tracer().reset()

    if args.bundle:
        bundle = ModelBundle.load(args.bundle)
    else:
        bundle = synthetic_bundle(args.dim, args.features, args.classes,
                                  args.seed)
    engine = InferenceEngine(
        bundle, use_packed=(False if args.float_path else None),
        cache_size=0, build_extractor=False)
    in_features = int(bundle.info["encoder"]["in_features"])
    rng = fresh_rng((args.seed, "serve-bench-load"))
    samples = rng.standard_normal((args.requests, in_features))

    # Warm-up: page in BLAS kernels and the packed class matrix.
    engine.predict_features(samples[: min(64, len(samples))])

    t_start = telemetry.clock()
    single = bench_single(engine, samples)
    batched = bench_batched(engine, samples, args.batch)
    loop = bench_closed_loop(engine, samples, args.batch, args.clients,
                             args.workers, args.max_latency_ms)
    http_loop = None
    if not args.no_http:
        http_loop = bench_http(engine, samples, args.batch, args.clients,
                               args.workers, args.max_latency_ms)
    traced_loop = None
    if not args.no_http and not args.no_trace:
        # Same phase with per-request tracing armed: the rps delta vs
        # the untraced phase is the tracing tax, and every response's
        # X-Trace-Id can be chased into the in-process flight recorder.
        enable_request_tracing(service="bench-worker", sample_rate=1.0)
        try:
            traced_loop = bench_http(engine, samples, args.batch,
                                     args.clients, args.workers,
                                     args.max_latency_ms,
                                     capture_traces=True)
        finally:
            disable_request_tracing()
    wall_s = telemetry.clock() - t_start
    speedup = batched["throughput_rps"] / max(single["throughput_rps"],
                                              1e-9)
    loop_speedup = loop["throughput_rps"] / max(single["throughput_rps"],
                                                1e-9)

    print(f"engine: {engine!r}")
    print(f"single      : {single['throughput_rps']:>10.1f} req/s")
    print(f"batched({args.batch:>3}) : {batched['throughput_rps']:>10.1f} "
          f"req/s   ({speedup:.2f}x single)")
    print(f"closed-loop : {loop['throughput_rps']:>10.1f} req/s   "
          f"({loop_speedup:.2f}x single, {args.clients} clients, "
          f"mean batch {loop['mean_batch']:.1f})")
    print(f"latency ms  : p50={loop['latency_ms']['p50']:.2f} "
          f"p95={loop['latency_ms']['p95']:.2f} "
          f"p99={loop['latency_ms']['p99']:.2f}")
    if loop["errors"]:
        print(f"closed-loop errors: {loop['errors']}")
    if http_loop is not None:
        print(f"http        : {http_loop['throughput_rps']:>10.1f} req/s   "
              f"(keep-alive, p50={http_loop['latency_ms']['p50']:.2f} "
              f"p99={http_loop['latency_ms']['p99']:.2f} ms, "
              f"reconnects={http_loop['reconnects']}, "
              f"conn errors={http_loop['connection_errors']})")
    tracing_overhead = None
    if traced_loop is not None:
        tracing_overhead = (http_loop["throughput_rps"]
                            / max(traced_loop["throughput_rps"], 1e-9))
        disabled_ratio = disabled_request_trace_overhead()
        print(f"http traced : {traced_loop['throughput_rps']:>10.1f} "
              f"req/s   (tracing on, {tracing_overhead:.3f}x untraced "
              f"rps; dormant-hook span overhead "
              f"{disabled_ratio:.3f}x)")
        report_traces(traced_loop)

    config = {
        "bundle": os.path.basename(args.bundle) if args.bundle else None,
        "synthetic": args.bundle is None,
        "dim": int(bundle.info["dim"]),
        "features": in_features,
        "classes": int(bundle.info["num_classes"]),
        "requests": args.requests, "batch": args.batch,
        "clients": args.clients, "workers": args.workers,
        "packed": engine.use_packed, "seed": args.seed,
    }
    record = RunRecord.capture(
        pipeline="serve", kind="serve", config=config, seed=args.seed,
        wall_s=wall_s)
    record.stage_times.update({
        "serve.single": single["wall_s"],
        "serve.batched": batched["wall_s"],
        "serve.closed_loop": loop["wall_s"],
    })
    record.extra["serve"] = {
        "single_rps": single["throughput_rps"],
        "batched_rps": batched["throughput_rps"],
        "closed_loop_rps": loop["throughput_rps"],
        "speedup_batched": speedup,
        "speedup_closed_loop": loop_speedup,
        "latency_ms": loop["latency_ms"],
        "mean_batch": loop["mean_batch"],
        "errors": loop["errors"],
    }
    if http_loop is not None:
        record.stage_times["serve.http"] = http_loop["wall_s"]
        record.extra["serve"]["http"] = {
            "rps": http_loop["throughput_rps"],
            "latency_ms": http_loop["latency_ms"],
            "connection_errors": http_loop["connection_errors"],
            "reconnects": http_loop["reconnects"],
            "http_errors": http_loop["http_errors"],
        }
    if traced_loop is not None:
        record.extra["serve"]["tracing"] = {
            "rps_untraced": http_loop["throughput_rps"],
            "rps_traced": traced_loop["throughput_rps"],
            "overhead_ratio": tracing_overhead,
            "disabled_overhead_ratio": disabled_ratio,
            "latency_ms_traced": traced_loop["latency_ms"],
            "slowest_trace_ids": [tid for _, _, tid
                                  in traced_loop["slowest"]],
            "failed": len(traced_loop["failed"]),
        }

    ledger = RunLedger(args.ledger_dir)
    failed = False
    if not args.no_gate:
        report = regress.gate_run(ledger, record)
        print()
        print(report.to_markdown())
        failed = not report.passed
    if not args.no_append:
        ledger.append(record)
        print(f"\nappended serve record to {ledger.path}")

    if args.compile:
        # Compiled-vs-interpreted A/B on the same bundle + samples;
        # the delta is its own ledgered series (kind="compile").
        compiled = InferenceEngine(
            bundle, use_packed=(False if args.float_path else None),
            cache_size=0, build_extractor=False, passes="all")
        compiled.predict_features(samples[: min(64, len(samples))])
        if not np.array_equal(compiled.predict_features(samples),
                              engine.predict_features(samples)):
            print("COMPILE PARITY FAILED: compiled engine disagrees "
                  "with interpreted", file=sys.stderr)
            return 1
        c_single = bench_single(compiled, samples)
        c_batched = bench_batched(compiled, samples, args.batch)
        delta_single = (single["throughput_rps"] /
                        max(c_single["throughput_rps"], 1e-9))
        delta_batched = (batched["throughput_rps"] /
                         max(c_batched["throughput_rps"], 1e-9))
        print(f"compiled    : single "
              f"{c_single['throughput_rps']:>10.1f} req/s "
              f"({1 / max(delta_single, 1e-9):.2f}x interpreted), "
              f"batched {c_batched['throughput_rps']:>10.1f} req/s "
              f"({1 / max(delta_batched, 1e-9):.2f}x interpreted) "
              f"[passes={compiled.compile_passes}, "
              f"executors={compiled.executor_plan}]")
        compile_record = RunRecord.capture(
            pipeline="serve", kind="compile", config=config,
            seed=args.seed,
            wall_s=c_single["wall_s"] + c_batched["wall_s"])
        compile_record.stage_times.update({
            "serve.compiled_single": c_single["wall_s"],
            "serve.compiled_batched": c_batched["wall_s"],
            "serve.interpreted_single": single["wall_s"],
            "serve.interpreted_batched": batched["wall_s"],
        })
        compile_record.extra["compile"] = {
            "passes_applied": compiled.compile_passes,
            "executor_plan": compiled.executor_plan,
            "compiled_single_rps": c_single["throughput_rps"],
            "compiled_batched_rps": c_batched["throughput_rps"],
            "interpreted_single_rps": single["throughput_rps"],
            "interpreted_batched_rps": batched["throughput_rps"],
            "speedup_single": 1 / max(delta_single, 1e-9),
            "speedup_batched": 1 / max(delta_batched, 1e-9),
        }
        if not args.no_gate:
            compile_report = regress.gate_run(ledger, compile_record)
            print()
            print(compile_report.to_markdown())
            failed = failed or not compile_report.passed
        if not args.no_append:
            ledger.append(compile_record)
            print(f"\nappended compile record to {ledger.path}")

    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump({"single": single, "batched": batched,
                       "closed_loop": loop, "http": http_loop,
                       "traced_http": traced_loop,
                       "speedup_batched": speedup,
                       "speedup_closed_loop": loop_speedup,
                       "config": config},
                      handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json_out}")

    if args.min_speedup is not None and speedup < args.min_speedup:
        print(f"SPEEDUP GATE FAILED: batched {speedup:.2f}x < required "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    if failed:
        print("REGRESSION GATE FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
