#!/bin/bash
# Tier-2 perf-regression gate: run the smoke pipelines through
# scripts/bench_gate.py against the committed run ledger under
# results/ledger/.  Behaviour:
#   * first run on a fresh checkout (no / short ledger history)
#     bootstraps the baseline and PASSES;
#   * with >= 3 comparable runs in the ledger, a stage time, accuracy or
#     wall-clock outside the rolling median+MAD tolerance band FAILS
#     (nonzero exit), printing the markdown comparison report;
#   * a BENCH_<shortsha>.json trajectory file is (re)written under
#     results/bench/ (legacy root-level files from older commits are
#     still readable) and a ledger entry is appended for this commit.
# A self-check then verifies the gate's teeth: with an established
# baseline, a synthetic 3x slowdown injected into one stage must FAIL.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== regression gate: smoke pipelines vs results/ledger =="
python scripts/bench_gate.py

# Teeth check: only meaningful once the baseline is established (>= 3
# runs of the nshd smoke config *from this environment* in the ledger —
# the gate keys baselines on the env digest, so runs recorded on another
# machine bootstrap instead of gating).
echo
echo "== gate self-check: injected 3x extract slowdown must fail =="
history="$(python - <<'EOF'
from repro.telemetry.ledger import RunLedger, env_digest
print(len(RunLedger().query(pipeline="nshd", env_digest=env_digest())))
EOF
)"
if [ "$history" -ge 3 ]; then
    if python scripts/bench_gate.py --pipelines nshd \
            --inject-slowdown extract:3.0 > /dev/null 2>&1; then
        echo "ERROR: injected 3x slowdown passed the gate" >&2
        exit 1
    fi
    echo "injected slowdown correctly rejected"
else
    echo "skipped (ledger has $history nshd runs; need >= 3)"
fi

echo
echo "regression checks passed"
