#!/bin/bash
# Tier-2 tracing check: the end-to-end request-tracing path.
#   * unit tests: traceparent parse/propagate round-trip, cross-process
#     JSONL stitching, flight-recorder retention/eviction, exemplar
#     Prometheus round-trip (tests/test_telemetry_reqtrace.py,
#     tests/test_serve_tracing.py);
#   * live gate: boot a traced 4-worker fleet, SIGKILL one worker
#     mid-run, and assert every request's X-Trace-Id stitches to
#     exactly one span tree with correct router -> worker -> batcher ->
#     stage parentage — including across the failover retry — plus the
#     /tracez + /requestz surface and trace-id echo on error responses;
#   * overhead gate: with tracing disabled the hub hook must cost < 5%
#     per span (median of 3), so always-on instrumentation stays free.
# (see scripts/check_trace.py)
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== trace check: tracing unit tests =="
python -m pytest -q tests/test_telemetry_reqtrace.py \
    tests/test_serve_tracing.py

echo
echo "== trace check: stitched fleet gate (traceparent / failover / overhead) =="
python scripts/check_trace.py

echo
echo "trace checks passed"
