"""Perf-regression gate: run smoke pipelines, ledger them, gate vs history.

For each requested pipeline (NSHD / BaselineHD / VanillaHD) this script:

1. runs a small end-to-end smoke training run with the HD
   :class:`~repro.telemetry.DiagnosticsCallback` attached,
2. captures a :class:`~repro.telemetry.RunRecord` (git SHA, config
   fingerprint, env/BLAS info, per-stage wall time from the ``stage.*``
   spans, final/test accuracy, guard counters, drift/saturation/
   confusability diagnostics),
3. gates it against the rolling ledger baseline
   (:func:`~repro.telemetry.gate_run`: median + MAD bands; fewer than
   ``min_history`` prior runs → bootstrap pass),
4. appends it to the append-only ledger under ``results/ledger/``, and
5. writes a per-commit ``BENCH_<shortsha>.json`` trajectory file under
   ``results/bench/`` (all records + the gate verdict).

Trajectory files lived at the repo root before results/bench/ existed;
:func:`find_bench_trajectory` resolves a short SHA against the new
directory first and falls back to the legacy root-level path, so
tooling keeps reading pre-relocation commits.

Exit status is nonzero when any gate fails, so CI can block the merge.
``--ingest-benchmark-json`` additionally converts a pytest-benchmark
``--benchmark-json`` output into ledger entries (kind ``benchmark``) so
the figure benchmarks share the same trajectory.

``--inject-slowdown STAGE:FACTOR`` is a **test fixture**: it multiplies
the measured time of one stage before gating (and skips the ledger
append so the poisoned sample never becomes baseline).  A 3× injection
against an established baseline must fail the gate — that is the
acceptance check in ``tests/test_telemetry_regress.py`` and
``scripts/check_regression.sh``.

Usage (fresh checkout, CPU, well under a minute)::

    python scripts/bench_gate.py                    # all three pipelines
    python scripts/bench_gate.py --pipelines nshd --hd-epochs 5
    python scripts/bench_gate.py --inject-slowdown encode:3.0  # must fail
    python scripts/bench_gate.py --compile          # compiler A/B gate

``--compile`` adds a graph-compiler A/B run (``kind="compile"``): the
re-fit/A-B-eval workflow (repeated evaluation of the same batch) is
timed interpreted-cold vs with the digest-keyed
:class:`~repro.pipeline.StageCache` attached, and an exported bundle is
served interpreted vs compiled (all fusion passes).  The cached path
must be at least ``--min-compile-speedup`` (default 1.3×) faster — a
hard floor on top of the usual median+MAD ledger gate.
"""

import argparse
import json
import os
import sys
import tempfile
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import telemetry  # noqa: E402
from repro.data import make_dataset, normalize_images  # noqa: E402
from repro.learn import NSHD, BaselineHD, VanillaHD  # noqa: E402
from repro.models import create_model, train_cnn  # noqa: E402
from repro.telemetry import regress  # noqa: E402
from repro.telemetry.ledger import (RunLedger, RunRecord,  # noqa: E402
                                    env_fingerprint, git_info)

PIPELINES = ("nshd", "baselinehd", "vanillahd")

#: Schema version of the BENCH_<shortsha>.json trajectory file.
BENCH_SCHEMA_VERSION = 1

#: Where per-commit trajectory files live (repo root before PR 8).
BENCH_DIR = os.path.join(REPO_ROOT, "results", "bench")


def find_bench_trajectory(short_sha: str):
    """Resolve a commit's trajectory file, preferring ``results/bench/``
    and falling back to the legacy repo-root location; None if absent."""
    name = f"BENCH_{short_sha}.json"
    for candidate in (os.path.join(BENCH_DIR, name),
                      os.path.join(REPO_ROOT, name)):
        if os.path.exists(candidate):
            return candidate
    return None


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="run smoke pipelines, append run ledger entries, "
                    "gate against the rolling perf/accuracy baseline")
    parser.add_argument("--pipelines", default=",".join(PIPELINES),
                        help=f"comma list from {PIPELINES}")
    parser.add_argument("--classes", type=int, default=5)
    parser.add_argument("--train", type=int, default=150)
    parser.add_argument("--test", type=int, default=80)
    parser.add_argument("--dim", type=int, default=400)
    parser.add_argument("--reduced", type=int, default=24)
    parser.add_argument("--cnn-epochs", type=int, default=1)
    parser.add_argument("--hd-epochs", type=int, default=3)
    parser.add_argument("--model", default="vgg16")
    parser.add_argument("--width", type=float, default=0.125)
    parser.add_argument("--layer-index", type=int, default=21)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--ledger-dir",
                        default=os.path.join(REPO_ROOT, "results", "ledger"))
    parser.add_argument("--bench-out", default=None,
                        help="trajectory JSON path (default: "
                             "results/bench/BENCH_<shortsha>.json)")
    parser.add_argument("--markdown-out", default=None,
                        help="optional path for the markdown gate report")
    parser.add_argument("--no-gate", action="store_true",
                        help="record only; skip regression detection")
    parser.add_argument("--no-append", action="store_true",
                        help="gate only; do not grow the ledger")
    parser.add_argument("--inject-slowdown", default=None,
                        metavar="STAGE:FACTOR",
                        help="test fixture: multiply one stage's measured "
                             "time before gating (record is NOT appended)")
    parser.add_argument("--compile", action="store_true",
                        help="add a graph-compiler A/B run (stage-cached "
                             "eval + compiled serve engine vs interpreted"
                             "), ledgered as kind=\"compile\"")
    parser.add_argument("--compile-iters", type=int, default=3,
                        help="evaluation repetitions per arm of the "
                             "--compile A/B (default 3)")
    parser.add_argument("--min-compile-speedup", type=float, default=1.3,
                        help="hard floor on the stage-cached eval "
                             "speedup (default 1.3)")
    parser.add_argument("--ingest-benchmark-json", default=None,
                        help="pytest-benchmark --benchmark-json output to "
                             "convert into ledger entries")
    parser.add_argument("--no-run", action="store_true",
                        help="skip the smoke pipelines (ingest/compact "
                             "only; used by scripts/run_all.sh after the "
                             "benchmark suite already ran)")
    parser.add_argument("--compact", action="store_true",
                        help="after appending, drop the full metrics/"
                             "diagnostics snapshots from records older "
                             "than the gate window (per pipeline+config"
                             "+kind group); scalar series survive")
    parser.add_argument("--compact-window", type=int, default=10,
                        help="newest runs per group kept intact by "
                             "--compact (default matches the gate window)")
    return parser.parse_args(argv)


def _parse_injection(spec):
    if spec is None:
        return None
    try:
        stage, factor = spec.split(":", 1)
        return stage.strip(), float(factor)
    except ValueError:
        raise SystemExit(f"--inject-slowdown expects STAGE:FACTOR, "
                         f"got {spec!r}")


def run_pipeline(name: str, args: argparse.Namespace, data, model
                 ) -> RunRecord:
    """One smoke run → a ledger-ready :class:`RunRecord`."""
    x_tr, y_tr, x_te, y_te = data
    telemetry.get_registry().reset()
    telemetry.get_tracer().reset()
    diag = telemetry.DiagnosticsCallback()
    t0 = telemetry.clock()

    if name == "nshd":
        pipeline = NSHD(model, layer_index=args.layer_index, dim=args.dim,
                        reduced_features=args.reduced, seed=args.seed)
        history = pipeline.fit(x_tr, y_tr, epochs=args.hd_epochs,
                               callbacks=[diag])
    elif name == "baselinehd":
        pipeline = BaselineHD(model, layer_index=args.layer_index,
                              dim=args.dim, seed=args.seed)
        history = pipeline.fit(x_tr, y_tr, epochs=args.hd_epochs,
                               callbacks=[diag])
    elif name == "vanillahd":
        pipeline = VanillaHD(num_classes=args.classes,
                             image_size=x_tr.shape[-1], dim=args.dim,
                             seed=args.seed)
        history = pipeline.fit(x_tr, y_tr, epochs=args.hd_epochs,
                               callbacks=[diag])
    else:
        raise SystemExit(f"unknown pipeline {name!r} "
                         f"(choose from {PIPELINES})")

    test_acc = pipeline.accuracy(x_te, y_te)
    wall_s = telemetry.clock() - t0

    config = {
        "pipeline": name, "classes": args.classes, "train": args.train,
        "test": args.test, "dim": args.dim, "reduced": args.reduced,
        "cnn_epochs": args.cnn_epochs, "hd_epochs": args.hd_epochs,
        "model": args.model, "width": args.width,
        "layer_index": args.layer_index, "seed": args.seed,
    }
    return RunRecord.capture(
        pipeline=name, config=config, seed=args.seed, wall_s=wall_s,
        final_accuracy=history["train_acc"][-1], test_accuracy=test_acc,
        history=history, diagnostics=diag.summary())


def run_compile_bench(args: argparse.Namespace, data, model):
    """Graph-compiler A/B → a ``kind="compile"`` ledger record.

    Trains one NSHD pipeline, then times the re-fit/A-B-eval workflow
    (``--compile-iters`` evaluations of the same test batch) with and
    without the digest-keyed stage cache, and an exported bundle served
    interpreted vs compiled (all fusion passes).  Both compiled arms
    must agree bit-exactly with their interpreted counterparts.
    Returns ``(record, cached_speedup)``.
    """
    from repro.pipeline import StageCache  # noqa: E402 (lazy: --compile only)
    from repro.serve import InferenceEngine, ModelBundle  # noqa: E402

    x_tr, y_tr, x_te, y_te = data
    telemetry.get_registry().reset()
    telemetry.get_tracer().reset()
    t0 = telemetry.clock()

    pipeline = NSHD(model, layer_index=args.layer_index, dim=args.dim,
                    reduced_features=args.reduced, seed=args.seed)
    history = pipeline.fit(x_tr, y_tr, epochs=args.hd_epochs)
    iters = max(1, int(args.compile_iters))

    def timed(fn):
        start = telemetry.clock()
        for _ in range(iters):
            fn()
        return telemetry.clock() - start

    # Arm 1: the A/B-eval workflow, interpreted-cold vs stage-cached.
    baseline = np.asarray(pipeline.predict(x_te))
    uncached_s = timed(lambda: pipeline.predict(x_te))
    pipeline.set_stage_cache(StageCache())
    cached_pred = np.asarray(pipeline.predict(x_te))
    cached_s = timed(lambda: pipeline.predict(x_te))
    cache_info = pipeline.stage_cache.info()
    pipeline.set_stage_cache(None)
    if not np.array_equal(cached_pred, baseline):
        raise SystemExit("stage-cached predictions != uncached")
    cached_speedup = uncached_s / max(cached_s, 1e-9)

    # Arm 2: exported bundle served interpreted vs compiled.
    raw = pipeline.extractor.extract(x_te)
    with tempfile.TemporaryDirectory() as tmp:
        bundle_path = os.path.join(tmp, "compile_bench.npz")
        ModelBundle.from_pipeline(
            pipeline, config={"gate": "bench_compile"}).save(bundle_path)
        interpreted = InferenceEngine.from_path(bundle_path, cache_size=0,
                                                passes="none")
        compiled = InferenceEngine.from_path(bundle_path, cache_size=0,
                                             passes="all")
        if not np.array_equal(compiled.predict_features(raw),
                              interpreted.predict_features(raw)):
            raise SystemExit("compiled engine != interpreted engine")
        interp_s = timed(lambda: interpreted.predict_features(raw))
        compiled_s = timed(lambda: compiled.predict_features(raw))

    test_acc = pipeline.accuracy(x_te, y_te)
    wall_s = telemetry.clock() - t0
    config = {
        "pipeline": "nshd", "classes": args.classes, "train": args.train,
        "test": args.test, "dim": args.dim, "reduced": args.reduced,
        "cnn_epochs": args.cnn_epochs, "hd_epochs": args.hd_epochs,
        "model": args.model, "width": args.width,
        "layer_index": args.layer_index, "seed": args.seed,
        "compile_iters": iters,
    }
    record = RunRecord.capture(
        pipeline="nshd", kind="compile", config=config, seed=args.seed,
        wall_s=wall_s, final_accuracy=history["train_acc"][-1],
        test_accuracy=test_acc, history=history)
    record.stage_times.update({
        "eval_uncached": uncached_s, "eval_cached": cached_s,
        "serve_interpreted": interp_s, "serve_compiled": compiled_s,
    })
    record.extra["compile"] = {
        "cached_speedup": cached_speedup,
        "serve_speedup": interp_s / max(compiled_s, 1e-9),
        "stage_cache": cache_info,
        "passes_applied": compiled.compile_passes,
        "executor_plan": compiled.executor_plan,
    }
    return record, cached_speedup


def ingest_benchmark_json(path: str, ledger: RunLedger, append: bool
                          ) -> list:
    """pytest-benchmark JSON → one ``kind="benchmark"`` record each."""
    with open(path) as handle:
        payload = json.load(handle)
    records = []
    for bench in payload.get("benchmarks", []):
        stats = bench.get("stats", {})
        extra = dict(bench.get("extra_info", {}))
        config = {"benchmark": bench.get("fullname", bench.get("name")),
                  "group": bench.get("group"),
                  "params": bench.get("params")}
        record = RunRecord(
            pipeline=bench.get("name", "benchmark"), kind="benchmark",
            config=config, seed=extra.get("seed"),
            wall_s=stats.get("median"),
            stage_times={"benchmark": float(stats["median"])}
            if "median" in stats else {},
            metrics={"stats": {"type": "gauge", **{
                key: stats[key] for key in
                ("min", "max", "mean", "median", "stddev", "rounds")
                if key in stats}}},
            extra={"extra_info": extra})
        records.append(record)
        if append:
            ledger.append(record)
    return records


def main(argv=None) -> int:
    args = parse_args(argv)
    injection = _parse_injection(args.inject_slowdown)
    names = ([] if args.no_run else
             [n.strip() for n in args.pipelines.split(",") if n.strip()])
    # An injection run is a synthetic self-check of the gate's teeth: it
    # must neither become baseline (no ledger append, handled below) nor
    # clobber the real per-commit trajectory file.
    if injection is not None and args.bench_out is None:
        args.bench_out = os.path.join(
            tempfile.gettempdir(), f"BENCH_injected_{os.getpid()}.json")

    git = git_info(REPO_ROOT)
    short_sha = git.get("short_sha") or "unknown"
    bench_out = args.bench_out
    if bench_out is None:
        os.makedirs(BENCH_DIR, exist_ok=True)
        bench_out = os.path.join(BENCH_DIR, f"BENCH_{short_sha}.json")
    ledger = RunLedger(args.ledger_dir)

    # Shared dataset + (optionally trained) teacher model for the runs.
    data = model = None
    if names or args.compile:
        x_tr, y_tr, x_te, y_te = make_dataset(
            num_classes=args.classes, num_train=args.train,
            num_test=args.test, seed=args.seed)
        x_tr, mean, std = normalize_images(x_tr)
        x_te, _, _ = normalize_images(x_te, mean, std)
        data = (x_tr, y_tr, x_te, y_te)
        if args.compile or any(n in ("nshd", "baselinehd") for n in names):
            model = create_model(args.model, num_classes=args.classes,
                                 width_mult=args.width, seed=args.seed)
            train_cnn(model, x_tr, y_tr, epochs=args.cnn_epochs,
                      verbose=False, seed=args.seed)
            model.eval()

    records, reports, markdown = [], [], []
    failed = False
    for name in names:
        record = run_pipeline(name, args, data, model)
        injected = False
        if injection is not None:
            stage, factor = injection
            if stage in record.stage_times:
                record.stage_times[stage] *= factor
                record.extra["injected_slowdown"] = {"stage": stage,
                                                     "factor": factor}
                injected = True
        if not args.no_gate:
            report = regress.gate_run(ledger, record)
            reports.append(report)
            markdown.append(report.to_markdown())
            print(report.to_markdown())
            print()
            failed = failed or not report.passed
        if not args.no_append and not injected:
            ledger.append(record)
        records.append(record)
        acc = ("-" if record.test_accuracy is None
               else f"{record.test_accuracy:.3f}")
        stages = ", ".join(f"{k}={v:.3f}s"
                           for k, v in sorted(record.stage_times.items()))
        print(f"[{name}] test_acc={acc} wall={record.wall_s:.2f}s {stages}")

    if args.compile:
        record, speedup = run_compile_bench(args, data, model)
        if not args.no_gate:
            report = regress.gate_run(ledger, record)
            reports.append(report)
            markdown.append(report.to_markdown())
            print(report.to_markdown())
            print()
            failed = failed or not report.passed
        floor = float(args.min_compile_speedup)
        if speedup < floor:
            print(f"COMPILE GATE FAILED: stage-cached eval speedup "
                  f"{speedup:.2f}x < required {floor:.2f}x",
                  file=sys.stderr)
            failed = True
        if not args.no_append:
            ledger.append(record)
        records.append(record)
        info = record.extra["compile"]
        stages = ", ".join(
            f"{k}={record.stage_times[k]:.3f}s" for k in
            ("eval_uncached", "eval_cached", "serve_interpreted",
             "serve_compiled"))
        print(f"[compile] cached_speedup={speedup:.2f}x "
              f"serve_speedup={info['serve_speedup']:.2f}x "
              f"(floor {floor:.2f}x) {stages}")

    if args.ingest_benchmark_json:
        bench_records = ingest_benchmark_json(
            args.ingest_benchmark_json, ledger, append=not args.no_append)
        records.extend(bench_records)
        print(f"ingested {len(bench_records)} pytest-benchmark records "
              f"from {args.ingest_benchmark_json}")

    trajectory = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "generated_at": time.time(),
        "git": git,
        "env": env_fingerprint(),
        "config": {key: getattr(args, key) for key in
                   ("classes", "train", "test", "dim", "reduced",
                    "cnn_epochs", "hd_epochs", "model", "width",
                    "layer_index", "seed")},
        "runs": [telemetry.encode_non_finite(r.to_dict()) for r in records],
        "gate": {
            "enabled": not args.no_gate,
            "passed": not failed,
            "reports": [telemetry.encode_non_finite(r.to_dict())
                        for r in reports],
        },
    }
    with open(bench_out, "w") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True,
                  allow_nan=False)
        handle.write("\n")
    print(f"\nwrote {bench_out} ({len(records)} runs) and ledger entries "
          f"under {ledger.path}")

    if args.compact:
        stripped = ledger.compact(args.compact_window)
        print(f"compacted {stripped} ledger record(s) outside the "
              f"{args.compact_window}-run window")

    if args.markdown_out and markdown:
        with open(args.markdown_out, "w") as handle:
            handle.write("\n\n".join(markdown) + "\n")
        print(f"wrote {args.markdown_out}")

    if failed:
        print("REGRESSION GATE FAILED", file=sys.stderr)
        return 1
    print("regression gate: PASS" if not args.no_gate else "gate skipped")
    return 0


if __name__ == "__main__":
    sys.exit(main())
