"""Model-quality gate: injected drift must fire alerts; clean traffic
must stay quiet; the monitors must be effectively free.

Boots a real :class:`~repro.serve.server.ModelServer` through the serve
CLI's ``build_server`` path — a bundle carrying a ``quality_baseline``
section plus a TOML config declaring two alert rules — then drives the
load generator through four phases:

1. **clean**: baseline-distributed traffic fills the drift window; the
   gate asserts ``/driftz`` stays under the PSI threshold and
   ``/alertz`` reports nothing firing;
2. **covariate shift**: the generator switches to ``mean+3, 2σ``
   features; the ``feature-drift`` rule
   (``quality.feature.psi_max > 0.25``) must reach ``firing`` within a
   bounded number of requests (detection latency is printed and
   ledgered);
3. **label skew**: a fresh server is flooded with near-duplicates of a
   single row, so every prediction lands in one class; the
   ``prediction-skew`` rule (``quality.prediction.psi > 1.0``) must
   fire within the budget;
4. **overhead**: interleaved HTTP P99 of a monitors-on vs monitors-off
   server over the same bundle; the best-of-3 ratio must stay < 5%.

The phase outcomes and the P99 pair are captured as a
``kind="quality"`` :class:`~repro.telemetry.ledger.RunRecord`, gated
against the rolling ledger baseline (median + MAD, same detector as
``bench_gate``), and appended to ``results/ledger/``.

Wired into ``scripts/run_all.sh`` via ``scripts/check_quality.sh``.
"""

import argparse
import http.client
import json
import os
import shutil
import sys
import tempfile
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from serve_bench import synthetic_bundle  # noqa: E402

from repro import telemetry  # noqa: E402
from repro.serve import InferenceEngine  # noqa: E402
from repro.serve.__main__ import _parse_args, build_server  # noqa: E402
from repro.telemetry import regress  # noqa: E402
from repro.telemetry.ledger import RunLedger, RunRecord  # noqa: E402
from repro.telemetry.quality import QualityBaseline  # noqa: E402
from repro.utils.rng import fresh_rng  # noqa: E402

ALERTS_TOML = """\
[engine]
build_extractor = false
quality_window = 256

[alerts]
interval_s = 0.1

[[alerts.rules]]
name = "feature-drift"
metric = "quality.feature.psi_max"
op = ">"
threshold = 0.25
severity = "page"
description = "windowed PSI vs the training baseline"

[[alerts.rules]]
name = "prediction-skew"
metric = "quality.prediction.psi"
op = ">"
threshold = 1.0
severity = "page"
description = "prediction distribution vs training class priors"
"""

QUIET_TOML = """\
[engine]
build_extractor = false
quality = false
"""


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="gate the streaming drift monitors and the alert "
                    "rules engine on a live serving path")
    parser.add_argument("--dim", type=int, default=512)
    parser.add_argument("--features", type=int, default=32)
    parser.add_argument("--classes", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--batch", type=int, default=64,
                        help="rows per /predict request (one drift-"
                             "window refill per request)")
    parser.add_argument("--budget", type=int, default=8,
                        help="max faulty requests before the alert "
                             "must be firing")
    parser.add_argument("--baseline-rows", type=int, default=2048)
    parser.add_argument("--overhead-requests", type=int, default=150,
                        help="requests per overhead measurement run")
    parser.add_argument("--overhead-limit", type=float, default=1.05,
                        help="quality-on / quality-off P99 ceiling "
                             "(best of 3 interleaved runs)")
    parser.add_argument("--skip-overhead", action="store_true",
                        help="skip the P99 comparison (loaded CI hosts)")
    parser.add_argument("--ledger-dir",
                        default=os.path.join(REPO_ROOT, "results",
                                             "ledger"))
    parser.add_argument("--no-append", action="store_true",
                        help="gate only; do not grow the ledger")
    return parser.parse_args(argv)


def http_json(host, port, method, path, payload=None, timeout=15.0):
    """One request → (status, parsed json body)."""
    conn = http.client.HTTPConnection(host, int(port), timeout=timeout)
    try:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body, headers)
        response = conn.getresponse()
        raw = response.read()
        try:
            return response.status, json.loads(raw.decode("utf-8"))
        except ValueError:
            return response.status, {}
    finally:
        conn.close()


def baselined_bundle_path(workdir, args) -> str:
    """Synthetic bundle + a quality baseline computed through its own
    frozen graph (the same closure ``from_pipeline`` captures)."""
    bundle = synthetic_bundle(args.dim, args.features, args.classes,
                              args.seed)
    engine = InferenceEngine(bundle, build_extractor=False)
    rng = fresh_rng((args.seed, "check-quality-baseline"))
    train = rng.standard_normal((args.baseline_rows, args.features))
    sims = np.asarray(engine.similarities(engine.encode_features(train)))
    bundle.info["quality_baseline"] = QualityBaseline.from_training(
        train, labels=np.argmax(sims, axis=1),
        num_classes=args.classes, similarities=sims).to_dict()
    path = os.path.join(workdir, "bundle.npz")
    bundle.save(path)
    return path


def boot(bundle_path, config_text, workdir, tag):
    """Serve CLI path: TOML config → built + started ModelServer."""
    config_path = os.path.join(workdir, f"serve-{tag}.toml")
    with open(config_path, "w") as handle:
        handle.write(config_text)
    server = build_server(_parse_args(
        [bundle_path, "--config", config_path, "--port", "0"]))
    server.start()
    return server


def drive(server, rows, batch):
    """POST ``rows`` in ``batch``-row /predict requests; count them."""
    host, port = server.address
    sent = 0
    for start in range(0, len(rows), batch):
        chunk = rows[start:start + batch]
        status, _ = http_json(host, port, "POST", "/predict",
                              {"features": chunk.tolist()})
        if status != 200:
            raise SystemExit(f"/predict answered {status}")
        sent += 1
    return sent


def firing(server):
    host, port = server.address
    status, payload = http_json(host, port, "GET", "/alertz")
    if status != 200:
        raise SystemExit(f"/alertz answered {status}")
    return payload.get("firing", [])


def requests_to_firing(server, make_batch, alert, budget, batch):
    """Faulty batches until ``alert`` fires; None if budget exhausted."""
    for sent in range(1, budget + 1):
        drive(server, make_batch(), batch)
        if alert in firing(server):
            return sent
    return None


def measure_p99(server, rows, batch):
    """Per-request wall times over /predict → P99 seconds."""
    host, port = server.address
    times = []
    for start in range(0, len(rows), batch):
        chunk = rows[start:start + batch].tolist()
        t0 = time.perf_counter()
        status, _ = http_json(host, port, "POST", "/predict",
                              {"features": chunk})
        times.append(time.perf_counter() - t0)
        if status != 200:
            raise SystemExit(f"/predict answered {status}")
    return float(np.percentile(times, 99))


def main(argv=None) -> int:
    args = parse_args(argv)
    failures = []

    def check(condition, label):
        print(("PASS" if condition else "FAIL") + f"  {label}")
        if not condition:
            failures.append(label)

    workdir = tempfile.mkdtemp(prefix="check_quality_")
    t_start = time.time()
    quality = {"scenarios": {}, "overhead": None}
    try:
        bundle_path = baselined_bundle_path(workdir, args)
        rng = fresh_rng((args.seed, "check-quality-load"))
        clean = lambda n: rng.standard_normal((n, args.features))  # noqa: E731

        # -- phase 1: clean traffic stays quiet ----------------------
        telemetry.get_registry().reset()
        server = boot(bundle_path, ALERTS_TOML, workdir, "drift")
        host, port = server.address
        print(f"quality-monitored worker up at {server.url}")
        drive(server, clean(4 * args.batch), args.batch)
        status, drift = http_json(host, port, "GET", "/driftz")
        check(status == 200 and drift.get("enabled"),
              "/driftz live with the bundle's training baseline")
        psi = drift.get("feature", {}).get("psi_max", float("inf"))
        check(psi < 0.25,
              f"clean traffic under the PSI threshold "
              f"(psi_max={psi:.3f} < 0.25)")
        check(firing(server) == [],
              "no alerts firing on clean traffic")
        quality["scenarios"]["clean"] = {"psi_max": psi, "firing": []}

        # -- phase 2: covariate shift → feature-drift fires ----------
        shifted = lambda: 3.0 + 2.0 * clean(args.batch)  # noqa: E731
        detect = requests_to_firing(server, shifted, "feature-drift",
                                    args.budget, args.batch)
        check(detect is not None,
              f"covariate shift drives feature-drift to firing within "
              f"{args.budget} requests (took {detect})")
        status, drift = http_json(host, port, "GET", "/driftz")
        top = drift.get("feature", {}).get("top", [])
        check(bool(top), f"/driftz names the drifting features "
                         f"(top={top[:3]})")
        quality["scenarios"]["covariate_shift"] = {
            "requests_to_firing": detect,
            "rows_per_request": args.batch,
            "psi_max": drift.get("feature", {}).get("psi_max")}
        server.stop()

        # -- phase 3: label skew → prediction-skew fires -------------
        telemetry.get_registry().reset()
        server = boot(bundle_path, ALERTS_TOML, workdir, "skew")
        host, port = server.address
        pinned = clean(1)[0]  # near-duplicates → one predicted class
        skewed = lambda: pinned + 0.01 * clean(args.batch)  # noqa: E731
        detect = requests_to_firing(server, skewed, "prediction-skew",
                                    args.budget, args.batch)
        check(detect is not None,
              f"label skew drives prediction-skew to firing within "
              f"{args.budget} requests (took {detect})")
        status, alerts = http_json(host, port, "GET", "/alertz")
        states = {row["rule"]["name"]: row["state"]
                  for row in alerts.get("rules", [])}
        check(states.get("prediction-skew") == "firing",
              f"/alertz reports the state machine (states={states})")
        quality["scenarios"]["label_skew"] = {
            "requests_to_firing": detect,
            "rows_per_request": args.batch}
        server.stop()
        server = None

        # -- phase 4: monitors must be effectively free --------------
        p99_on = p99_off = ratio = None
        if not args.skip_overhead:
            telemetry.get_registry().reset()
            on = boot(bundle_path, ALERTS_TOML, workdir, "on")
            off = boot(bundle_path, QUIET_TOML, workdir, "off")
            try:
                rows = clean(args.overhead_requests)
                measure_p99(on, rows, 1)   # warm both paths
                measure_p99(off, rows, 1)
                ratios = []
                for _ in range(3):
                    a = measure_p99(on, rows, 1)
                    b = measure_p99(off, rows, 1)
                    ratios.append((a / b, a, b))
                ratios.sort()
                ratio, p99_on, p99_off = ratios[0]
                check(ratio < args.overhead_limit,
                      f"quality monitors add <{args.overhead_limit:.2f}x"
                      f" to serve P99 ({ratio:.4f}x; on="
                      f"{p99_on * 1e3:.2f}ms off={p99_off * 1e3:.2f}ms;"
                      f" runs: "
                      f"{', '.join(f'{r[0]:.4f}' for r in ratios)})")
            finally:
                on.stop()
                off.stop()
            quality["overhead"] = {"p99_on_s": p99_on,
                                   "p99_off_s": p99_off,
                                   "ratio": ratio,
                                   "limit": args.overhead_limit}
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    # -- ledger: trend-gate the overhead pair like bench_gate --------
    config = {"gate": "check_quality", "dim": args.dim,
              "features": args.features, "classes": args.classes,
              "batch": args.batch, "budget": args.budget,
              "overhead_requests": args.overhead_requests,
              "seed": args.seed}
    stage_times = {}
    if quality["overhead"]:
        stage_times = {"serve_p99_quality_on": p99_on,
                       "serve_p99_quality_off": p99_off}
    record = RunRecord(pipeline="serve-quality", kind="quality",
                       config=config, seed=args.seed,
                       wall_s=time.time() - t_start,
                       stage_times=stage_times,
                       extra={"quality": quality})
    ledger = RunLedger(args.ledger_dir)
    report = regress.gate_run(ledger, record)
    print()
    print(report.to_markdown())
    if not report.passed:
        failures.append("ledger median+MAD gate")
    if not args.no_append:
        ledger.append(record)
        print(f"\nledgered kind=quality run under {ledger.path}")

    if failures:
        print(f"\nQUALITY GATE FAILED: {len(failures)} assertion(s):",
              file=sys.stderr)
        for label in failures:
            print(f"  - {label}", file=sys.stderr)
        return 1
    print("\nquality gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
