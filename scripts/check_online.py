"""Online-learning gate: feedback must recover a label shift, poison
must never promote, promotion must be atomic, new classes must serve.

Boots real :class:`~repro.serve.server.ModelServer` instances through
the serve CLI's ``build_server`` path with an ``[online]`` config
section and drives five phases:

1. **clean**: a clustered synthetic bundle (class hypervectors are the
   quantized centroids of well-separated feature clusters) must serve
   its own distribution accurately — the reference accuracy;
2. **label-shift recovery**: two of the classes swap semantics; served
   accuracy drops to ≈ (k−2)/k; a stream of corrected ``POST
   /feedback`` samples (shadow learning + auto-promotion through the
   existing ``/reload`` hot swap) must bring served accuracy back to
   ≥ 90% of the clean reference within a bounded feedback budget.  The
   per-generation retention of the *untouched* classes is the
   replay-free forgetting curve (ledgered, lands in EXPERIMENTS.md);
3. **poison**: a stream with random wrong labels must NEVER promote —
   the shadow cannot beat the live model on the equally-mislabelled
   validation ring, so the accuracy gate rejects every evaluation and
   the live fingerprint stays put (``--inject-poison`` runs only this
   phase as a self-check);
4. **class-incremental**: feedback with a previously unseen label
   allocates a new class hypervector with no retrain; after promotion
   the new class is served, pre-existing class rows are **bit-exact**
   (the new-class path only ever touches the new row, and
   ``hard_quantize`` is the identity on ±1 rows), and the promoted
   bundle's recomputed quality-baseline priors cover the new class so
   ``/driftz`` prediction-skew cannot permanently fire;
5. **atomic promotion under load**: concurrent single-row ``/predict``
   clients hammer the server across a promotion; every response must
   be 200 and carry a model fingerprint that is exactly the old or the
   new one — zero torn responses.

Outcomes land in a ``kind="online"``
:class:`~repro.telemetry.ledger.RunRecord`, median+MAD trend-gated
against the rolling ledger baseline and appended to ``results/ledger/``.
Wired into ``scripts/run_all.sh`` via ``scripts/check_online.sh``.
"""

import argparse
import http.client
import json
import os
import shutil
import sys
import tempfile
import threading
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from serve_bench import synthetic_bundle  # noqa: E402

from repro import telemetry  # noqa: E402
from repro.hd.hypervector import hard_quantize  # noqa: E402
from repro.serve import InferenceEngine  # noqa: E402
from repro.serve.__main__ import _parse_args, build_server  # noqa: E402
from repro.telemetry import regress  # noqa: E402
from repro.telemetry.ledger import RunLedger, RunRecord  # noqa: E402
from repro.telemetry.quality import QualityBaseline  # noqa: E402
from repro.utils.rng import fresh_rng  # noqa: E402

# Auto-promoting config: the recovery phase exercises the full loop —
# feedback → shadow → gates → export → /reload — with no operator.
AUTO_TOML = """\
[engine]
build_extractor = false

[online]
rule = "mass"
lr = 8.0
max_update_norm = 8.0
holdout_every = 4
promote_every = 25
auto_promote = true
min_feedback = 20
min_validation = 8
min_accuracy_gain = 0.02
min_shadow_accuracy = 0.6
max_confusability_increase = 0.25
max_saturation = 0.25
"""

# Manual config: phases that need a controlled POST /promote.
MANUAL_TOML = AUTO_TOML.replace("auto_promote = true",
                                "auto_promote = false")


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="gate the serve-path online-learning loop: "
                    "recovery, poison rejection, class-incremental "
                    "arrival, atomic promotion")
    parser.add_argument("--dim", type=int, default=1024)
    parser.add_argument("--features", type=int, default=24)
    parser.add_argument("--classes", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--noise", type=float, default=0.35,
                        help="cluster noise (σ around each class center)")
    parser.add_argument("--eval-rows", type=int, default=60,
                        help="eval rows per class for served accuracy")
    parser.add_argument("--feedback-budget", type=int, default=600,
                        help="max feedback samples to recover the shift")
    parser.add_argument("--recovery-floor", type=float, default=0.9,
                        help="required served/clean accuracy ratio")
    parser.add_argument("--poison-rounds", type=int, default=4,
                        help="poisoned promote attempts that must all "
                             "be rejected")
    parser.add_argument("--load-threads", type=int, default=4)
    parser.add_argument("--load-requests", type=int, default=40,
                        help="per-thread /predict calls across the "
                             "promotion")
    parser.add_argument("--inject-poison", action="store_true",
                        help="self-check: run ONLY the poison phase and "
                             "require it to be rejected")
    parser.add_argument("--ledger-dir",
                        default=os.path.join(REPO_ROOT, "results",
                                             "ledger"))
    parser.add_argument("--no-append", action="store_true",
                        help="gate only; do not grow the ledger")
    return parser.parse_args(argv)


def http_json(host, port, method, path, payload=None, timeout=30.0):
    """One request → (status, parsed json body)."""
    conn = http.client.HTTPConnection(host, int(port), timeout=timeout)
    try:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body, headers)
        response = conn.getresponse()
        raw = response.read()
        try:
            return response.status, json.loads(raw.decode("utf-8"))
        except ValueError:
            return response.status, {}
    finally:
        conn.close()


class Clusters:
    """Well-separated Gaussian feature clusters, one per class."""

    def __init__(self, args, extra_classes: int = 1):
        rng = fresh_rng((args.seed, "check-online-clusters"))
        # 3σ-separated centers so the quantized-centroid model is
        # near-perfect on its own distribution.
        self.centers = 3.0 * rng.standard_normal(
            (args.classes + extra_classes, args.features))
        self.noise = args.noise
        self.rng = fresh_rng((args.seed, "check-online-stream"))

    def sample(self, label: int, n: int) -> np.ndarray:
        return self.centers[label] + self.noise * \
            self.rng.standard_normal((n, self.centers.shape[1]))

    def mixed(self, labels, per_class: int):
        """(rows, labels) drawn round-robin from ``labels``."""
        rows, ys = [], []
        for label in labels:
            rows.append(self.sample(label, per_class))
            ys.extend([label] * per_class)
        rows = np.concatenate(rows)
        order = self.rng.permutation(len(rows))
        return rows[order], np.asarray(ys)[order]


def clustered_bundle_path(workdir, args, clusters) -> str:
    """Synthetic bundle whose class hypervectors are the quantized
    centroids of the encoded clusters (accurate, unlike random HVs),
    plus a quality baseline captured through its own frozen graph."""
    bundle = synthetic_bundle(args.dim, args.features, args.classes,
                              args.seed)
    engine = InferenceEngine(bundle, build_extractor=False)
    classes = np.vstack([
        hard_quantize(np.asarray(engine.encode_features(
            clusters.sample(label, 64))).mean(axis=0))
        for label in range(args.classes)])
    bundle.arrays["classes"] = classes
    # Rebuild so the baseline sees the *clustered* class matrix.
    engine = InferenceEngine(bundle, build_extractor=False)
    train, _ = clusters.mixed(range(args.classes), 64)
    sims = np.asarray(engine.similarities(engine.encode_features(train)))
    bundle.info["quality_baseline"] = QualityBaseline.from_training(
        train, labels=np.argmax(sims, axis=1),
        num_classes=args.classes, similarities=sims).to_dict()
    path = os.path.join(workdir, "bundle.npz")
    bundle.save(path)
    return path


def boot(bundle_path, config_text, workdir, tag):
    """Serve CLI path: TOML config → built + started ModelServer."""
    config_path = os.path.join(workdir, f"serve-{tag}.toml")
    with open(config_path, "w") as handle:
        handle.write(config_text)
    server = build_server(_parse_args(
        [bundle_path, "--config", config_path, "--port", "0"]))
    server.start()
    return server


def served_accuracy(server, rows, labels) -> float:
    host, port = server.address
    status, body = http_json(host, port, "POST", "/predict",
                             {"features": rows.tolist()})
    if status != 200:
        raise SystemExit(f"/predict answered {status}")
    return float(np.mean(np.asarray(body["labels"]) ==
                         np.asarray(labels)))


def send_feedback(server, row, label):
    host, port = server.address
    return http_json(host, port, "POST", "/feedback",
                     {"features": row.tolist(), "label": int(label)})


def onlinez(server):
    host, port = server.address
    status, body = http_json(host, port, "GET", "/onlinez")
    if status != 200:
        raise SystemExit(f"/onlinez answered {status}")
    return body


def main(argv=None) -> int:
    args = parse_args(argv)
    failures = []

    def check(condition, label):
        print(("PASS" if condition else "FAIL") + f"  {label}")
        if not condition:
            failures.append(label)

    workdir = tempfile.mkdtemp(prefix="check_online_")
    t_start = time.time()
    results = {"phases": {}}
    k = args.classes
    try:
        clusters = Clusters(args)
        bundle_path = clustered_bundle_path(workdir, args, clusters)
        eval_rows, eval_labels = clusters.mixed(range(k), args.eval_rows)

        # The label shift: classes 0 and 1 swap semantics; the rest are
        # untouched and measure replay-free retention (forgetting).
        shift = {0: 1, 1: 0}
        shifted_labels = np.array([shift.get(int(y), int(y))
                                   for y in eval_labels])
        untouched = np.isin(eval_labels, range(2, k))

        if not args.inject_poison:
            # -- phase 1: clean reference accuracy -------------------
            telemetry.get_registry().reset()
            server = boot(bundle_path, AUTO_TOML, workdir, "recover")
            print(f"online-learning worker up at {server.url}")
            clean_acc = served_accuracy(server, eval_rows, eval_labels)
            check(clean_acc >= 0.95,
                  f"clustered bundle serves its own distribution "
                  f"(clean accuracy {clean_acc:.3f} >= 0.95)")
            results["phases"]["clean"] = {"accuracy": clean_acc}

            # feedback can reference a served request by id
            host, port = server.address
            status, body = http_json(
                host, port, "POST", "/predict",
                {"features": [clusters.sample(2, 1)[0].tolist()]})
            status, fb = http_json(
                host, port, "POST", "/feedback",
                {"request_id": body["request_id"], "label": 2})
            check(status == 200 and fb["status"] in ("applied",
                                                     "held_out"),
                  f"feedback by request_id resolves remembered "
                  f"features (status={fb.get('status')})")

            # -- phase 2: label-shift recovery via feedback ----------
            pre_acc = served_accuracy(server, eval_rows, shifted_labels)
            check(pre_acc < 0.8,
                  f"label shift actually hurts the live model "
                  f"(shifted accuracy {pre_acc:.3f} < 0.8)")
            floor = args.recovery_floor * clean_acc
            sent = 0
            recovered_at = None
            curve = []  # (feedback_sent, generation, overall, untouched)
            last_gen = 0
            while sent < args.feedback_budget:
                true = int(sent % k)
                row = clusters.sample(true, 1)[0]
                status, body = send_feedback(server, row,
                                             shift.get(true, true))
                if status not in (200, 429):
                    raise SystemExit(f"/feedback answered {status}: "
                                     f"{body}")
                sent += 1
                gen = body.get("generation", last_gen)
                # Checkpoint on every promotion and every 25 samples —
                # served accuracy only moves on promotion, so the fixed
                # checkpoints chart the pre-promotion plateau.
                if gen != last_gen or sent % 25 == 0:
                    last_gen = gen
                    overall = served_accuracy(server, eval_rows,
                                              shifted_labels)
                    retained = served_accuracy(
                        server, eval_rows[untouched],
                        shifted_labels[untouched])
                    curve.append({"feedback": sent, "generation": gen,
                                  "accuracy": overall,
                                  "untouched_accuracy": retained})
                    if overall >= floor and recovered_at is None:
                        recovered_at = sent
                        break
            post_acc = served_accuracy(server, eval_rows, shifted_labels)
            check(recovered_at is not None and post_acc >= floor,
                  f"feedback recovers >= {args.recovery_floor:.0%} of "
                  f"clean accuracy within {args.feedback_budget} "
                  f"samples (acc {post_acc:.3f} vs floor {floor:.3f}, "
                  f"recovered at {recovered_at})")
            retained = served_accuracy(server, eval_rows[untouched],
                                       shifted_labels[untouched])
            check(retained >= floor,
                  f"untouched classes are not forgotten (replay-free "
                  f"retention {retained:.3f} >= {floor:.3f})")
            status_body = onlinez(server)
            check(status_body["generation"] >= 1
                  and status_body["promotions"] >= 1,
                  f"recovery went through real promotions "
                  f"(generation={status_body['generation']})")
            print("forgetting curve (checkpoints + promotions):")
            for point in curve:
                print(f"  after {point['feedback']:4d} feedback "
                      f"(gen {point['generation']}): overall "
                      f"{point['accuracy']:.3f}, untouched "
                      f"{point['untouched_accuracy']:.3f}")
            results["phases"]["recovery"] = {
                "clean_accuracy": clean_acc,
                "shifted_accuracy_before": pre_acc,
                "shifted_accuracy_after": post_acc,
                "untouched_retention": retained,
                "feedback_to_recover": recovered_at,
                "generations": status_body["generation"],
                "forgetting_curve": curve,
            }
            server.stop()

        # -- phase 3: poisoned stream must never promote -------------
        telemetry.get_registry().reset()
        server = boot(bundle_path, MANUAL_TOML, workdir, "poison")
        host, port = server.address
        before_fp = server.engine.bundle.info["config_fingerprint"]
        rng = fresh_rng((args.seed, "check-online-poison"))
        rejections = 0
        for round_no in range(args.poison_rounds):
            for _ in range(80):
                true = int(rng.integers(0, k))
                wrong = int((true + 1 + rng.integers(0, k - 1)) % k)
                status, body = send_feedback(
                    server, clusters.sample(true, 1)[0], wrong)
                if status not in (200, 422, 429):
                    raise SystemExit(f"/feedback answered {status}: "
                                     f"{body}")
            status, decision = http_json(host, port, "POST", "/promote")
            if status != 200:
                raise SystemExit(f"/promote answered {status}")
            if not decision["promote"]:
                rejections += 1
        after_fp = server.engine.bundle.info["config_fingerprint"]
        check(rejections == args.poison_rounds,
              f"poisoned feedback rejected on all "
              f"{args.poison_rounds} promote attempts "
              f"(reasons={decision['reasons']})")
        check(before_fp == after_fp and onlinez(server)["generation"] == 0,
              "live model fingerprint untouched by the poison stream")
        results["phases"]["poison"] = {
            "rounds": args.poison_rounds,
            "rejections": rejections,
            "last_reasons": decision["reasons"],
        }
        server.stop()
        if args.inject_poison:
            print("\n--inject-poison self-check: poisoned stream was "
                  + ("rejected" if not failures else "NOT rejected"))
            return 1 if failures else 0

        # -- phase 4: class-incremental arrival ----------------------
        telemetry.get_registry().reset()
        server = boot(bundle_path, MANUAL_TOML, workdir, "newclass")
        host, port = server.address
        old_rows = np.array(server.engine.class_matrix, copy=True)
        for _ in range(120):
            status, body = send_feedback(
                server, clusters.sample(k, 1)[0], k)
            if status not in (200, 429):
                raise SystemExit(f"/feedback answered {status}: {body}")
        status, decision = http_json(host, port, "POST", "/promote")
        check(status == 200 and decision.get("promoted"),
              f"new-class feedback promotes "
              f"(reasons={decision.get('reasons')})")
        new_matrix = np.asarray(server.engine.class_matrix)
        check(new_matrix.shape[0] == k + 1,
              f"promoted model grew to {k + 1} classes "
              f"(got {new_matrix.shape[0]})")
        check(np.array_equal(new_matrix[:k], old_rows),
              "pre-existing class hypervectors are bit-exact after "
              "class-incremental promotion")
        new_eval = clusters.sample(k, args.eval_rows)
        new_acc = served_accuracy(server, new_eval,
                                  [k] * len(new_eval))
        check(new_acc >= 0.95,
              f"the new class is served without retraining "
              f"(accuracy {new_acc:.3f} >= 0.95)")
        old_acc = served_accuracy(server, eval_rows, eval_labels)
        check(old_acc >= 0.95,
              f"old classes still serve accurately "
              f"(accuracy {old_acc:.3f} >= 0.95)")
        priors = (server.engine.bundle.info["quality_baseline"]
                  ["class_priors"])
        check(len(priors) == k + 1,
              f"promoted baseline priors cover the new class "
              f"({len(priors)} == {k + 1}) so /driftz skew cannot "
              f"permanently fire")
        results["phases"]["class_incremental"] = {
            "new_class_accuracy": new_acc,
            "old_class_accuracy": old_acc,
            "bit_exact_parity": bool(np.array_equal(new_matrix[:k],
                                                    old_rows)),
            "priors": len(priors),
        }
        server.stop()

        # -- phase 5: atomic promotion under concurrent load ---------
        telemetry.get_registry().reset()
        server = boot(bundle_path, MANUAL_TOML, workdir, "atomic")
        host, port = server.address
        old_fp = server.engine.bundle.info["config_fingerprint"]
        for sent in range(200):  # build a promotable shadow
            true = int(sent % k)
            status, _ = send_feedback(server, clusters.sample(true, 1)[0],
                                      shift.get(true, true))
            if status not in (200, 429):
                raise SystemExit(f"/feedback answered {status}")
        torn, statuses, fingerprints = [], [], set()

        def hammer():
            rng_local = np.random.default_rng()
            for _ in range(args.load_requests):
                label = int(rng_local.integers(0, k))
                row = clusters.centers[label] + args.noise * \
                    rng_local.standard_normal(args.features)
                status, body = http_json(
                    host, port, "POST", "/predict",
                    {"features": [row.tolist()]}, timeout=30.0)
                statuses.append(status)
                if status != 200 or "labels" not in body \
                        or len(body["labels"]) != 1:
                    torn.append((status, body))
                else:
                    fingerprints.add(body["model"])

        threads = [threading.Thread(target=hammer)
                   for _ in range(args.load_threads)]
        for thread in threads:
            thread.start()
        status, decision = http_json(host, port, "POST", "/promote",
                                     timeout=60.0)
        promoted = status == 200 and decision.get("promoted", False)
        for thread in threads:
            thread.join()
        new_fp = server.engine.bundle.info["config_fingerprint"]
        check(promoted, f"promotion landed during the load "
                        f"(reasons={decision.get('reasons')})")
        check(not torn and all(s == 200 for s in statuses),
              f"zero torn responses across {len(statuses)} concurrent "
              f"/predict calls (bad={torn[:3]})")
        check(fingerprints <= {old_fp, new_fp},
              f"every response fingerprint is exactly the old or new "
              f"model ({len(fingerprints)} distinct)")
        results["phases"]["atomic"] = {
            "requests": len(statuses),
            "torn": len(torn),
            "fingerprints": len(fingerprints),
            "promoted": promoted,
        }
        server.stop()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    # -- ledger: trend-gate recovery latency like bench_gate ---------
    config = {"gate": "check_online", "dim": args.dim,
              "features": args.features, "classes": args.classes,
              "noise": args.noise, "budget": args.feedback_budget,
              "seed": args.seed}
    recovery = results["phases"].get("recovery", {})
    record = RunRecord(pipeline="serve-online", kind="online",
                       config=config, seed=args.seed,
                       wall_s=time.time() - t_start,
                       final_accuracy=recovery.get(
                           "shifted_accuracy_after"),
                       test_accuracy=recovery.get("untouched_retention"),
                       extra={"online": results})
    ledger = RunLedger(args.ledger_dir)
    report = regress.gate_run(ledger, record)
    print()
    print(report.to_markdown())
    if not report.passed:
        failures.append("ledger median+MAD gate")
    if not args.no_append:
        ledger.append(record)
        print(f"\nledgered kind=online run under {ledger.path}")

    if failures:
        print(f"\nONLINE GATE FAILED: {len(failures)} assertion(s):",
              file=sys.stderr)
        for label in failures:
            print(f"  - {label}", file=sys.stderr)
        return 1
    print("\nonline gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
