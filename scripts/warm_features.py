"""Warm the feature cache for every teacher as its weights appear.

Polls the teacher cache and, whenever a teacher finishes pretraining,
runs the one-time multi-layer feature extraction so the accuracy
benchmarks start instantly.
"""
import os
import time

from repro.experiments import (DATASETS, MODEL_WIDTHS, TEACHER_EPOCHS,
                               TEACHER_EPOCH_OVERRIDES, cached_features,
                               load_dataset)
from repro.models import paper_cut_layers
from repro.models.trainer import _config_key, default_cache_dir

PLAN = [("s10", "vgg16"), ("s10", "efficientnet_b0"),
        ("s10", "mobilenetv2"), ("s10", "efficientnet_b7"),
        ("s25", "vgg16")]


def teacher_path(name, dataset_key):
    cfg = DATASETS[dataset_key]
    x_tr, _, _, _ = load_dataset(dataset_key)
    epochs = TEACHER_EPOCH_OVERRIDES.get((name, dataset_key),
                                         TEACHER_EPOCHS[name])
    config = {"name": name, "classes": cfg.num_classes,
              "width": MODEL_WIDTHS[name], "image": 32, "epochs": epochs,
              "batch": 64, "lr": 2e-3, "seed": cfg.seed, "data": cfg.tag,
              "n_train": int(len(x_tr))}
    return os.path.join(default_cache_dir(),
                        f"{name}-{_config_key(config)}.npz")


pending = list(PLAN)
while pending:
    for item in list(pending):
        dataset_key, name = item
        if os.path.exists(teacher_path(name, dataset_key)):
            t0 = time.time()
            cached_features(name, dataset_key, paper_cut_layers(name))
            print(f"warmed {name}/{dataset_key} in "
                  f"{time.time() - t0:.0f}s", flush=True)
            pending.remove(item)
    time.sleep(15)
print("all features warmed")
