"""Reproduce the HD robustness curve: accuracy vs hypervector bit-flip rate.

Trains the paper's three systems (NSHD / BaselineHD / VanillaHD) on the
synthetic dataset, then sweeps bit-flip corruption of the encoded query
hypervectors (and/or the class-hypervector item memory) across a rate
grid, printing the EXPERIMENTS.md-style table.  The deployability claim
to look for: accuracy decays *smoothly* toward chance at p = 0.5 instead
of collapsing at the first flipped bit.

Usage (CPU, ~a minute at the default small scale)::

    PYTHONPATH=src python scripts/robustness_sweep.py
    PYTHONPATH=src python scripts/robustness_sweep.py \
        --target memory --dim 2000 --trials 5 --out results/robustness.txt
"""

import argparse
import os
import time

import numpy as np

from repro.data import make_dataset, normalize_images
from repro.learn import NSHD, BaselineHD, VanillaHD
from repro.models import create_model, train_cnn
from repro.reliability import DEFAULT_RATES, format_sweep, sweep_systems


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="accuracy-vs-bit-flip-rate robustness sweep")
    parser.add_argument("--classes", type=int, default=5)
    parser.add_argument("--train", type=int, default=400)
    parser.add_argument("--test", type=int, default=200)
    parser.add_argument("--dim", type=int, default=1000,
                        help="hypervector dimensionality D")
    parser.add_argument("--cnn-epochs", type=int, default=6)
    parser.add_argument("--hd-epochs", type=int, default=10)
    parser.add_argument("--rates", type=float, nargs="+",
                        default=list(DEFAULT_RATES))
    parser.add_argument("--target", choices=("query", "memory", "both"),
                        default="query",
                        help="corrupt encoded queries, the class-HV item "
                             "memory, or both")
    parser.add_argument("--trials", type=int, default=3,
                        help="independent corruption seeds per rate")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None,
                        help="also write the table to this file")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    t0 = time.time()

    x_tr, y_tr, x_te, y_te = make_dataset(
        num_classes=args.classes, num_train=args.train, num_test=args.test,
        seed=args.seed)
    x_tr, mean, std = normalize_images(x_tr)
    x_te, _, _ = normalize_images(x_te, mean, std)

    print("training teacher CNN ...", flush=True)
    model = create_model("vgg16", num_classes=args.classes, width_mult=0.25,
                         seed=args.seed)
    train_cnn(model, x_tr, y_tr, epochs=args.cnn_epochs, batch_size=32,
              lr=2e-3, seed=args.seed, augment=False)
    model.eval()
    print(f"teacher test accuracy: {model.accuracy(x_te, y_te):.3f}")

    systems = {
        "NSHD": NSHD(model, layer_index=21, dim=args.dim,
                     reduced_features=64, seed=args.seed),
        "BaselineHD": BaselineHD(model, layer_index=21, dim=args.dim,
                                 seed=args.seed),
        "VanillaHD": VanillaHD(args.classes, dim=args.dim, seed=args.seed),
    }
    for name, system in systems.items():
        print(f"training {name} ...", flush=True)
        system.fit(x_tr, y_tr, epochs=args.hd_epochs, batch_size=64)
        print(f"  clean test accuracy: "
              f"{system.accuracy(x_te, y_te):.3f}")

    print(f"sweeping rates {args.rates} on target={args.target!r} "
          f"({args.trials} trials each) ...", flush=True)
    results = sweep_systems(systems, x_te, y_te, rates=args.rates,
                            target=args.target, trials=args.trials,
                            seed=args.seed)
    table = format_sweep(
        results, title=f"Accuracy vs bit-flip rate (target={args.target})")
    print()
    print(table)

    chance = 1.0 / args.classes
    print(f"\nchance accuracy: {chance:.3f}; "
          f"wall time {time.time() - t0:.0f}s")
    if args.out:
        os.makedirs(os.path.dirname(os.path.abspath(args.out)),
                    exist_ok=True)
        with open(args.out, "w") as handle:
            handle.write(table + "\n")
        print(f"table written to {args.out}")


if __name__ == "__main__":
    main()
