#!/bin/bash
# Full reproduction pipeline: install, pretrain teachers (cached),
# run the test suite, then regenerate every table/figure.
set -e
cd "$(dirname "$0")/.."
pip install -e . --no-build-isolation 2>/dev/null || python setup.py develop
python scripts/pretrain_teachers.py
python scripts/warm_features.py
pytest tests/ 2>&1 | tee test_output.txt
# Benchmark invocations append per-benchmark ledger entries via
# benchmarks/conftest.py (results/ledger/benchmarks.jsonl); the
# --benchmark-json dump is additionally ingested into the run ledger
# below so the figure benchmarks share the regression trajectory.
pytest benchmarks/ --benchmark-only \
    --benchmark-json results/benchmark_run.json 2>&1 | tee bench_output.txt
python scripts/bench_gate.py --no-run \
    --ingest-benchmark-json results/benchmark_run.json
# Perf-regression gate: smoke pipelines vs the committed run ledger
# (bootstraps and passes on first run; see scripts/check_regression.sh).
bash scripts/check_regression.sh
# Serving subsystem: HTTP round-trip, packed/float agreement, overload
# shedding, and the >= 3x batched-speedup gate (see scripts/check_serve.sh).
bash scripts/check_serve.sh
# Stage-graph parity: train -> freeze -> checkpoint -> serve agreement on
# a freshly trained model (see scripts/check_stage_parity.sh).
bash scripts/check_stage_parity.sh
# Fleet fault tolerance: supervised workers + router chaos-tested under
# load (kill / hang / poison; see scripts/check_fleet.sh).
bash scripts/check_fleet.sh
# Request tracing: stitched cross-process span trees (router -> worker
# -> batcher -> stage, incl. failover), /tracez + /requestz, and the
# <5% tracing-disabled overhead gate (see scripts/check_trace.sh).
bash scripts/check_trace.sh
# Model quality: streaming drift monitors + alert rules engine on the
# serving path — injected covariate shift / label skew must fire their
# alerts within budget, clean traffic stays quiet, and monitors add
# <5% to serve P99 (see scripts/check_quality.sh).
bash scripts/check_quality.sh
# Online learning: guarded /feedback shadow updates + gated atomic
# promotion — label-shifted stream must recover >= 90% of clean accuracy,
# poisoned streams must never promote, class-incremental arrival serves
# with bit-exact parity for existing classes (see scripts/check_online.sh).
bash scripts/check_online.sh
# Docs/dashboards lint: every metric name registered in src/repro/ must
# be documented in docs/OBSERVABILITY.md (and vice versa).
python scripts/check_metric_names.py
echo "Results tables are under results/, run ledger under results/ledger/"
