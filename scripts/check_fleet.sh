#!/bin/bash
# Tier-2 fleet check: boot a real 4-worker supervised fleet behind the
# consistent-hash router and chaos-test it under closed-loop load:
#   * SIGKILL one worker mid-load (crash/restart path);
#   * wedge another via the /slow stall so only the probe-timeout hang
#     detector can find it;
#   * serve a torn bundle to a third worker's /reload (must 409 and
#     keep the old engine);
# then assert the SLO: >= 99% request success, at least one circuit
# breaker opened and closed again, both faulted workers restarted and
# re-entered rotation, recovery P99 back near baseline, and routed
# answers bit-exact with a local engine on the same bundle.
# The run lands in the ledger (kind="fleet") and is gated against the
# rolling median+MAD baseline (see scripts/chaos_serve.py).
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== fleet check: chaos harness (kill / hang / poison under load) =="
python scripts/chaos_serve.py

echo
echo "fleet checks passed"
