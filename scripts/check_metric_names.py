"""Lint: metric names in src/repro/ ↔ docs/OBSERVABILITY.md reference.

Dashboards, alert rules, and runbooks are written against metric
*names*; a rename in code silently breaks all of them. This lint keeps
the "Metric name reference" appendix of ``docs/OBSERVABILITY.md``
authoritative by checking **both directions**:

* every metric registered in ``src/repro/`` (a string literal passed to
  ``inc`` / ``set_gauge`` / ``observe`` / ``observe_many`` /
  ``counter`` / ``gauge`` / ``histogram``, or assigned to a
  ``*_metric`` attribute) must match a documented name;
* every documented name must match a registration site, so the doc
  cannot accumulate ghosts.

Runtime-substituted segments are wildcards on both sides: an f-string
``{...}`` placeholder in code and a ``<...>`` placeholder in the doc
each match exactly one dotted segment (``alert.state.{rule.name}`` ↔
``alert.state.<rule>``). A literal ending in ``.`` (string
concatenation) gets a trailing wildcard.

Wired into ``scripts/run_all.sh``; exits nonzero listing the drift.
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src", "repro")
DOC_PATH = os.path.join(REPO_ROOT, "docs", "OBSERVABILITY.md")
DOC_SECTION = "## Metric name reference"

#: The registry implementation itself registers nothing by name.
SKIP_FILES = {os.path.join("telemetry", "metrics.py")}

#: String literal reaching the registry: a call to one of its methods,
#: or an f-string stored on a ``*_metric`` attribute for later inc().
CODE_PATTERN = re.compile(
    r'(?:\.(?:inc|set_gauge|observe|observe_many|counter|gauge|'
    r'histogram)\(\s*|_metric\s*=\s*)(f?)"([^"]+)"')

#: A normalized metric name: dotted lowercase segments, ``*`` wild.
NAME_SHAPE = re.compile(r"^[a-z0-9_*-]+(\.[a-z0-9_*-]+)+$")


def normalize_code(raw: str, is_fstring: bool) -> str:
    name = re.sub(r"\{[^}]*\}", "*", raw) if is_fstring else raw
    if name.endswith("."):
        name += "*"
    return name


def normalize_doc(raw: str) -> str:
    return re.sub(r"<[^>]*>", "*", raw)


def collect_code():
    """→ [(normalized name, "path:line")] for every registration."""
    found = []
    for root, dirs, files in os.walk(SRC_DIR):
        dirs[:] = [d for d in dirs if d != "__pycache__"]
        for fname in sorted(files):
            if not fname.endswith(".py"):
                continue
            path = os.path.join(root, fname)
            rel = os.path.relpath(path, SRC_DIR)
            if rel in SKIP_FILES:
                continue
            with open(path) as handle:
                text = handle.read()
            for match in CODE_PATTERN.finditer(text):
                name = normalize_code(match.group(2),
                                      bool(match.group(1)))
                if not NAME_SHAPE.match(name):
                    continue
                line = text.count("\n", 0, match.start()) + 1
                found.append((name, f"{os.path.relpath(path, REPO_ROOT)}"
                                    f":{line}"))
    return found


def collect_doc():
    """→ [normalized name] from the reference appendix's backticks."""
    with open(DOC_PATH) as handle:
        text = handle.read()
    start = text.find(DOC_SECTION)
    if start < 0:
        raise SystemExit(f"{DOC_PATH} has no '{DOC_SECTION}' section")
    section = text[start + len(DOC_SECTION):]
    cut = section.find("\n## ")
    if cut >= 0:
        section = section[:cut]
    names = []
    for raw in re.findall(r"`([^`]+)`", section):
        name = normalize_doc(raw)
        if NAME_SHAPE.match(name):
            names.append(name)
    return names


def matches(a: str, b: str) -> bool:
    """Token-wise match; ``*`` on either side matches one segment."""
    left, right = a.split("."), b.split(".")
    if len(left) != len(right):
        return False
    return all(x == "*" or y == "*" or x == y
               for x, y in zip(left, right))


def main() -> int:
    code = collect_code()
    doc = collect_doc()
    failures = []

    undocumented = [(name, where) for name, where in code
                    if not any(matches(name, d) for d in doc)]
    for name, where in sorted(set(undocumented)):
        failures.append(f"registered but undocumented: {name} "
                        f"({where}) — add it to docs/OBSERVABILITY.md "
                        f"'{DOC_SECTION}'")

    code_names = {name for name, _ in code}
    ghosts = [d for d in doc
              if not any(matches(c, d) for c in code_names)]
    for name in sorted(set(ghosts)):
        failures.append(f"documented but never registered: {name} — "
                        f"remove it from docs/OBSERVABILITY.md or "
                        f"restore the metric")

    print(f"checked {len(set(code_names))} registered metric pattern(s) "
          f"against {len(set(doc))} documented name(s)")
    if failures:
        print(f"\nMETRIC NAME LINT FAILED "
              f"({len(failures)} finding(s)):", file=sys.stderr)
        for line in failures:
            print(f"  - {line}", file=sys.stderr)
        return 1
    print("metric names and docs agree")
    return 0


if __name__ == "__main__":
    sys.exit(main())
