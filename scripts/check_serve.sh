#!/bin/bash
# Tier-2 serving check: boot the HTTP model server on an ephemeral port,
# fire a bounded load burst at /predict, and verify:
#   * non-zero completed throughput and bit-exact labels between the
#     served (bit-packed) path and the float reference path;
#   * /healthz answers with engine facts; /metrics exposes the batcher
#     counters in Prometheus text format;
#   * overload shedding maps to HTTP 503 (watermark admission control);
#   * clean shutdown (queue drained, workers joined, port released).
# Then runs scripts/serve_bench.py with the >= 3x batched-speedup gate
# and appends the serve record to the run ledger.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== serve check: HTTP round-trip on an ephemeral port =="
python - <<'EOF'
import json
import sys
import urllib.error
import urllib.request

import numpy as np

sys.path.insert(0, "src")
sys.path.insert(0, "scripts")
from serve_bench import synthetic_bundle  # noqa: E402

from repro.serve import InferenceEngine, ModelServer  # noqa: E402

bundle = synthetic_bundle(dim=1024, features=64, classes=8, seed=7)
packed = InferenceEngine(bundle, cache_size=0, build_extractor=False)
floating = InferenceEngine(bundle, use_packed=False, cache_size=0,
                           build_extractor=False)
assert packed.use_packed and not floating.use_packed

rng = np.random.default_rng(7)
features = rng.standard_normal((96, 64))

def post(url, payload, timeout=30):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=timeout) as response:
        return json.loads(response.read())

with ModelServer(packed, port=0, max_batch_size=32,
                 max_latency_ms=2.0, workers=2) as server:
    url = server.url
    # Bounded burst: several multi-sample posts.
    served = []
    for start in range(0, len(features), 16):
        out = post(url + "/predict",
                   {"features": features[start:start + 16].tolist()})
        served.extend(out["labels"])
    assert len(served) == len(features), "dropped requests"
    reference = [int(v) for v in floating.predict_features(features)]
    assert served == reference, "served packed path != float reference"
    print(f"served {len(served)} predictions, packed == float reference")

    health = json.loads(urllib.request.urlopen(
        url + "/healthz", timeout=10).read())
    assert health["status"] == "ok" and health["engine"]["packed"]
    assert health["batcher"]["completed"] >= len(features)
    print(f"healthz ok: {health['batcher']['completed']} completed, "
          f"{health['batcher']['batches']} batches")

    metrics = urllib.request.urlopen(url + "/metrics",
                                     timeout=10).read().decode()
    assert "serve_batcher_completed" in metrics.replace(".", "_"), \
        "batcher counters missing from /metrics"
    print("metrics endpoint exposes batcher counters")

    # Malformed request -> 400, not a crash.
    try:
        post(url + "/predict", {"features": "nope"})
    except urllib.error.HTTPError as exc:
        assert exc.code == 400, f"expected 400, got {exc.code}"
    print("malformed request correctly rejected with 400")

# Overload shedding: watermark 1 with a stalled single worker.
import threading
import time as _time

from repro.reliability import LoadShedder, OverloadShedError  # noqa: E402
from repro.serve.batching import MicroBatcher  # noqa: E402

gate = threading.Event()

def slow_predict(batch):
    gate.wait(5.0)
    return packed.predict_features(batch)

shed = 0
with MicroBatcher(slow_predict, max_batch_size=4, max_latency_ms=1.0,
                  workers=1, shedder=LoadShedder(1),
                  default_timeout_s=10.0) as batcher:
    threads = []
    def submit_one(i):
        global shed
        try:
            batcher.submit(features[i])
        except OverloadShedError:
            shed += 1
    for i in range(8):
        t = threading.Thread(target=submit_one, args=(i,))
        t.start()
        threads.append(t)
        _time.sleep(0.02)
    gate.set()
    for t in threads:
        t.join()
assert shed > 0, "overload never shed despite watermark 1"
print(f"overload shedding engaged ({shed}/8 shed)")
print("serve HTTP round-trip: OK (clean shutdown)")
EOF

echo
echo "== serve bench: batched speedup gate (>= 3x single-sample loop) =="
python scripts/serve_bench.py --min-speedup 3.0

echo
echo "serve checks passed"
