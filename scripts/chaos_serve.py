"""Chaos harness for the serving fleet: kill, hang, and poison workers
under load, then assert the SLO held.

Boots a real 4-worker fleet (:class:`~repro.serve.fleet.Supervisor`
spawning ``python -m repro.serve`` subprocesses with the ``/slow``
fault endpoint armed) behind a :class:`~repro.serve.router.Router`,
drives a closed-loop keep-alive load from ``--clients`` threads, and
injects three process-level faults mid-load on a fixed schedule:

1. **crash** — SIGKILL one worker (the restart path a real segfault
   takes);
2. **hang** — wedge another worker's handler threads via ``POST
   /slow`` so only the supervisor's probe-timeout hang detector can
   find it;
3. **poison** — point a third worker's ``POST /reload`` at a torn
   bundle copy; the worker must answer 409 and keep serving the old
   engine.

The harness then waits for the fleet to heal (both faulted workers
restarted and back in rotation) and measures a clean recovery window.

Asserted SLO (exit nonzero on violation):

* overall request success rate >= 99% across boot/chaos/recovery;
* at least one circuit breaker opened and closed again;
* the killed and hung workers restarted and re-entered rotation;
* the poisoned worker rejected the torn bundle (409) and kept its
  bundle fingerprint;
* recovery-window P99 back within a small multiple of baseline;
* routed answers bit-exact with a local engine on the same bundle.

Request tracing is enabled on the router for the whole run: every
response echoes an ``X-Trace-Id``, the load generator records it, and
the post-mortem prints the 10 slowest plus every failed request with
their span trees pulled from the router's flight recorder.

The run is appended to the run ledger (``kind="fleet"``) with per-phase
latency quantiles, fault/recovery facts, the captured trace ids, and
SLO burn-rate gauges, and gated against the rolling median+MAD baseline
like every other tiered check (``scripts/check_fleet.sh`` wires this
into ``run_all.sh``).

Usage::

    python scripts/chaos_serve.py                 # 4 workers, 8 clients
    python scripts/chaos_serve.py --phase-s 2.0 --clients 4
"""

import argparse
import http.client
import json
import os
import shutil
import sys
import tempfile
import threading
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from serve_bench import report_traces, synthetic_bundle  # noqa: E402

from repro import telemetry  # noqa: E402
from repro.serve import InferenceEngine, Router, Supervisor  # noqa: E402
from repro.telemetry import (disable_request_tracing,  # noqa: E402
                             enable_request_tracing, get_flight_recorder,
                             regress)
from repro.telemetry.ledger import RunLedger, RunRecord  # noqa: E402
from repro.utils.rng import fresh_rng  # noqa: E402

#: Load-phase names (also the per-phase latency buckets in the ledger).
PHASES = ("baseline", "chaos", "recovery")


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="chaos-test the serving fleet (kill/hang/poison "
                    "under load), assert the SLO, ledger the result")
    parser.add_argument("--workers", type=int, default=4,
                        help="fleet size (needs >= 4 for the schedule)")
    parser.add_argument("--clients", type=int, default=8,
                        help="closed-loop client threads")
    parser.add_argument("--phase-s", type=float, default=3.0,
                        help="baseline/recovery window length; the "
                             "chaos window runs until the fleet heals")
    parser.add_argument("--heal-timeout-s", type=float, default=30.0,
                        help="max wait for faulted workers to rejoin")
    parser.add_argument("--dim", type=int, default=1024)
    parser.add_argument("--features", type=int, default=64)
    parser.add_argument("--classes", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--min-success", type=float, default=0.99,
                        help="overall request success-rate floor")
    parser.add_argument("--ledger-dir",
                        default=os.path.join(REPO_ROOT, "results", "ledger"))
    parser.add_argument("--no-append", action="store_true")
    parser.add_argument("--no-gate", action="store_true")
    parser.add_argument("--json-out", default=None)
    return parser.parse_args(argv)


def make_torn_copy(bundle_path: str, torn_path: str) -> None:
    """A truncated bundle copy: fails CRC/manifest verification, so a
    worker's ``/reload`` must 409 it and keep the old engine."""
    with open(bundle_path, "rb") as src:
        blob = src.read()
    with open(torn_path, "wb") as dst:
        dst.write(blob[: max(64, len(blob) // 2)])


class LoadGenerator:
    """Closed-loop keep-alive load against the router.

    ``--clients`` threads each hold one persistent connection and fire
    a deterministic rotation of feature payloads as fast as the router
    answers.  Outcomes are bucketed by the *current phase* (the chaos
    schedule flips :attr:`phase` from the main thread) so the three
    windows can be scored separately.

    Every response's ``X-Trace-Id`` echo is recorded alongside its
    latency so the post-mortem can pull the slowest and every failed
    request straight out of the router's flight recorder.
    """

    def __init__(self, host: str, port: int, payloads, clients: int):
        self.host = host
        self.port = int(port)
        self.payloads = payloads
        self.clients = int(clients)
        self.phase = PHASES[0]
        self.results = {name: {"ok": 0, "fail": 0, "latency_ms": []}
                        for name in PHASES}
        self._traced = []   # (latency_ms, status, trace_id) per request
        self._failed = []   # same shape, non-200 / connection errors
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._threads = []

    def _client(self, cid: int) -> None:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=30.0)
        i = cid
        while not self._stop.is_set():
            body = self.payloads[i % len(self.payloads)]
            i += self.clients
            phase = self.phase
            status = None
            trace_id = None
            t0 = telemetry.clock()
            try:
                conn.request("POST", "/predict", body,
                             {"Content-Type": "application/json"})
                response = conn.getresponse()
                response.read()
                status = response.status
                trace_id = response.getheader("X-Trace-Id")
                ok = response.status == 200
            except (http.client.HTTPException, OSError):
                ok = False
                conn.close()
                conn = http.client.HTTPConnection(self.host, self.port,
                                                  timeout=30.0)
            latency_ms = 1000.0 * (telemetry.clock() - t0)
            with self._lock:
                bucket = self.results[phase]
                bucket["ok" if ok else "fail"] += 1
                if ok:
                    bucket["latency_ms"].append(latency_ms)
                self._traced.append((latency_ms, status, trace_id))
                if not ok:
                    self._failed.append((latency_ms, status, trace_id))
        conn.close()

    def start(self) -> "LoadGenerator":
        self._threads = [
            threading.Thread(target=self._client, args=(cid,),
                             name=f"chaos-client-{cid}", daemon=True)
            for cid in range(self.clients)]
        for thread in self._threads:
            thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=35.0)

    def summary(self) -> dict:
        with self._lock:
            out = {}
            for name, bucket in self.results.items():
                lat = np.asarray(bucket["latency_ms"]) \
                    if bucket["latency_ms"] else np.array([0.0])
                out[name] = {
                    "ok": bucket["ok"],
                    "fail": bucket["fail"],
                    "p50_ms": float(np.percentile(lat, 50)),
                    "p95_ms": float(np.percentile(lat, 95)),
                    "p99_ms": float(np.percentile(lat, 99)),
                }
            return out

    def traced(self) -> dict:
        """Slowest-10 and all failed requests with their trace ids,
        in the shape :func:`serve_bench.report_traces` expects."""
        with self._lock:
            slowest = sorted(self._traced,
                             key=lambda r: -(r[0] or 0.0))[:10]
            return {"slowest": slowest, "failed": list(self._failed)}


def post_worker(url: str, path: str, payload: dict,
                timeout: float = 10.0):
    """Direct POST to one worker (bypassing the router) → (status, body)."""
    host_port = url.split("//", 1)[1]
    host, port = host_port.rsplit(":", 1)
    conn = http.client.HTTPConnection(host, int(port), timeout=timeout)
    try:
        conn.request("POST", path, json.dumps(payload).encode("utf-8"),
                     {"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        conn.close()


def wait_until(predicate, timeout_s: float, poll_s: float = 0.1) -> bool:
    deadline = telemetry.clock() + timeout_s
    while telemetry.clock() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return predicate()


def main(argv=None) -> int:
    args = parse_args(argv)
    if args.workers < 4:
        print("error: the chaos schedule faults 3 distinct workers; "
              "--workers must be >= 4", file=sys.stderr)
        return 2
    telemetry.get_registry().reset()
    telemetry.get_tracer().reset()
    # Router-side request tracing, in-process: every request gets a
    # trace id echoed in X-Trace-Id and lands in this process's flight
    # recorder (the workers are subprocesses; their spans stay local).
    enable_request_tracing(service="chaos-router", sample_rate=1.0)

    failures: list = []

    def check(condition: bool, label: str) -> None:
        print(("PASS" if condition else "FAIL") + f"  {label}")
        if not condition:
            failures.append(label)

    workdir = tempfile.mkdtemp(prefix="chaos_serve_")
    bundle_path = os.path.join(workdir, "bundle.npz")
    torn_path = os.path.join(workdir, "torn.npz")
    bundle = synthetic_bundle(args.dim, args.features, args.classes,
                              args.seed)
    bundle.save(bundle_path)
    make_torn_copy(bundle_path, torn_path)
    reference = InferenceEngine(bundle, cache_size=0,
                                build_extractor=False)

    rng = fresh_rng((args.seed, "chaos-serve-load"))
    features = rng.standard_normal((64, args.features))
    payloads = [json.dumps({"features": row.tolist()}).encode("ascii")
                for row in features]
    expected = [int(v) for v in reference.predict_features(features)]

    supervisor = Supervisor(
        bundle_path, workers=args.workers, chaos=True,
        probe_interval_s=0.1, probe_timeout_s=0.5, hang_probe_limit=3,
        backoff_base_s=0.2, backoff_max_s=2.0,
        crash_loop_threshold=8, crash_loop_window_s=10.0,
        worker_args=["--cache-size", "64"])
    router = Router(
        supervisor, port=0, max_attempts=3, retry_backoff_s=0.02,
        request_timeout_s=2.0,
        breaker_options={"failure_threshold": 3, "min_requests": 8,
                         "recovery_timeout_s": 0.5})

    t_start = telemetry.clock()
    phase_walls = {}
    load = None
    try:
        supervisor.start()
        router.start()
        host, port = router.address
        print(f"fleet up: {args.workers} workers behind {router.url}")

        # -- parity before anything burns: routed == local engine.
        parity = []
        for i in (0, 1, 2, 3):
            status, payload = post_worker(router.url, "/predict",
                                          {"features":
                                           features[i].tolist()})
            parity.append(status == 200
                          and payload["labels"] == [expected[i]])
        check(all(parity), "routed answers bit-exact with local engine")

        load = LoadGenerator(host, port, payloads, args.clients).start()

        # Phase 1: baseline --------------------------------------------
        t0 = telemetry.clock()
        time.sleep(args.phase_s)
        phase_walls["baseline"] = telemetry.clock() - t0

        # Phase 2: chaos -----------------------------------------------
        load.phase = "chaos"
        t0 = telemetry.clock()
        kill_id, hang_id, poison_id = "w0", "w1", "w2"

        dead_pid = supervisor.kill_worker(kill_id)
        print(f"chaos: SIGKILLed {kill_id} (pid {dead_pid})")

        time.sleep(0.5)
        hang_url = next(w.url for w in supervisor.workers
                        if w.worker_id == hang_id)
        status, _ = post_worker(hang_url, "/slow", {"stall_s": 30.0},
                                timeout=5.0)
        check(status == 200, f"/slow accepted on {hang_id} "
                             f"(chaos endpoint armed)")
        print(f"chaos: wedged {hang_id} via /slow")

        time.sleep(0.5)
        poison_url = next(w.url for w in supervisor.workers
                          if w.worker_id == poison_id)
        before = next(w for w in supervisor.workers
                      if w.worker_id == poison_id).last_probe or {}
        status, payload = post_worker(poison_url, "/reload",
                                      {"bundle": torn_path}, timeout=10.0)
        check(status == 409 and not payload.get("reloaded", True),
              f"torn bundle reload rejected with 409 on {poison_id}")
        print(f"chaos: torn-bundle reload answered {status} "
              f"on {poison_id}")

        def healed() -> bool:
            description = supervisor.describe()
            by_id = {w["id"]: w for w in description["workers"]}
            return (description["up"] == args.workers
                    and by_id[kill_id]["restarts"] >= 1
                    and by_id[hang_id]["restarts"] >= 1)

        check(wait_until(healed, args.heal_timeout_s),
              f"fleet healed within {args.heal_timeout_s:.0f}s "
              f"(both faulted workers restarted, all up)")
        phase_walls["chaos"] = telemetry.clock() - t0

        # Phase 3: recovery --------------------------------------------
        load.phase = "recovery"
        t0 = telemetry.clock()
        time.sleep(args.phase_s)
        phase_walls["recovery"] = telemetry.clock() - t0
        load.stop()

        # -- post-mortem assertions ------------------------------------
        description = supervisor.describe()
        by_id = {w["id"]: w for w in description["workers"]}
        check("hung" in (by_id[hang_id]["last_failure"] or ""),
              f"{hang_id} failure classified as hang "
              f"({by_id[hang_id]['last_failure']!r})")

        health = router.health()
        opens = sum(int(b["stats"]["opens"])
                    for b in health["breakers"].values())
        closes = sum(int(b["stats"]["closes"])
                     for b in health["breakers"].values())
        check(opens >= 1, f"circuit breaker opened under chaos "
                          f"(opens={opens})")
        check(closes >= 1, f"circuit breaker closed again after "
                           f"recovery (closes={closes})")

        status, payload = post_worker(poison_url, "/predict",
                                      {"features":
                                       features[0].tolist()})
        check(status == 200 and payload["labels"] == [expected[0]],
              f"{poison_id} still serves the old bundle correctly "
              f"after the poisoned reload")
        after = next(w for w in supervisor.workers
                     if w.worker_id == poison_id).last_probe or {}
        before_fp = (before.get("bundle") or {}).get("fingerprint")
        after_fp = (after.get("bundle") or {}).get("fingerprint")
        check(bool(before_fp) and after_fp == before_fp,
              f"{poison_id} bundle fingerprint unchanged "
              f"({after_fp!r})")

        summary = load.summary()
        total_ok = sum(s["ok"] for s in summary.values())
        total = total_ok + sum(s["fail"] for s in summary.values())
        success_rate = total_ok / max(total, 1)
        check(total >= args.clients * 10,
              f"load generator actually generated load ({total} reqs)")
        check(success_rate >= args.min_success,
              f"success rate {success_rate:.4%} >= "
              f"{args.min_success:.0%} ({total - total_ok}/{total} "
              f"failed)")
        p99_floor_ms = 100.0
        check(summary["recovery"]["p99_ms"]
              <= max(10.0 * summary["baseline"]["p99_ms"], p99_floor_ms),
              f"recovery P99 {summary['recovery']['p99_ms']:.1f}ms back "
              f"near baseline {summary['baseline']['p99_ms']:.1f}ms")

        # -- flight-recorder post-mortem: slowest + every failure -----
        traced = load.traced()
        traced_ok = sum(1 for _, _, tid in traced["slowest"] if tid)
        check(traced_ok == len(traced["slowest"]),
              f"every slow request carried a trace id "
              f"({traced_ok}/{len(traced['slowest'])})")
        report_traces(traced)
    finally:
        if load is not None and not load._stop.is_set():
            load.stop()
        router.stop()
        supervisor.stop()
        disable_request_tracing()
        shutil.rmtree(workdir, ignore_errors=True)
    wall_s = telemetry.clock() - t_start

    for name in PHASES:
        s = summary[name]
        print(f"{name:>9}: ok={s['ok']:>5} fail={s['fail']:>3}  "
              f"p50={s['p50_ms']:.1f} p95={s['p95_ms']:.1f} "
              f"p99={s['p99_ms']:.1f} ms")
    print(f"fleet: restarts={description['restarts']} "
          f"breaker opens={opens} closes={closes} "
          f"success={success_rate:.4%}")

    snapshot = telemetry.get_registry().snapshot()

    def counter(name: str) -> float:
        entry = snapshot.get(name) or {}
        return float(entry.get("value", 0.0))

    gauge = counter  # gauges snapshot to the same {"value": ...} shape

    config = {
        "workers": args.workers, "clients": args.clients,
        "phase_s": args.phase_s, "dim": args.dim,
        "features": args.features, "classes": args.classes,
        "seed": args.seed,
    }
    record = RunRecord.capture(pipeline="fleet", kind="fleet",
                               config=config, seed=args.seed,
                               wall_s=wall_s)
    record.stage_times.update(
        {f"fleet.{name}": phase_walls[name] for name in PHASES})
    record.extra["fleet"] = {
        "success_rate": success_rate,
        "requests": total,
        "failed": total - total_ok,
        "phases": summary,
        "restarts": description["restarts"],
        "breaker_opens": opens,
        "breaker_closes": closes,
        "router": {
            "retries": counter("fleet.router.retries"),
            "rerouted": counter("fleet.router.rerouted"),
            "connect_errors": counter("fleet.router.connect_errors"),
            "breaker_skips": counter("fleet.router.breaker_skips"),
            "exhausted": counter("fleet.router.exhausted"),
        },
        "traces": {
            "slowest": [[lat, status, tid]
                        for lat, status, tid in traced["slowest"]],
            "failed": [[lat, status, tid]
                       for lat, status, tid in traced["failed"]],
            "recorder_retained": len(get_flight_recorder().retained_ids()),
        },
        "slo_burn": {
            "availability_fast": gauge("fleet.slo.availability.burn_fast"),
            "availability_slow": gauge("fleet.slo.availability.burn_slow"),
            "latency_fast": gauge("fleet.slo.latency.burn_fast"),
            "latency_slow": gauge("fleet.slo.latency.burn_slow"),
        },
        "slo_failures": list(failures),
    }

    ledger = RunLedger(args.ledger_dir)
    gate_failed = False
    if not args.no_gate:
        report = regress.gate_run(ledger, record)
        print()
        print(report.to_markdown())
        gate_failed = not report.passed
    if not args.no_append:
        ledger.append(record)
        print(f"\nappended fleet record to {ledger.path}")

    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump({"summary": summary, "config": config,
                       "success_rate": success_rate,
                       "restarts": description["restarts"],
                       "breaker_opens": opens,
                       "failures": failures,
                       "traces": traced},
                      handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json_out}")

    if failures:
        print(f"\nCHAOS SLO FAILED: {len(failures)} assertion(s):",
              file=sys.stderr)
        for label in failures:
            print(f"  - {label}", file=sys.stderr)
        return 1
    if gate_failed:
        print("REGRESSION GATE FAILED", file=sys.stderr)
        return 1
    print("\nchaos SLO held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
