#!/bin/bash
# Telemetry gate: run the telemetry unit/integration suite, a profiled
# end-to-end smoke run (stage breakdown + exports must materialize), and
# the disabled-profiler overhead micro-benchmark, asserting that the
# dormant instrumentation costs < 5% on hot autograd ops.  Intended for
# CI and as a pre-merge check for changes touching the telemetry layer,
# the nn profiling hooks, or the instrumented trainers.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== telemetry suite: metrics, tracing, profiler, exporters, integration =="
python -m pytest tests/test_telemetry_metrics.py \
                 tests/test_telemetry_tracing.py \
                 tests/test_telemetry_profiler.py \
                 tests/test_telemetry_exporters.py \
                 tests/test_telemetry_integration.py -q

echo
echo "== profiled smoke run: stage breakdown + JSONL/Prometheus exports =="
out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT
python scripts/profile_run.py --train 150 --test 80 --cnn-epochs 1 \
    --hd-epochs 2 --dim 400 --reduced 24 --out "$out_dir" > "$out_dir/stdout.txt"
grep -q "Stage-level time breakdown" "$out_dir/stdout.txt"
grep -q "stage.similarity\|similarity" "$out_dir/stdout.txt"
test -s "$out_dir/report.md"
test -s "$out_dir/run.jsonl"
test -s "$out_dir/metrics.prom"
python - "$out_dir" <<'EOF'
import sys
from repro.telemetry import parse_prometheus, read_jsonl
out = sys.argv[1]
events = read_jsonl(f"{out}/run.jsonl")
kinds = {e["type"] for e in events}
assert {"meta", "metric", "span", "op", "layer"} <= kinds, kinds
parsed = parse_prometheus(open(f"{out}/metrics.prom").read())
assert any(name.startswith("repro_train_") for name in parsed), sorted(parsed)
print(f"exports OK: {len(events)} JSONL events, {len(parsed)} Prometheus metrics")
EOF

echo
echo "== dormant-profiler overhead: wrapped ops vs originals (< 5%) =="
python - <<'EOF'
from statistics import median

from repro.telemetry import disabled_overhead_ratio

# Warmup: populate caches / JIT the hot loops so the first timed run is
# not polluted by one-time costs, then gate on the *median* of 3 runs —
# a single min-of-runs sample was flaky under scheduler noise.
disabled_overhead_ratio(iters=20, repeats=2)
ratios = [disabled_overhead_ratio() for _ in range(3)]
ratio = median(ratios)
print("disabled-profiler overhead ratios: "
      + ", ".join(f"{r:.4f}" for r in ratios)
      + f" -> median {ratio:.4f}")
assert ratio < 1.05, (
    f"dormant profiling hooks cost {100 * (ratio - 1):.2f}% > 5% "
    f"(median of runs {[f'{r:.4f}' for r in ratios]})")
EOF

echo
echo "telemetry checks passed"
