"""Profile one NSHD training run end to end and write a run report.

Trains the paper's full pipeline (truncated CNN → manifold learner →
random projection → distilled MASS) on the synthetic dataset with the
telemetry profiler enabled, then prints the Fig. 5-style stage-level
wall-time breakdown (extract → manifold → encode → similarity → update)
and the top-k hottest autograd ops, and writes three artifacts:

* ``report.md`` — the rendered console/markdown run report, including
  the per-epoch HD drift/saturation sparkline trends and (when a run
  ledger exists, or ``--ledger`` appends to one) cross-run sparkline
  trends of the stage self-times and accuracies;
* ``run.jsonl`` — every metric, span and profiler record as JSONL;
* ``metrics.prom`` — Prometheus-style text exposition.

Usage (CPU, well under a minute at the default small scale)::

    PYTHONPATH=src python scripts/profile_run.py
    PYTHONPATH=src python scripts/profile_run.py \
        --dim 2000 --hd-epochs 8 --out results/profile
"""

import argparse
import os
import time

from repro import telemetry
from repro.data import make_dataset, normalize_images
from repro.learn import NSHD
from repro.models import create_model, train_cnn


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="profiled NSHD training run + telemetry report")
    parser.add_argument("--classes", type=int, default=5)
    parser.add_argument("--train", type=int, default=300)
    parser.add_argument("--test", type=int, default=150)
    parser.add_argument("--dim", type=int, default=1000,
                        help="hypervector dimensionality D")
    parser.add_argument("--reduced", type=int, default=64,
                        help="manifold output size F̂")
    parser.add_argument("--cnn-epochs", type=int, default=3)
    parser.add_argument("--hd-epochs", type=int, default=5)
    parser.add_argument("--model", default="vgg16")
    parser.add_argument("--width", type=float, default=0.125)
    parser.add_argument("--layer-index", type=int, default=21,
                        help="extractor cut point (Sec. IV-A)")
    parser.add_argument("--top-k", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=os.path.join("results", "profile"),
                        help="output directory for report/JSONL/Prometheus")
    parser.add_argument("--ledger", action="store_true",
                        help="append this run to the ledger under "
                             "--ledger-dir before rendering trends")
    parser.add_argument("--ledger-dir",
                        default=telemetry.DEFAULT_LEDGER_DIR,
                        help="run-ledger directory for the trend section")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    t0 = time.time()

    # Fresh telemetry state so the artifacts describe exactly this run.
    telemetry.get_registry().reset()
    telemetry.get_tracer().reset()

    x_tr, y_tr, x_te, y_te = make_dataset(
        num_classes=args.classes, num_train=args.train, num_test=args.test,
        seed=args.seed)
    x_tr, mean, std = normalize_images(x_tr)
    x_te, _, _ = normalize_images(x_te, mean, std)

    model = create_model(args.model, num_classes=args.classes,
                         width_mult=args.width, seed=args.seed)
    with telemetry.Profiler() as profiler:
        train_cnn(model, x_tr, y_tr, epochs=args.cnn_epochs, verbose=False,
                  seed=args.seed)
        model.eval()

        nshd = NSHD(model, layer_index=args.layer_index, dim=args.dim,
                    reduced_features=args.reduced, seed=args.seed)
        diag = telemetry.DiagnosticsCallback()
        history = nshd.fit(x_tr, y_tr, epochs=args.hd_epochs,
                           callbacks=[diag])
        test_acc = nshd.accuracy(x_te, y_te)

    registry = telemetry.get_registry()
    registry.set_gauge("run.test_acc", test_acc)
    registry.set_gauge("run.wall_s", time.time() - t0)

    config = {"classes": args.classes, "train": args.train,
              "test": args.test, "dim": args.dim, "reduced": args.reduced,
              "cnn_epochs": args.cnn_epochs, "hd_epochs": args.hd_epochs,
              "model": args.model, "width": args.width,
              "layer_index": args.layer_index}
    ledger = telemetry.RunLedger(args.ledger_dir)
    if args.ledger:
        record = telemetry.RunRecord.capture(
            pipeline="NSHD", kind="profile", config=config, seed=args.seed,
            wall_s=time.time() - t0,
            final_accuracy=history["train_acc"][-1],
            test_accuracy=test_acc, history=history,
            diagnostics=diag.summary())
        ledger.append(record)
        print(f"appended run {record.run_id} to {ledger.path}")

    report = telemetry.render_report(
        profiler=profiler, top_k=args.top_k,
        title="Profiled NSHD training run",
        ledger=ledger if os.path.exists(ledger.path) else None,
        pipeline="NSHD",
        config_fingerprint=(telemetry.config_fingerprint(config)
                            if args.ledger else None),
        diagnostics=diag.summary())
    print(report)
    print(f"final train_acc={history['train_acc'][-1]:.3f} "
          f"test_acc={test_acc:.3f} wall={time.time() - t0:.1f}s")

    os.makedirs(args.out, exist_ok=True)
    report_path = os.path.join(args.out, "report.md")
    with open(report_path, "w") as fh:
        fh.write(report + "\n")
    jsonl_path = os.path.join(args.out, "run.jsonl")
    telemetry.export_jsonl(jsonl_path, profiler=profiler,
                           meta={"script": "profile_run",
                                 "dim": args.dim,
                                 "hd_epochs": args.hd_epochs,
                                 "test_acc": test_acc})
    prom_path = os.path.join(args.out, "metrics.prom")
    telemetry.export_prometheus(prom_path)
    print(f"wrote {report_path}, {jsonl_path}, {prom_path}")


if __name__ == "__main__":
    main()
