#!/bin/bash
# Reliability gate: run the full unit suite, the fault-injection /
# checkpoint / guard tests on their own, and then re-run the numerics-
# sensitive tests with RuntimeWarnings promoted to errors so silent
# numpy overflow/invalid-value warnings fail loudly instead of scrolling
# by.  Intended for CI and as a pre-merge check for changes touching
# trainers, serialization, or the reliability subsystem.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: full unit/property/integration suite =="
python -m pytest tests/ -x -q

echo
echo "== reliability smoke: fault injection, checkpoint/resume, guards =="
python -m pytest tests/test_reliability_faults.py \
                 tests/test_reliability_checkpoint.py \
                 tests/test_reliability_guard.py \
                 tests/test_reliability_report.py -q

echo
echo "== warnings-as-errors: numerics-sensitive paths =="
python -W error::RuntimeWarning -m pytest \
    tests/test_reliability_faults.py \
    tests/test_reliability_checkpoint.py \
    tests/test_reliability_guard.py \
    tests/test_reliability_report.py \
    tests/test_learn_trainers.py \
    tests/test_data.py -q

echo
echo "reliability checks passed"
