"""Ledger extensions riding with the serving subsystem.

Covers the environment-keyed baselines (:func:`env_digest`,
``RunLedger.query(env_digest=...)``, ``gate_run(match_env=...)``) and
ledger compaction (:meth:`RunLedger.compact`).
"""

import json

import pytest

from repro.telemetry import env_digest, env_fingerprint
from repro.telemetry.ledger import RunLedger, RunRecord
from repro.telemetry.regress import gate_run


def make_record(pipeline="nshd", extract=1.0, acc=0.8, env=None, **kwargs):
    kwargs.setdefault("config", {"dim": 400, "seed": 0})
    kwargs.setdefault("metrics", {"m": {"type": "counter", "value": 1.0}})
    kwargs.setdefault("diagnostics", {"final": {"drift_total": 0.2}})
    return RunRecord(
        pipeline=pipeline, seed=0, wall_s=2.0,
        stage_times={"extract": extract, "encode": 0.01},
        final_accuracy=acc, test_accuracy=acc - 0.1,
        history={"train_acc": [0.5, acc]},
        env=env, **kwargs)


ALIEN_ENV = {"python": "3.9.1", "implementation": "CPython",
             "numpy": "1.21.0", "blas": "openblas", "cpu_count": 2,
             "platform": "darwin", "machine": "arm64",
             "system": "Darwin 21.0"}


class TestEnvDigest:
    def test_stable_and_order_independent(self):
        env = env_fingerprint()
        shuffled = dict(reversed(list(env.items())))
        assert env_digest(env) == env_digest(shuffled)
        assert len(env_digest(env)) == 12

    def test_differs_across_environments(self):
        assert env_digest() != env_digest(ALIEN_ENV)

    def test_record_property_and_default(self):
        record = make_record()
        assert record.env_digest == env_digest()  # captured current env
        alien = make_record(env=ALIEN_ENV)
        assert alien.env_digest == env_digest(ALIEN_ENV)

    def test_query_filters_on_env(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        ledger.append(make_record())
        ledger.append(make_record(env=ALIEN_ENV))
        ledger.append(make_record())
        assert len(ledger.query(pipeline="nshd")) == 3
        here = ledger.query(pipeline="nshd", env_digest=env_digest())
        assert len(here) == 2
        assert all(r.env_digest == env_digest() for r in here)


class TestGateEnvKeying:
    def test_alien_history_bootstraps_instead_of_gating(self, tmp_path):
        """5 fast alien runs + a slow local run: match_env=True must
        bootstrap (no baseline on this env); match_env=False would
        compare and fail."""
        ledger = RunLedger(str(tmp_path))
        for _ in range(5):
            ledger.append(make_record(extract=0.1, env=ALIEN_ENV))
        slow = make_record(extract=10.0)

        keyed = gate_run(ledger, slow)
        assert keyed.passed
        assert any(r.status == "insufficient_history"
                   for r in keyed.results)

        legacy = gate_run(ledger, slow, match_env=False)
        assert not legacy.passed

    def test_same_env_history_still_gates(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        for _ in range(5):
            ledger.append(make_record(extract=0.1))
        assert not gate_run(ledger, make_record(extract=10.0)).passed
        assert gate_run(ledger, make_record(extract=0.1)).passed


class TestCompact:
    def test_keeps_window_strips_older(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        for i in range(7):
            ledger.append(make_record(extract=0.1 + 0.001 * i))
        stripped = ledger.compact(window=3)
        assert stripped == 4
        records = ledger.records()
        assert len(records) == 7  # no record is ever dropped
        old, new = records[:4], records[3 + 1:]
        assert all(r.compacted and not r.metrics and not r.diagnostics
                   for r in old)
        assert all(not r.compacted and r.metrics for r in new)
        # Scalars the gate reads survive compaction.
        assert all(r.stage_times["extract"] > 0 and r.wall_s == 2.0
                   and r.final_accuracy == 0.8 for r in old)

    def test_idempotent_and_counts_only_new_work(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        for _ in range(5):
            ledger.append(make_record())
        assert ledger.compact(window=2) == 3
        assert ledger.compact(window=2) == 0

    def test_groups_are_independent(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        for _ in range(4):
            ledger.append(make_record(pipeline="nshd"))
        ledger.append(make_record(pipeline="vanillahd"))
        assert ledger.compact(window=3) == 1  # only nshd's oldest
        vanilla = ledger.query(pipeline="vanillahd")
        assert not vanilla[0].compacted

    def test_compacted_ledger_still_gates(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        for _ in range(5):
            ledger.append(make_record(extract=0.1))
        ledger.compact(window=3)
        assert not gate_run(ledger, make_record(extract=10.0)).passed
        assert gate_run(ledger, make_record(extract=0.1)).passed

    def test_shrinks_file_and_rejects_bad_window(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        for _ in range(6):
            ledger.append(make_record(
                metrics={f"m{i}": {"type": "counter", "value": float(i)}
                         for i in range(50)}))
        import os
        before = os.path.getsize(ledger.path)
        ledger.compact(window=1)
        assert os.path.getsize(ledger.path) < before
        with open(ledger.path) as handle:
            for line in handle:
                json.loads(line)  # still valid JSONL
        with pytest.raises(ValueError, match="window"):
            ledger.compact(window=0)

    def test_empty_ledger_is_noop(self, tmp_path):
        assert RunLedger(str(tmp_path)).compact() == 0
