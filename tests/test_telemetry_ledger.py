"""Run ledger: RunRecord round-trips, schema evolution, ledger queries."""

import json
import math
import os

import numpy as np
import pytest

from repro.telemetry import (MetricsRegistry, Tracer, config_fingerprint,
                             diff_records, diff_report, env_fingerprint,
                             git_info, span, use_registry)
from repro.telemetry.ledger import RunLedger, RunRecord


def make_record(pipeline="nshd", dim=400, acc=0.8, extract=1.0, **kwargs):
    return RunRecord(
        pipeline=pipeline,
        config={"dim": dim, "seed": 0},
        seed=0, wall_s=2.0,
        stage_times={"extract": extract, "encode": 0.01, "similarity": 0.002,
                     "update": 0.005},
        stage_calls={"extract": 1, "encode": 10, "similarity": 30,
                     "update": 30},
        final_accuracy=acc, test_accuracy=acc - 0.1,
        history={"train_acc": [0.5, acc], "epoch_time": [0.4, 0.35]},
        guards={"guard.nan_batches": 0.0},
        diagnostics={"final": {"drift_total": 0.25,
                               "saturation_fraction": 0.01}},
        git={"sha": "f" * 40, "short_sha": "f" * 10, "branch": "main",
             "dirty": False},
        env={"python": "3.11", "numpy": "2.0"},
        **kwargs)


class TestFingerprints:
    def test_env_fingerprint_keys(self):
        info = env_fingerprint()
        for key in ("python", "numpy", "blas", "cpu_count", "platform",
                    "machine"):
            assert key in info, key

    def test_config_fingerprint_order_independent(self):
        assert (config_fingerprint({"a": 1, "b": [2, 3]})
                == config_fingerprint({"b": [2, 3], "a": 1}))

    def test_config_fingerprint_differs_on_value(self):
        assert (config_fingerprint({"dim": 400})
                != config_fingerprint({"dim": 3000}))

    def test_config_fingerprint_handles_non_finite(self):
        fp = config_fingerprint({"alpha": math.nan})
        assert isinstance(fp, str) and len(fp) == 12

    def test_git_info_in_repo(self):
        info = git_info(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        assert set(info) == {"sha", "short_sha", "branch", "dirty"}

    def test_git_info_degrades_outside_repo(self, tmp_path):
        info = git_info(str(tmp_path))
        assert info["sha"] == "unknown"


class TestRunRecord:
    def test_round_trip(self):
        record = make_record()
        restored = RunRecord.from_dict(record.to_dict())
        assert restored.to_dict() == record.to_dict()
        assert restored.pipeline == "nshd"
        assert restored.stage_times["extract"] == 1.0
        assert restored.config_fingerprint == record.config_fingerprint

    def test_unknown_keys_preserved(self):
        data = make_record().to_dict()
        data["future_field"] = {"nested": [1, 2, 3]}
        data["another_new_scalar"] = 7
        restored = RunRecord.from_dict(data)
        assert restored.extra["future_field"] == {"nested": [1, 2, 3]}
        out = restored.to_dict()
        assert out["future_field"] == {"nested": [1, 2, 3]}
        assert out["another_new_scalar"] == 7
        # Round-trip again: nothing decays.
        assert RunRecord.from_dict(out).to_dict() == out

    def test_stored_fingerprint_wins(self):
        data = make_record().to_dict()
        data["config_fingerprint"] = "deadbeef0123"
        assert (RunRecord.from_dict(data).config_fingerprint
                == "deadbeef0123")

    def test_capture_pulls_stages_and_guards(self):
        tracer = Tracer()
        with span("stage.extract", tracer=tracer):
            with span("stage.encode", tracer=tracer):
                pass
        with use_registry() as registry:
            registry.inc("guard.nan_batches", 2)
            registry.set_gauge("train.train_acc", 0.9)
            record = RunRecord.capture(
                "nshd", config={"dim": 16}, tracer=tracer,
                final_accuracy=0.9)
        assert set(record.stage_times) == {"extract", "encode"}
        assert record.guards == {"guard.nan_batches": 2.0}
        assert "train.train_acc" in record.metrics
        assert record.final_accuracy == 0.9

    def test_run_ids_unique(self):
        assert make_record().run_id != make_record().run_id


class TestRunLedger:
    def test_append_and_read(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger"))
        assert ledger.records() == []
        assert len(ledger) == 0
        ledger.append(make_record(acc=0.7))
        ledger.append(make_record(acc=0.8))
        records = ledger.records()
        assert len(records) == 2
        assert [r.final_accuracy for r in records] == [0.7, 0.8]
        # File is valid JSONL line by line.
        with open(ledger.path) as handle:
            for line in handle:
                json.loads(line)

    def test_non_finite_survives_ledger(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        record = make_record()
        record.diagnostics["final"]["drift_relative"] = math.nan
        ledger.append(record)
        restored = ledger.records()[-1]
        assert math.isnan(restored.diagnostics["final"]["drift_relative"])

    def test_query_filters(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        ledger.append(make_record(pipeline="nshd", dim=400))
        ledger.append(make_record(pipeline="nshd", dim=3000))
        ledger.append(make_record(pipeline="vanillahd", dim=400))
        assert len(ledger.query(pipeline="nshd")) == 2
        fp = config_fingerprint({"dim": 400, "seed": 0})
        assert len(ledger.query(config_fingerprint=fp)) == 2
        assert len(ledger.query(pipeline="nshd",
                                config_fingerprint=fp)) == 1
        assert ledger.last(pipeline="vanillahd").pipeline == "vanillahd"
        assert ledger.last(pipeline="missing") is None

    def test_series_helpers(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        for extract, acc in ((1.0, 0.7), (1.1, 0.75), (0.9, 0.72)):
            ledger.append(make_record(extract=extract, acc=acc))
        assert ledger.stage_series("extract") == [1.0, 1.1, 0.9]
        assert ledger.metric_series("final_accuracy") == [0.7, 0.75, 0.72]

    def test_append_preserves_existing_lines(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        ledger.append(make_record(acc=0.5))
        first = open(ledger.path).read()
        ledger.append(make_record(acc=0.6))
        assert open(ledger.path).read().startswith(first)

    def test_corrupt_line_raises_with_line_number(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        ledger.append(make_record())
        with open(ledger.path, "a") as handle:
            handle.write("{broken\n")
        with pytest.raises(ValueError, match=":2:"):
            ledger.records()


class TestDiff:
    def test_diff_records_structure(self):
        a = make_record(extract=1.0, acc=0.7)
        b = make_record(extract=2.0, acc=0.8)
        diff = diff_records(a, b)
        assert diff["stages"]["extract"]["delta"] == pytest.approx(1.0)
        assert diff["stages"]["extract"]["ratio"] == pytest.approx(2.0)
        assert diff["final_accuracy"]["delta"] == pytest.approx(0.1)

    def test_diff_handles_missing_stage(self):
        a = make_record()
        b = make_record()
        del b.stage_times["extract"]
        diff = diff_records(a, b)
        assert diff["stages"]["extract"]["b"] is None
        assert diff["stages"]["extract"]["delta"] is None

    def test_diff_report_markdown(self):
        report = diff_report(make_record(extract=1.0),
                             make_record(extract=3.0))
        assert "stage.extract" in report
        assert "| metric" in report
        assert "final_accuracy" in report
