"""Tests for the synthetic dataset, loaders and augmentation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (SyntheticCIFAR, add_gaussian_noise, augment_batch,
                        iterate_batches, make_dataset, normalize_images,
                        one_hot, random_crop, random_horizontal_flip,
                        train_val_split)


class TestSyntheticCIFAR:
    def test_image_shape_and_range(self):
        ds = SyntheticCIFAR(num_classes=10, seed=0)
        img = ds.render(3, 0)
        assert img.shape == (3, 32, 32)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_determinism(self):
        a = SyntheticCIFAR(num_classes=10, seed=5).render(2, 7)
        b = SyntheticCIFAR(num_classes=10, seed=5).render(2, 7)
        np.testing.assert_allclose(a, b)

    def test_different_seeds_differ(self):
        a = SyntheticCIFAR(num_classes=10, seed=1).render(0, 0)
        b = SyntheticCIFAR(num_classes=10, seed=2).render(0, 0)
        assert not np.allclose(a, b)

    def test_different_indices_differ(self):
        ds = SyntheticCIFAR(num_classes=10, seed=0)
        assert not np.allclose(ds.render(0, 0), ds.render(0, 1))

    def test_label_validation(self):
        ds = SyntheticCIFAR(num_classes=10, seed=0)
        with pytest.raises(ValueError):
            ds.render(10, 0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SyntheticCIFAR(num_classes=1)
        with pytest.raises(ValueError):
            SyntheticCIFAR(image_size=4)

    def test_generate_balanced_and_shuffled(self):
        ds = SyntheticCIFAR(num_classes=5, seed=0)
        x, y = ds.generate(100, "train")
        assert x.shape == (100, 3, 32, 32)
        counts = np.bincount(y, minlength=5)
        np.testing.assert_array_equal(counts, np.full(5, 20))
        # Shuffled: labels should not be in blocks.
        assert not np.array_equal(y, np.sort(y))

    def test_train_test_disjoint(self):
        ds = SyntheticCIFAR(num_classes=4, seed=0)
        x_tr, y_tr = ds.generate(40, "train")
        x_te, y_te = ds.generate(40, "test")
        # No rendered image should appear in both splits.
        tr_flat = x_tr.reshape(40, -1)
        te_flat = x_te.reshape(40, -1)
        cross = tr_flat @ te_flat.T
        self_norm = (tr_flat ** 2).sum(axis=1)
        assert not np.any(np.isclose(cross, self_norm[:, None]) &
                          np.isclose(cross, (te_flat ** 2).sum(axis=1)))

    def test_split_validation(self):
        with pytest.raises(ValueError):
            SyntheticCIFAR(num_classes=3, seed=0).generate(10, "dev")

    def test_same_class_more_similar_than_cross_class(self):
        """The class signal must exist: intra-class correlation above
        inter-class on average (weakly, over many pairs)."""
        ds = SyntheticCIFAR(num_classes=6, seed=0)
        per_class = 12
        images = np.stack([ds.render(c, i) for c in range(6)
                           for i in range(per_class)])
        flat = images.reshape(len(images), -1)
        flat = flat - flat.mean(axis=0)
        labels = np.repeat(np.arange(6), per_class)
        sims = flat @ flat.T
        same = labels[:, None] == labels[None, :]
        np.fill_diagonal(same, False)
        intra = sims[same].mean()
        inter = sims[~(labels[:, None] == labels[None, :])].mean()
        assert intra > inter

    def test_pose_jitter_zero_reduces_variation(self):
        loose = SyntheticCIFAR(num_classes=3, seed=0, pose_jitter=1.0,
                               noise=0.0)
        tight = SyntheticCIFAR(num_classes=3, seed=0, pose_jitter=0.0,
                               noise=0.0)

        def spread(ds):
            imgs = np.stack([ds.render(0, i) for i in range(8)])
            return imgs.std(axis=0).mean()
        assert spread(tight) < spread(loose)

    def test_make_dataset_shapes(self):
        x_tr, y_tr, x_te, y_te = make_dataset(num_classes=3, num_train=30,
                                              num_test=9, seed=0)
        assert x_tr.shape == (30, 3, 32, 32)
        assert x_te.shape == (9, 3, 32, 32)
        assert y_tr.dtype == np.int64

    def test_custom_image_size(self):
        ds = SyntheticCIFAR(num_classes=3, image_size=16, seed=0)
        assert ds.render(0, 0).shape == (3, 16, 16)


class TestLoader:
    def test_normalize_statistics(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(size=(50, 3, 8, 8)) * 4 + 1
        normed, mean, std = normalize_images(x)
        np.testing.assert_allclose(normed.mean(axis=(0, 2, 3)),
                                   np.zeros(3), atol=1e-10)
        np.testing.assert_allclose(normed.std(axis=(0, 2, 3)),
                                   np.ones(3), rtol=1e-10)

    def test_normalize_with_provided_stats(self):
        x = np.ones((2, 3, 2, 2))
        normed, _, _ = normalize_images(x, mean=np.full(3, 1.0),
                                        std=np.full(3, 2.0))
        np.testing.assert_allclose(normed, np.zeros_like(x))

    def test_normalize_zero_std_safe(self):
        x = np.full((4, 1, 2, 2), 3.0)
        normed, _, _ = normalize_images(x)
        assert np.all(np.isfinite(normed))

    def test_iterate_batches_covers_everything(self):
        x = np.arange(10)[:, None].astype(float)
        y = np.arange(10)
        seen = []
        for xb, yb in iterate_batches(x, y, 3,
                                      rng=np.random.default_rng(0)):
            seen.extend(yb.tolist())
        assert sorted(seen) == list(range(10))

    def test_iterate_batches_alignment(self):
        x = np.arange(20)[:, None].astype(float)
        y = np.arange(20)
        for xb, yb in iterate_batches(x, y, 7,
                                      rng=np.random.default_rng(1)):
            np.testing.assert_array_equal(xb[:, 0].astype(int), yb)

    def test_iterate_batches_no_shuffle_ordered(self):
        x = np.arange(6)[:, None].astype(float)
        y = np.arange(6)
        batches = list(iterate_batches(x, y, 4, shuffle=False))
        np.testing.assert_array_equal(batches[0][1], [0, 1, 2, 3])
        np.testing.assert_array_equal(batches[1][1], [4, 5])

    def test_iterate_batches_validation(self):
        with pytest.raises(ValueError):
            list(iterate_batches(np.zeros((3, 1)), np.zeros(2), 2))
        with pytest.raises(ValueError):
            list(iterate_batches(np.zeros((3, 1)), np.zeros(3), 0))

    def test_iterate_batches_rejects_single_chw_image(self):
        # a 3-D array is almost always a CHW image missing its batch axis
        with pytest.raises(ValueError, match="batch axis"):
            list(iterate_batches(np.zeros((3, 8, 8)), np.zeros(3), 2))

    def test_iterate_batches_rejects_bad_labels(self):
        with pytest.raises(ValueError, match="labels"):
            list(iterate_batches(np.zeros((4, 1)), np.zeros((4, 1)), 2))
        with pytest.raises(ValueError, match="dtype"):
            list(iterate_batches(np.zeros((2, 1)),
                                 np.array(["a", "b"]), 1))

    def test_normalize_rejects_non_4d(self):
        with pytest.raises(ValueError, match="4-D NCHW"):
            normalize_images(np.zeros((3, 8, 8)))
        with pytest.raises(ValueError, match="4-D NCHW"):
            normalize_images(np.zeros((10, 5)))

    def test_normalize_rejects_bad_stat_shapes(self):
        x = np.ones((2, 3, 4, 4))
        with pytest.raises(ValueError, match="mean/std"):
            normalize_images(x, mean=np.zeros(2), std=np.ones(3))

    def test_train_val_split_sizes(self):
        x = np.arange(100)[:, None].astype(float)
        y = np.arange(100)
        x_tr, y_tr, x_val, y_val = train_val_split(
            x, y, 0.2, rng=np.random.default_rng(0))
        assert len(x_tr) == 80 and len(x_val) == 20
        assert sorted(np.concatenate([y_tr, y_val]).tolist()) == \
            list(range(100))

    def test_train_val_split_validation(self):
        with pytest.raises(ValueError):
            train_val_split(np.zeros((4, 1)), np.zeros(4), 1.5)

    def test_one_hot(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_one_hot_range_check(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)

    @given(st.integers(min_value=1, max_value=40),
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_property_batches_partition(self, n, batch_size):
        x = np.arange(n)[:, None].astype(float)
        y = np.arange(n)
        total = sum(len(yb) for _, yb in
                    iterate_batches(x, y, batch_size,
                                    rng=np.random.default_rng(0)))
        assert total == n


class TestAugment:
    def test_flip_changes_some_images(self):
        rng = np.random.default_rng(0)
        x = np.random.default_rng(1).uniform(size=(20, 3, 8, 8))
        flipped = random_horizontal_flip(x, rng, prob=1.0)
        np.testing.assert_allclose(flipped, x[:, :, :, ::-1])

    def test_flip_prob_zero_identity(self):
        rng = np.random.default_rng(0)
        x = np.random.default_rng(1).uniform(size=(5, 3, 4, 4))
        np.testing.assert_allclose(random_horizontal_flip(x, rng, 0.0), x)

    def test_crop_preserves_shape(self):
        rng = np.random.default_rng(0)
        x = np.random.default_rng(1).uniform(size=(6, 3, 16, 16))
        assert random_crop(x, rng).shape == x.shape

    def test_noise_changes_values(self):
        rng = np.random.default_rng(0)
        x = np.zeros((2, 3, 4, 4))
        noisy = add_gaussian_noise(x, rng, std=0.1)
        assert noisy.std() > 0

    def test_augment_batch_pipeline(self):
        rng = np.random.default_rng(0)
        x = np.random.default_rng(1).uniform(size=(4, 3, 8, 8))
        out = augment_batch(x, rng, noise_std=0.01)
        assert out.shape == x.shape
        assert not np.allclose(out, x)
