"""Tracing spans: tree structure, self time, reentrancy, threads."""

import threading
import time

import pytest

from repro.telemetry import SpanNode, Tracer, span


def sleep_span(tracer, name, seconds=0.0):
    with span(name, tracer=tracer):
        if seconds:
            time.sleep(seconds)


class TestSpanTree:
    def test_nesting_builds_tree(self):
        tracer = Tracer()
        with span("outer", tracer=tracer):
            with span("inner", tracer=tracer):
                pass
            with span("inner", tracer=tracer):
                pass
        outer = tracer.root.children["outer"]
        assert outer.calls == 1
        inner = outer.children["inner"]
        assert inner.calls == 2
        assert inner.path == "outer/inner"

    def test_self_time_excludes_children(self):
        tracer = Tracer()
        with span("outer", tracer=tracer):
            time.sleep(0.01)
            with span("inner", tracer=tracer):
                time.sleep(0.02)
        outer = tracer.root.children["outer"]
        inner = outer.children["inner"]
        assert outer.total_s >= inner.total_s
        assert outer.self_s == pytest.approx(
            outer.total_s - inner.total_s)
        assert outer.self_s >= 0.0

    def test_reentrant_same_name_nests(self):
        tracer = Tracer()
        with span("stage.update", tracer=tracer):
            with span("stage.update", tracer=tracer):
                pass
        top = tracer.root.children["stage.update"]
        assert top.calls == 1
        assert top.children["stage.update"].calls == 1

    def test_bytes_accounting(self):
        tracer = Tracer()
        with span("io", nbytes=100, tracer=tracer) as s:
            s.add_bytes(50)
        assert tracer.root.children["io"].bytes == 150

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with span("boom", tracer=tracer):
                raise RuntimeError("x")
        node = tracer.root.children["boom"]
        assert node.calls == 1
        # The stack popped back to the root.
        assert tracer.current() is tracer.root

    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(enabled=False)
        with span("nothing", tracer=tracer):
            pass
        assert tracer.root.children == {}

    def test_reset_drops_tree(self):
        tracer = Tracer()
        sleep_span(tracer, "a")
        tracer.reset()
        assert tracer.root.children == {}


class TestAggregation:
    def test_aggregate_collapses_by_name(self):
        tracer = Tracer()
        with span("stage.update", tracer=tracer):
            sleep_span(tracer, "stage.similarity")
        sleep_span(tracer, "stage.similarity")
        agg = tracer.aggregate()
        assert agg["stage.similarity"]["calls"] == 2
        assert agg["stage.update"]["calls"] == 1
        # Self times of disjoint positions sum to at most the wall total.
        total = sum(entry["self_s"] for entry in agg.values())
        root_total = sum(c.total_s for c in tracer.root.children.values())
        assert total <= root_total + 1e-9

    def test_to_events_paths_sorted(self):
        tracer = Tracer()
        with span("b", tracer=tracer):
            sleep_span(tracer, "a")
        sleep_span(tracer, "a")
        events = tracer.to_events()
        paths = [e["path"] for e in events]
        assert paths == sorted(paths)
        assert {"a", "b", "b/a"} == set(paths)
        assert all(e["type"] == "span" for e in events)

    def test_render_mentions_spans(self):
        tracer = Tracer()
        sleep_span(tracer, "stage.encode")
        text = tracer.render()
        assert "stage.encode" in text

    def test_render_empty(self):
        assert "(no spans recorded)" in Tracer().render()


class TestThreading:
    def test_worker_threads_get_own_stacks(self):
        tracer = Tracer()
        errors = []

        def worker(tag):
            try:
                for _ in range(50):
                    with span(f"worker.{tag}", tracer=tracer):
                        with span("inner", tracer=tracer):
                            pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i % 2,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Both worker span names sit directly under the shared root, each
        # with its own nested child — no cross-thread interleaving.
        assert set(tracer.root.children) == {"worker.0", "worker.1"}
        for name, node in tracer.root.children.items():
            assert node.calls == 100
            assert node.children["inner"].calls == 100

    def test_span_node_repr_and_dict(self):
        root = SpanNode("<root>")
        node = root.child("x")
        node.calls = 1
        node.total_s = 0.5
        data = node.as_dict()
        assert data["name"] == "x"
        assert data["children"] == []
        assert "x" in repr(node)
        assert "<root>" in repr(root)
