"""Exporters and reports: JSONL/Prometheus round-trips, markdown report."""

import math

import numpy as np
import pytest

from repro.telemetry import (MetricsRegistry, Profiler, Tracer,
                             collect_events, decode_non_finite,
                             encode_non_finite, export_jsonl,
                             export_prometheus, format_table,
                             parse_prometheus, prometheus_text, read_jsonl,
                             render_report, sanitize_metric_name, span,
                             stage_breakdown)


def make_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.inc("guard.nan_batches", 3)
    registry.set_gauge("train.train_acc", 0.75)
    registry.observe_many("train.epoch_time_s", [0.1, 0.2, 0.3, 0.4, 0.5,
                                                 0.6, 0.7])
    return registry


def make_tracer() -> Tracer:
    tracer = Tracer()
    with span("stage.update", nbytes=64, tracer=tracer):
        with span("stage.similarity", tracer=tracer):
            pass
    return tracer


class TestSanitize:
    def test_dots_to_underscores_with_prefix(self):
        assert (sanitize_metric_name("guard.nan_batches")
                == "repro_guard_nan_batches")

    def test_invalid_chars_replaced(self):
        assert sanitize_metric_name("a-b c.d", prefix="") == "a_b_c_d"


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        count = export_jsonl(path, registry=make_registry(),
                             tracer=make_tracer(),
                             meta={"run": "test"})
        events = read_jsonl(path)
        assert len(events) == count
        assert events[0]["type"] == "meta"
        assert events[0]["run"] == "test"
        by_type = {}
        for event in events:
            by_type.setdefault(event["type"], []).append(event)
        names = {e["name"] for e in by_type["metric"]}
        assert {"guard.nan_batches", "train.train_acc",
                "train.epoch_time_s"} <= names
        counter = next(e for e in by_type["metric"]
                       if e["name"] == "guard.nan_batches")
        assert counter["metric_type"] == "counter"
        assert counter["value"] == 3.0
        span_paths = {e["path"] for e in by_type["span"]}
        assert "stage.update/stage.similarity" in span_paths

    def test_non_finite_round_trips_losslessly(self, tmp_path):
        registry = MetricsRegistry()
        registry.histogram("empty")  # all-NaN summary
        registry.set_gauge("plus_inf", math.inf)
        registry.set_gauge("minus_inf", -math.inf)
        path = str(tmp_path / "nan.jsonl")
        export_jsonl(path, registry=registry, tracer=Tracer())
        # The file itself must be strict JSON (no bare NaN literals).
        import json
        for line in open(path):
            json.loads(line)  # json.loads accepts NaN, so also check text
            assert "NaN" not in line and "Infinity" not in line
        events = read_jsonl(path)
        metrics = {e["name"]: e for e in events if e["type"] == "metric"}
        assert math.isnan(metrics["empty"]["mean"])  # restored, not null/0
        assert math.isnan(metrics["empty"]["p50"])
        assert metrics["plus_inf"]["value"] == math.inf
        assert metrics["minus_inf"]["value"] == -math.inf

    def test_encode_decode_non_finite_nested(self):
        original = {"a": math.nan, "b": [1.0, math.inf, {"c": -math.inf}],
                    "d": "text", "e": 3}
        encoded = encode_non_finite(original)
        assert encoded["a"] == {"__nonfinite__": "nan"}
        decoded = decode_non_finite(encoded)
        assert math.isnan(decoded["a"])
        assert decoded["b"][1] == math.inf
        assert decoded["b"][2]["c"] == -math.inf
        assert decoded["d"] == "text" and decoded["e"] == 3

    def test_decode_rejects_unknown_tag(self):
        with pytest.raises(ValueError, match="non-finite tag"):
            decode_non_finite({"__nonfinite__": "weird"})

    def test_bad_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            read_jsonl(str(path))

    def test_profiler_events_included(self, tmp_path):
        from repro.nn import Tensor
        with Profiler() as prof:
            a = Tensor(np.ones((4, 4)))
            _ = a + a
        events = collect_events(registry=MetricsRegistry(), tracer=Tracer(),
                                profiler=prof)
        assert any(e["type"] == "op" and e["name"] == "add" for e in events)


class TestPrometheus:
    def test_round_trip(self, tmp_path):
        registry = make_registry()
        path = str(tmp_path / "metrics.prom")
        text = export_prometheus(path, registry=registry)
        assert open(path).read() == text
        parsed = parse_prometheus(text)
        counter = parsed["repro_guard_nan_batches"]
        assert counter["type"] == "counter"
        assert counter["samples"][""] == 3.0
        gauge = parsed["repro_train_train_acc"]
        assert gauge["samples"][""] == pytest.approx(0.75)
        hist = parsed["repro_train_epoch_time_s"]
        assert hist["type"] == "summary"
        assert hist["samples"]["count"] == 7.0
        assert hist["samples"]["sum"] == pytest.approx(2.8)
        assert 'quantile="0.5"' in hist["samples"]

    def test_empty_registry_empty_text(self):
        assert prometheus_text(registry=MetricsRegistry()) == ""

    def test_non_finite_round_trip(self):
        registry = MetricsRegistry()
        registry.set_gauge("pos", math.inf)
        registry.set_gauge("neg", -math.inf)
        registry.histogram("empty")  # NaN quantiles, count 0
        text = prometheus_text(registry=registry)
        # Native Prometheus forms, not zeros or dropped samples.
        assert "repro_pos +Inf" in text
        assert "repro_neg -Inf" in text
        assert 'repro_empty{quantile="0.5"} NaN' in text
        parsed = parse_prometheus(text)
        assert parsed["repro_pos"]["samples"][""] == math.inf
        assert parsed["repro_neg"]["samples"][""] == -math.inf
        assert math.isnan(parsed["repro_empty"]["samples"]['quantile="0.5"'])
        assert parsed["repro_empty"]["samples"]["count"] == 0.0

    def test_unparseable_sample_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("!! not a sample line")


class TestReport:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1.0], ["bb", 20.5]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("| name")
        assert "20.5000" in table

    def test_format_table_nan_cell(self):
        table = format_table(["x"], [[math.nan]])
        assert "-" in table

    def test_stage_breakdown_rolls_up_non_stage_children(self):
        tracer = Tracer()
        with span("stage.encode", tracer=tracer):
            # Helper span nested inside the stage must not hollow out the
            # stage's share (it is not a stage itself).
            with span("hd.encode.RandomProjectionEncoder", tracer=tracer):
                pass
        with span("stage.update", tracer=tracer):
            with span("stage.similarity", tracer=tracer):
                pass
        rows = {row["stage"]: row for row in stage_breakdown(tracer)}
        assert set(rows) == {"encode", "update", "similarity"}
        encode = rows["encode"]
        # Stage-relative self time keeps the helper span's time.
        assert encode["self_s"] == pytest.approx(encode["total_s"])
        update = rows["update"]
        assert update["self_s"] <= update["total_s"]
        assert sum(r["share"] for r in rows.values()) == pytest.approx(1.0)

    def test_stage_breakdown_order(self):
        tracer = Tracer()
        for name in ("stage.update", "stage.extract", "stage.zzz"):
            with span(name, tracer=tracer):
                pass
        order = [row["stage"] for row in stage_breakdown(tracer)]
        assert order == ["extract", "update", "zzz"]

    def test_render_report_sections(self):
        report = render_report(registry=make_registry(),
                               tracer=make_tracer(),
                               title="Unit test report")
        assert "# Unit test report" in report
        assert "## Stage-level time breakdown" in report
        assert "## Metrics" in report
        assert "## Span tree" in report
        assert "stage.similarity" in report

    def test_render_report_with_profiler(self):
        from repro.nn import Tensor
        with Profiler() as prof:
            a = Tensor(np.ones((8, 8)))
            _ = a @ a
        report = render_report(registry=MetricsRegistry(), tracer=Tracer(),
                               profiler=prof)
        assert "hottest autograd ops" in report
        assert "matmul" in report


class TestExemplars:
    """Histogram exemplars survive the Prometheus text round-trip."""

    TRACE_ID = "4bf92f3577b34da6a3ce929d0e0e4736"

    def make_exemplar_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        for value in range(1, 100):
            registry.observe("serve.latency_ms", float(value))
        # Larger than every current quantile estimate, so the exemplar
        # attaches to p50/p95/p99 alike.
        registry.observe("serve.latency_ms", 250.0,
                         exemplar=self.TRACE_ID)
        return registry

    def test_snapshot_carries_exemplars(self):
        entry = self.make_exemplar_registry().snapshot()["serve.latency_ms"]
        assert entry["exemplars"]["p99"]["trace_id"] == self.TRACE_ID
        assert entry["exemplars"]["p99"]["value"] == 250.0
        assert entry["exemplars"]["p99"]["ts"] > 0

    def test_prometheus_text_emits_openmetrics_exemplar(self):
        text = prometheus_text(self.make_exemplar_registry())
        quantile_lines = [l for l in text.splitlines()
                         if 'quantile="0.99"' in l]
        assert len(quantile_lines) == 1
        assert f'# {{trace_id="{self.TRACE_ID}"}} 250' in quantile_lines[0]

    def test_parse_round_trips_exemplars(self):
        registry = self.make_exemplar_registry()
        parsed = parse_prometheus(prometheus_text(registry))
        entry = parsed["repro_serve_latency_ms"]
        assert entry["type"] == "summary"
        exemplar = entry["exemplars"]['quantile="0.99"']
        assert exemplar["trace_id"] == self.TRACE_ID
        assert exemplar["value"] == 250.0
        assert exemplar["ts"] == pytest.approx(
            registry.snapshot()["serve.latency_ms"]["exemplars"]["p99"]["ts"],
            abs=0.01)
        # Every tracked quantile carries the same linked trace id.
        for key in ('quantile="0.5"', 'quantile="0.95"'):
            assert entry["exemplars"][key]["trace_id"] == self.TRACE_ID

    def test_no_exemplar_no_syntax(self):
        registry = MetricsRegistry()
        registry.observe_many("plain.hist", [1.0, 2.0, 3.0])
        text = prometheus_text(registry)
        assert "trace_id" not in text
        assert "exemplars" not in registry.snapshot()["plain.hist"]
        parsed = parse_prometheus(text)
        assert "exemplars" not in parsed["repro_plain_hist"]
