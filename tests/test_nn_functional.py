"""Gradient and semantics checks for conv/pool/loss operations."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F


def numeric_grad(fn, x, eps=1e-6):
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = fn(x)
        flat[i] = orig - eps
        minus = fn(x)
        flat[i] = orig
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def reference_conv2d(x, w, b, stride, padding, groups=1):
    """Direct (slow) convolution used as ground truth."""
    n, c, h, wd = x.shape
    oc, gic, k, _ = w.shape
    oh = (h + 2 * padding - k) // stride + 1
    ow = (wd + 2 * padding - k) // stride + 1
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.zeros((n, oc, oh, ow))
    cg = c // groups
    og = oc // groups
    for ni in range(n):
        for o in range(oc):
            g = o // og
            for i in range(oh):
                for j in range(ow):
                    patch = xp[ni, g * cg:(g + 1) * cg,
                               i * stride:i * stride + k,
                               j * stride:j * stride + k]
                    out[ni, o, i, j] = (patch * w[o]).sum()
            if b is not None:
                out[ni, o] += b[o]
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_forward_matches_reference(self, stride, padding):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride,
                       padding=padding)
        expected = reference_conv2d(x, w, b, stride, padding)
        np.testing.assert_allclose(out.data, expected, rtol=1e-10)

    def test_depthwise_forward(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 4, 5, 5))
        w = rng.normal(size=(4, 1, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), None, stride=1, padding=1,
                       groups=4)
        expected = reference_conv2d(x, w, None, 1, 1, groups=4)
        np.testing.assert_allclose(out.data, expected, rtol=1e-10)

    def test_grouped_forward(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 4, 4, 4))
        w = rng.normal(size=(6, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), None, padding=1, groups=2)
        expected = reference_conv2d(x, w, None, 1, 1, groups=2)
        np.testing.assert_allclose(out.data, expected, rtol=1e-10)

    def test_input_gradient(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        xt = Tensor(x.copy(), requires_grad=True)
        out = F.conv2d(xt, Tensor(w), None, stride=2, padding=1)
        (out * out).sum().backward()

        def fn(a):
            o = reference_conv2d(a, w, None, 2, 1)
            return float((o ** 2).sum())
        np.testing.assert_allclose(xt.grad, numeric_grad(fn, x.copy()),
                                   rtol=1e-4, atol=1e-6)

    def test_weight_gradient(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(2, 2, 4, 4))
        w = rng.normal(size=(2, 2, 3, 3))
        wt = Tensor(w.copy(), requires_grad=True)
        out = F.conv2d(Tensor(x), wt, None, padding=1)
        (out * out).sum().backward()

        def fn(a):
            o = reference_conv2d(x, a, None, 1, 1)
            return float((o ** 2).sum())
        np.testing.assert_allclose(wt.grad, numeric_grad(fn, w.copy()),
                                   rtol=1e-4, atol=1e-6)

    def test_bias_gradient(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(2, 2, 4, 4))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=3)
        bt = Tensor(b.copy(), requires_grad=True)
        out = F.conv2d(Tensor(x), Tensor(w), bt, padding=1)
        out.sum().backward()
        # d(sum)/db_o = number of output positions per channel per batch
        np.testing.assert_allclose(bt.grad, np.full(3, 2 * 4 * 4))

    def test_depthwise_gradients(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(1, 3, 4, 4))
        w = rng.normal(size=(3, 1, 3, 3))
        xt = Tensor(x.copy(), requires_grad=True)
        wt = Tensor(w.copy(), requires_grad=True)
        out = F.conv2d(xt, wt, None, padding=1, groups=3)
        (out * out).sum().backward()

        def fn_x(a):
            return float((reference_conv2d(a, w, None, 1, 1, 3) ** 2).sum())

        def fn_w(a):
            return float((reference_conv2d(x, a, None, 1, 1, 3) ** 2).sum())
        np.testing.assert_allclose(xt.grad, numeric_grad(fn_x, x.copy()),
                                   rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(wt.grad, numeric_grad(fn_w, w.copy()),
                                   rtol=1e-4, atol=1e-6)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 3, 4, 4))),
                     Tensor(np.zeros((2, 4, 3, 3))), None)

    def test_rectangular_kernel_rejected(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 1, 4, 4))),
                     Tensor(np.zeros((1, 1, 2, 3))), None)


class TestPooling:
    def test_max_pool_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), kernel=2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_gradient(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        t = Tensor(x, requires_grad=True)
        F.max_pool2d(t, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        np.testing.assert_allclose(t.grad[0, 0], expected)

    def test_max_pool_stride_one(self):
        x = np.arange(9.0).reshape(1, 1, 3, 3)
        out = F.max_pool2d(Tensor(x), kernel=2, stride=1)
        np.testing.assert_allclose(out.data[0, 0], [[4, 5], [7, 8]])

    def test_avg_pool_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), kernel=2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradient(self):
        t = Tensor(np.ones((1, 1, 4, 4)), requires_grad=True)
        F.avg_pool2d(t, 2).sum().backward()
        np.testing.assert_allclose(t.grad, np.full((1, 1, 4, 4), 0.25))

    def test_global_avg_pool(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(2, 3, 4, 4))
        out = F.adaptive_avg_pool2d(Tensor(x))
        np.testing.assert_allclose(out.data[:, :, 0, 0], x.mean(axis=(2, 3)))

    def test_global_avg_pool_gradient(self):
        t = Tensor(np.ones((1, 2, 2, 2)), requires_grad=True)
        F.adaptive_avg_pool2d(t).sum().backward()
        np.testing.assert_allclose(t.grad, np.full((1, 2, 2, 2), 0.25))

    def test_adaptive_pool_other_sizes_unsupported(self):
        with pytest.raises(NotImplementedError):
            F.adaptive_avg_pool2d(Tensor(np.zeros((1, 1, 4, 4))), 2)


class TestActivationsAndLosses:
    def test_relu6_caps(self):
        x = Tensor(np.array([-1.0, 3.0, 9.0]))
        np.testing.assert_allclose(F.relu6(x).data, [0.0, 3.0, 6.0])

    def test_silu_matches_definition(self):
        x = np.array([-2.0, 0.0, 1.5])
        out = F.silu(Tensor(x))
        np.testing.assert_allclose(out.data, x / (1 + np.exp(-x)), rtol=1e-12)

    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(8)
        out = F.softmax(Tensor(rng.normal(size=(5, 7)) * 10))
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(5), rtol=1e-10)

    def test_softmax_stability_large_logits(self):
        out = F.softmax(Tensor(np.array([[1000.0, 1000.0]])))
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_log_softmax_consistency(self):
        rng = np.random.default_rng(9)
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(F.log_softmax(Tensor(x)).data,
                                   np.log(F.softmax(Tensor(x)).data),
                                   rtol=1e-10)

    def test_cross_entropy_value(self):
        logits = np.log(np.array([[0.7, 0.2, 0.1], [0.1, 0.8, 0.1]]))
        loss = F.cross_entropy(Tensor(logits), np.array([0, 1]))
        expected = -(np.log(0.7) + np.log(0.8)) / 2
        assert loss.item() == pytest.approx(expected, rel=1e-10)

    def test_cross_entropy_gradient(self):
        rng = np.random.default_rng(10)
        logits = rng.normal(size=(4, 5))
        labels = np.array([0, 2, 4, 1])
        t = Tensor(logits.copy(), requires_grad=True)
        F.cross_entropy(t, labels).backward()
        probs = np.exp(logits - logits.max(axis=1, keepdims=True))
        probs /= probs.sum(axis=1, keepdims=True)
        onehot = np.eye(5)[labels]
        np.testing.assert_allclose(t.grad, (probs - onehot) / 4, rtol=1e-8)

    def test_kl_distillation_zero_when_matching(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        student = Tensor(logits.copy(), requires_grad=True)
        loss = F.kl_div_with_logits(student, logits, temperature=2.0)
        # cross-entropy of a distribution with itself equals its entropy;
        # gradient wrt student logits must vanish.
        loss.backward()
        np.testing.assert_allclose(student.grad, np.zeros((1, 3)), atol=1e-10)

    def test_kl_distillation_pulls_toward_teacher(self):
        student = Tensor(np.array([[0.0, 0.0]]), requires_grad=True)
        teacher = np.array([[5.0, 0.0]])
        F.kl_div_with_logits(student, teacher, temperature=1.0).backward()
        assert student.grad[0, 0] < 0  # increase logit of teacher-favored class
        assert student.grad[0, 1] > 0

    def test_dropout_eval_is_identity(self):
        x = Tensor(np.ones((10,)))
        out = F.dropout(x, 0.5, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(11)
        x = Tensor(np.ones((20000,)))
        out = F.dropout(x, 0.25, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_conv_output_size(self):
        assert F.conv_output_size(32, 3, 1, 1) == 32
        assert F.conv_output_size(32, 3, 2, 1) == 16
        assert F.conv_output_size(5, 2, 2, 0) == 2


class TestBatchNorm:
    def test_training_normalizes_batch(self):
        rng = np.random.default_rng(12)
        x = rng.normal(3.0, 2.0, size=(8, 4, 5, 5))
        gamma = Tensor(np.ones(4), requires_grad=True)
        beta = Tensor(np.zeros(4), requires_grad=True)
        rm, rv = np.zeros(4), np.ones(4)
        out = F.batch_norm2d(Tensor(x), gamma, beta, rm, rv, training=True)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)),
                                   np.zeros(4), atol=1e-10)
        np.testing.assert_allclose(out.data.var(axis=(0, 2, 3)),
                                   np.ones(4), rtol=1e-3)

    def test_running_stats_updated(self):
        rng = np.random.default_rng(13)
        x = rng.normal(5.0, 1.0, size=(16, 2, 4, 4))
        gamma = Tensor(np.ones(2))
        beta = Tensor(np.zeros(2))
        rm, rv = np.zeros(2), np.ones(2)
        F.batch_norm2d(Tensor(x), gamma, beta, rm, rv, training=True,
                       momentum=1.0)
        np.testing.assert_allclose(rm, x.mean(axis=(0, 2, 3)), rtol=1e-10)

    def test_eval_uses_running_stats(self):
        x = np.full((2, 1, 2, 2), 10.0)
        gamma = Tensor(np.ones(1))
        beta = Tensor(np.zeros(1))
        rm, rv = np.array([10.0]), np.array([4.0])
        out = F.batch_norm2d(Tensor(x), gamma, beta, rm, rv, training=False)
        np.testing.assert_allclose(out.data, np.zeros_like(x), atol=1e-6)

    def test_input_gradient_training(self):
        rng = np.random.default_rng(14)
        x = rng.normal(size=(4, 2, 3, 3))
        gamma_arr = rng.normal(size=2) + 1.5
        beta_arr = rng.normal(size=2)
        xt = Tensor(x.copy(), requires_grad=True)
        gamma = Tensor(gamma_arr)
        beta = Tensor(beta_arr)
        rm, rv = np.zeros(2), np.ones(2)
        out = F.batch_norm2d(xt, gamma, beta, rm, rv, training=True)
        (out * out).sum().backward()

        def fn(a):
            mean = a.mean(axis=(0, 2, 3), keepdims=True)
            var = a.var(axis=(0, 2, 3), keepdims=True)
            xh = (a - mean) / np.sqrt(var + 1e-5)
            o = gamma_arr.reshape(1, -1, 1, 1) * xh + \
                beta_arr.reshape(1, -1, 1, 1)
            return float((o ** 2).sum())
        np.testing.assert_allclose(xt.grad, numeric_grad(fn, x.copy()),
                                   rtol=1e-4, atol=1e-6)

    def test_gamma_beta_gradients(self):
        rng = np.random.default_rng(15)
        x = rng.normal(size=(3, 2, 2, 2))
        gamma = Tensor(np.ones(2), requires_grad=True)
        beta = Tensor(np.zeros(2), requires_grad=True)
        rm, rv = np.zeros(2), np.ones(2)
        out = F.batch_norm2d(Tensor(x), gamma, beta, rm, rv, training=True)
        out.sum().backward()
        np.testing.assert_allclose(beta.grad, np.full(2, 12.0))
        # gamma gradient = sum of normalized values = 0 per channel
        np.testing.assert_allclose(gamma.grad, np.zeros(2), atol=1e-10)
