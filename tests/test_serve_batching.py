"""Micro-batcher: coalescing, deadlines, shedding, graceful shutdown."""

import threading
import time

import numpy as np
import pytest

from repro.reliability import (DeadlineExceededError, LoadShedder,
                               OverloadShedError)
from repro.serve import MicroBatcher


def argmax_fn(batch):
    """Deterministic stand-in classifier: argmax of each row."""
    return np.asarray(batch).argmax(axis=1)


class RecordingFn:
    """predict_fn that records every dispatched batch size."""

    def __init__(self, delay_s=0.0):
        self.batch_sizes = []
        self.delay_s = delay_s
        self._lock = threading.Lock()

    def __call__(self, batch):
        with self._lock:
            self.batch_sizes.append(len(batch))
        if self.delay_s:
            time.sleep(self.delay_s)
        return argmax_fn(batch)


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            MicroBatcher(argmax_fn, max_batch_size=0)
        with pytest.raises(ValueError, match="max_latency_ms"):
            MicroBatcher(argmax_fn, max_latency_ms=-1)
        with pytest.raises(ValueError, match="workers"):
            MicroBatcher(argmax_fn, workers=0)


class TestCoalescing:
    def test_submit_all_coalesces_into_batches(self):
        fn = RecordingFn()
        rng = np.random.default_rng(0)
        features = rng.standard_normal((64, 8))
        with MicroBatcher(fn, max_batch_size=16, max_latency_ms=50.0,
                          workers=1) as batcher:
            labels = batcher.submit_all(features)
        np.testing.assert_array_equal(labels, argmax_fn(features))
        assert max(fn.batch_sizes) > 1, "no coalescing happened"
        assert all(size <= 16 for size in fn.batch_sizes)
        assert batcher.stats["completed"] == 64
        assert batcher.stats["batches"] == len(fn.batch_sizes)

    def test_partial_batch_flushes_on_latency(self):
        """A lone request must not wait for a full batch forever."""
        fn = RecordingFn()
        with MicroBatcher(fn, max_batch_size=1024, max_latency_ms=5.0,
                          workers=1) as batcher:
            t0 = time.monotonic()
            label = batcher.submit(np.array([0.0, 3.0, 1.0]))
            elapsed = time.monotonic() - t0
        assert label == 1
        assert elapsed < 2.0, "latency flush did not fire"

    def test_concurrent_submits_are_correct(self):
        fn = RecordingFn(delay_s=0.002)
        rng = np.random.default_rng(1)
        features = rng.standard_normal((40, 6))
        results = {}
        with MicroBatcher(fn, max_batch_size=8, max_latency_ms=5.0,
                          workers=2) as batcher:
            def worker(i):
                results[i] = batcher.submit(features[i])
            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(len(features))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        expected = argmax_fn(features)
        for i in range(len(features)):
            assert results[i] == expected[i]

    def test_submit_many_loops(self):
        with MicroBatcher(argmax_fn, max_latency_ms=1.0) as batcher:
            rng = np.random.default_rng(2)
            features = rng.standard_normal((5, 4))
            labels = batcher.submit_many(features)
        np.testing.assert_array_equal(labels, argmax_fn(features))


class TestDegradation:
    def test_deadline_exceeded(self):
        gate = threading.Event()

        def stalled(batch):
            gate.wait(5.0)
            return argmax_fn(batch)

        batcher = MicroBatcher(stalled, max_batch_size=4,
                               max_latency_ms=1.0, workers=1)
        try:
            # First request occupies the single worker at the gate...
            filler = threading.Thread(
                target=lambda: batcher.submit(np.ones(3), timeout_s=10.0))
            filler.start()
            time.sleep(0.05)
            # ...so this one expires in the queue.
            with pytest.raises(DeadlineExceededError):
                batcher.submit(np.ones(3), timeout_s=0.05)
            assert batcher.stats["expired"] >= 1
        finally:
            gate.set()
            filler.join()
            batcher.shutdown()

    def test_overload_sheds(self):
        gate = threading.Event()

        def stalled(batch):
            gate.wait(5.0)
            return argmax_fn(batch)

        shed = []
        batcher = MicroBatcher(stalled, max_batch_size=4,
                               max_latency_ms=1.0, workers=1,
                               shedder=LoadShedder(1),
                               default_timeout_s=10.0)
        try:
            def submit_one(i):
                try:
                    batcher.submit(np.ones(3))
                except OverloadShedError:
                    shed.append(i)
            threads = [threading.Thread(target=submit_one, args=(i,))
                       for i in range(6)]
            for t in threads:
                t.start()
                time.sleep(0.02)
            gate.set()
            for t in threads:
                t.join()
        finally:
            gate.set()
            batcher.shutdown()
        assert shed, "watermark-1 queue never shed under a stalled worker"
        assert batcher.stats["shed"] == len(shed)

    def test_engine_error_propagates_to_submitter(self):
        def broken(batch):
            raise RuntimeError("engine on fire")

        with MicroBatcher(broken, max_latency_ms=1.0) as batcher:
            with pytest.raises(RuntimeError, match="engine on fire"):
                batcher.submit(np.ones(3))
            assert batcher.stats["errors"] >= 1


class TestShutdown:
    def test_drains_pending_requests(self):
        fn = RecordingFn(delay_s=0.005)
        batcher = MicroBatcher(fn, max_batch_size=8,
                               max_latency_ms=1000.0, workers=1)
        rng = np.random.default_rng(3)
        features = rng.standard_normal((4, 5))
        results = []
        threads = [threading.Thread(
            target=lambda row=row: results.append(batcher.submit(row)))
            for row in features]
        for t in threads:
            t.start()
        time.sleep(0.05)
        batcher.shutdown()  # must answer the queued requests, not drop them
        for t in threads:
            t.join(5.0)
        assert sorted(results) == sorted(int(v) for v in argmax_fn(features))

    def test_submit_after_shutdown_raises(self):
        batcher = MicroBatcher(argmax_fn)
        batcher.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            batcher.submit(np.ones(3))

    def test_shutdown_idempotent(self):
        batcher = MicroBatcher(argmax_fn)
        batcher.shutdown()
        batcher.shutdown()
        assert "MicroBatcher" in repr(batcher)
