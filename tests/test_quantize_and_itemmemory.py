"""Tests for int8 deployment quantization and the associative item memory."""

import numpy as np
import pytest

from repro.data import make_dataset, normalize_images
from repro.hardware import QuantizedNSHD, quantize_symmetric
from repro.hd import ItemMemory, bind, bundle, random_bipolar
from repro.learn import NSHD
from repro.models import create_model, train_cnn


class TestQuantizeSymmetric:
    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(40, 40))
        quantized = quantize_symmetric(values)
        error = np.abs(quantized.dequantize() - values).max()
        assert error <= quantized.scale / 2 + 1e-12

    def test_int8_payload(self):
        quantized = quantize_symmetric(np.linspace(-1, 1, 100))
        assert quantized.q.dtype == np.int8
        assert quantized.nbytes == 100

    def test_peak_value_maps_to_qmax(self):
        quantized = quantize_symmetric(np.array([-2.0, 1.0]))
        assert quantized.q.min() == -127

    def test_zero_tensor_safe(self):
        quantized = quantize_symmetric(np.zeros(5))
        np.testing.assert_array_equal(quantized.dequantize(), np.zeros(5))

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            quantize_symmetric(np.ones(3), bits=1)

    def test_sixteen_bit_payload(self):
        quantized = quantize_symmetric(np.linspace(-1, 1, 10), bits=16)
        assert quantized.q.dtype == np.int16


class TestQuantizedNSHD:
    @pytest.fixture(scope="class")
    def trained(self):
        x_tr, y_tr, x_te, y_te = make_dataset(num_classes=4, num_train=120,
                                              num_test=60, seed=13)
        x_tr, mean, std = normalize_images(x_tr)
        x_te, _, _ = normalize_images(x_te, mean, std)
        model = create_model("vgg16", num_classes=4, width_mult=0.125,
                             seed=4)
        train_cnn(model, x_tr, y_tr, epochs=3, batch_size=32, lr=2e-3,
                  seed=4, augment=False)
        nshd = NSHD(model, layer_index=21, dim=600, reduced_features=16,
                    seed=0)
        nshd.fit(x_tr, y_tr, epochs=6)
        return nshd, x_te, y_te

    def test_quantization_minor_accuracy_impact(self, trained):
        """The paper's Sec. VI-B claim: Vitis-AI-style quantization has
        very minor impact on prediction quality."""
        nshd, x_te, y_te = trained
        float_acc = nshd.accuracy(x_te, y_te)
        q = QuantizedNSHD(nshd, bits=8)
        raw = nshd.extractor.extract(x_te)
        int8_acc = q.accuracy_features(raw, y_te)
        assert abs(float_acc - int8_acc) <= 0.05

    def test_predictions_mostly_agree(self, trained):
        nshd, x_te, y_te = trained
        q = QuantizedNSHD(nshd, bits=8)
        raw = nshd.extractor.extract(x_te)
        agreement = (q.predict_features(raw) ==
                     nshd.predict_features(raw)).mean()
        # At this tiny scale (D=600, 4 classes) similarity margins are
        # narrow, so int8 rounding flips some argmaxes; large-scale
        # agreement is bounded by the accuracy-impact test above.
        assert agreement > 0.75

    def test_quantized_model_smaller(self, trained):
        nshd, _, _ = trained
        q = QuantizedNSHD(nshd, bits=8)
        float_bytes = (nshd.trainer.class_matrix.size +
                       nshd.manifold.fc.weight.size) * 4
        assert q.model_bytes() < float_bytes

    def test_predict_from_images(self, trained):
        nshd, x_te, _ = trained
        q = QuantizedNSHD(nshd)
        preds = q.predict(x_te[:10])
        assert preds.shape == (10,)


class TestItemMemory:
    def test_add_and_get(self):
        memory = ItemMemory(64)
        vector = memory.add_random("apple", np.random.default_rng(0))
        np.testing.assert_allclose(memory.get("apple"), vector)
        assert "apple" in memory and len(memory) == 1

    def test_duplicate_name_rejected(self):
        memory = ItemMemory(32)
        memory.add_random("x", np.random.default_rng(0))
        with pytest.raises(KeyError):
            memory.add("x", np.ones(32))

    def test_unknown_get_raises(self):
        with pytest.raises(KeyError):
            ItemMemory(16).get("ghost")

    def test_dimension_validation(self):
        memory = ItemMemory(16)
        with pytest.raises(ValueError):
            memory.add("bad", np.ones(8))
        with pytest.raises(ValueError):
            ItemMemory(0)

    def test_cleanup_restores_noisy_item(self):
        rng = np.random.default_rng(1)
        memory = ItemMemory(2048)
        for name in ("red", "green", "blue"):
            memory.add_random(name, rng)
        noisy = memory.get("green").copy()
        flips = rng.choice(2048, size=400, replace=False)
        noisy[flips] *= -1
        assert memory.recall(noisy) == "green"

    def test_cleanup_top_k_sorted(self):
        rng = np.random.default_rng(2)
        memory = ItemMemory(1024)
        for i in range(5):
            memory.add_random(f"item{i}", rng)
        results = memory.cleanup(memory.get("item3"), top_k=3)
        assert results[0][0] == "item3"
        sims = [s for _, s in results]
        assert sims == sorted(sims, reverse=True)

    def test_cleanup_empty_memory(self):
        with pytest.raises(RuntimeError):
            ItemMemory(16).cleanup(np.ones(16))

    def test_packed_backend_matches_dense(self):
        rng = np.random.default_rng(3)
        dense = ItemMemory(512)
        packed = ItemMemory(512, packed=True)
        for i in range(6):
            vector = random_bipolar(1, 512, rng)[0]
            dense.add(f"i{i}", vector)
            packed.add(f"i{i}", vector)
        query = dense.get("i2")
        assert dense.recall(query) == packed.recall(query) == "i2"

    def test_packed_rejects_non_bipolar(self):
        memory = ItemMemory(16, packed=True)
        with pytest.raises(ValueError):
            memory.add("soft", np.full(16, 0.5))

    def test_unbind_then_cleanup(self):
        """The canonical HD workflow: recover a bound filler via cleanup."""
        rng = np.random.default_rng(4)
        memory = ItemMemory(4096)
        role = memory.add_random("role", rng)
        for name in ("alice", "bob", "carol"):
            memory.add_random(name, rng)
        record = bundle(bind(role, memory.get("bob")),
                        memory.add_random("noise", rng))
        recovered = bind(record, role)  # unbind: role is self-inverse
        assert memory.recall(recovered) == "bob"
