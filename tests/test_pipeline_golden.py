"""Golden bit-exactness suite for the stage-graph refactor.

The fixtures in ``tests/fixtures/`` were recorded at the commit
immediately **before** the refactor (see ``make_golden.py``).  This file
enforces the refactor's central promise on every later revision:

* re-fitting the three pipelines from the frozen CNN weights reproduces
  the pre-refactor predictions and encoded hypervectors **bit-exactly**;
* legacy checkpoints (no graph-topology manifest section) still restore;
* pre-refactor serve bundles (no ``info["graph"]``) serve bit-exactly
  through the synthesized-topology compat shim — float *and* packed;
* newly written checkpoints/bundles carry the graph topology and
  round-trip through the graph executor.
"""

import json
import os

import numpy as np
import pytest

from repro.data import make_dataset, normalize_images
from repro.learn import NSHD, BaselineHD, VanillaHD
from repro.models import create_model
from repro.nn.serialize import (GRAPH_SECTION, load_manifest, load_state,
                                manifest_section)
from repro.serve import InferenceEngine, ModelBundle

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures")

with open(os.path.join(FIXTURES, "golden_spec.json")) as _handle:
    SPEC = json.load(_handle)

PIPELINES = ("nshd", "baselinehd", "vanillahd")


def _fixture(name):
    return os.path.join(FIXTURES, f"{name}")


@pytest.fixture(scope="module")
def golden():
    with np.load(_fixture("golden_inputs.npz")) as archive:
        return {key: archive[key] for key in archive.files}


@pytest.fixture(scope="module")
def dataset():
    x_tr, y_tr, x_te, y_te = make_dataset(
        num_classes=SPEC["num_classes"], num_train=SPEC["num_train"],
        num_test=SPEC["num_test"], seed=SPEC["data_seed"])
    x_tr, mean, std = normalize_images(x_tr)
    x_te, _, _ = normalize_images(x_te, mean, std)
    return x_tr, y_tr, x_te, y_te


@pytest.fixture(scope="module")
def cnn():
    """The frozen golden CNN (weights loaded, never retrained)."""
    model = create_model(SPEC["model"], num_classes=SPEC["num_classes"],
                         width_mult=SPEC["width_mult"],
                         seed=SPEC["model_seed"])
    model.load_state_dict(load_state(_fixture("golden_model.npz")))
    model.eval()
    return model


def _fresh_pipeline(name, cnn):
    if name == "nshd":
        return NSHD(cnn, layer_index=SPEC["layer_index"], dim=SPEC["dim"],
                    reduced_features=SPEC["reduced_features"],
                    seed=SPEC["seed"])
    if name == "baselinehd":
        return BaselineHD(cnn, layer_index=SPEC["layer_index"],
                          dim=SPEC["dim"], seed=SPEC["seed"])
    return VanillaHD(num_classes=SPEC["num_classes"],
                     image_size=SPEC["image_size"], dim=SPEC["dim"],
                     seed=SPEC["seed"])


@pytest.fixture(scope="module")
def refit(cnn, dataset):
    """All three pipelines re-fit post-refactor from the golden CNN."""
    x_tr, y_tr, _, _ = dataset
    out = {}
    for name in PIPELINES:
        pipeline = _fresh_pipeline(name, cnn)
        pipeline.fit(x_tr, y_tr, epochs=SPEC["epochs"])
        out[name] = pipeline
    return out


# ----------------------------------------------------------------------
# 1. Re-fit bit-exactness
# ----------------------------------------------------------------------
class TestRefitBitExact:
    @pytest.mark.parametrize("name", PIPELINES)
    def test_predictions_reproduce_verbatim(self, refit, golden, name):
        labels = refit[name].predict(golden["x_te"])
        np.testing.assert_array_equal(labels, golden[f"{name}.labels"])

    @pytest.mark.parametrize("name", PIPELINES)
    def test_encoded_hypervectors_reproduce_verbatim(self, refit, golden,
                                                     name):
        encoded = refit[name].encode(golden["x_te"])
        np.testing.assert_array_equal(encoded, golden[f"{name}.encoded"])

    @pytest.mark.parametrize("name", PIPELINES)
    def test_graph_topology_names(self, refit, name):
        expected = {
            "nshd": "extract -> scale -> reduce -> encode -> classify",
            "baselinehd": "extract -> scale -> encode -> classify",
            "vanillahd": "flatten -> scale -> encode -> classify",
        }[name]
        assert refit[name].graph.describe() == expected


# ----------------------------------------------------------------------
# 2. Legacy (pre-refactor) checkpoints restore
# ----------------------------------------------------------------------
class TestLegacyCheckpoints:
    @pytest.mark.parametrize("name", PIPELINES)
    def test_golden_checkpoint_restores_predictions(self, cnn, golden,
                                                    name):
        pipeline = _fresh_pipeline(name, cnn)
        epoch, _ = pipeline.load_checkpoint(
            _fixture(f"golden_{name}_ckpt.npz"))
        assert epoch == SPEC["epochs"]
        np.testing.assert_array_equal(pipeline.predict(golden["x_te"]),
                                      golden[f"{name}.labels"])

    @pytest.mark.parametrize("name", PIPELINES)
    def test_golden_checkpoint_has_no_graph_section(self, name):
        manifest = load_manifest(_fixture(f"golden_{name}_ckpt.npz"))
        assert manifest_section(manifest, GRAPH_SECTION) is None

    @pytest.mark.parametrize("name", PIPELINES)
    def test_new_checkpoints_persist_topology(self, refit, tmp_path,
                                              name):
        path = str(tmp_path / f"{name}.npz")
        refit[name].save_checkpoint(path, epoch=SPEC["epochs"])
        section = manifest_section(load_manifest(path), GRAPH_SECTION)
        assert section is not None
        stages = [spec["name"] for spec in section["topology"]["stages"]]
        assert stages == refit[name].graph.names


# ----------------------------------------------------------------------
# 3. Legacy (pre-refactor) bundles serve through the shim
# ----------------------------------------------------------------------
class TestLegacyBundles:
    @pytest.mark.parametrize("name", PIPELINES)
    def test_float_bundle_serves_bit_exact(self, golden, name):
        bundle = ModelBundle.load(_fixture(f"golden_{name}_bundle.npz"))
        assert "graph" not in bundle.info  # genuinely pre-refactor
        engine = InferenceEngine(bundle, cache_size=0)
        got = engine.predict_features(golden[f"{name}.raw_features"])
        np.testing.assert_array_equal(got, golden[f"{name}.engine_labels"])
        np.testing.assert_array_equal(got, golden[f"{name}.labels"])

    @pytest.mark.parametrize("name", ("nshd", "baselinehd"))
    def test_image_predict_through_shim(self, golden, name):
        bundle = ModelBundle.load(_fixture(f"golden_{name}_bundle.npz"))
        engine = InferenceEngine(bundle, cache_size=0)
        np.testing.assert_array_equal(engine.predict(golden["x_te"]),
                                      golden[f"{name}.labels"])

    @pytest.mark.parametrize("name", ("nshd", "baselinehd"))
    def test_packed_bundle_serves_bit_exact(self, golden, name):
        bundle = ModelBundle.load(
            _fixture(f"golden_{name}_bundle_packed.npz"))
        assert "graph" not in bundle.info
        engine = InferenceEngine(bundle, cache_size=0)
        assert engine.use_packed  # auto-selected on the bipolar export
        got = engine.predict_features(golden[f"{name}.raw_features"])
        np.testing.assert_array_equal(got, golden[f"{name}.packed_labels"])

    @pytest.mark.parametrize("name", PIPELINES)
    def test_shim_synthesizes_expected_topology(self, name):
        bundle = ModelBundle.load(_fixture(f"golden_{name}_bundle.npz"))
        graph = bundle.build_graph()
        expected = {
            "nshd": ["extract", "scale", "reduce", "encode", "classify"],
            "baselinehd": ["extract", "scale", "encode", "classify"],
            "vanillahd": ["flatten", "scale", "encode", "classify"],
        }[name]
        assert graph.names == expected


# ----------------------------------------------------------------------
# 4. Post-refactor bundles carry topology and round-trip
# ----------------------------------------------------------------------
class TestNewBundles:
    @pytest.mark.parametrize("name", PIPELINES)
    def test_bundle_round_trip_matches_pipeline(self, refit, golden,
                                                tmp_path, name):
        pipeline = refit[name]
        path = str(tmp_path / f"{name}_bundle.npz")
        bundle = ModelBundle.from_pipeline(pipeline,
                                           config={"golden": name})
        assert "graph" in bundle.info  # topology persisted
        bundle.save(path)
        engine = InferenceEngine.from_path(path, cache_size=0)
        raw = golden[f"{name}.raw_features"]
        np.testing.assert_array_equal(engine.predict_features(raw),
                                      golden[f"{name}.labels"])
        assert engine.graph.names == pipeline.graph.names

    @pytest.mark.parametrize("name", ("nshd", "baselinehd"))
    def test_binarized_bundle_round_trip_packed(self, refit, golden,
                                                tmp_path, name):
        path = str(tmp_path / f"{name}_packed.npz")
        ModelBundle.from_pipeline(refit[name], config={"golden": name},
                                  binarize=True).save(path)
        engine = InferenceEngine.from_path(path, cache_size=0)
        assert engine.use_packed
        raw = golden[f"{name}.raw_features"]
        np.testing.assert_array_equal(engine.predict_features(raw),
                                      golden[f"{name}.packed_labels"])
