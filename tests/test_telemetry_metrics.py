"""Metrics registry: counters, gauges, P² streaming quantiles."""

import math
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import (DEFAULT_QUANTILES, Counter, Gauge, Histogram,
                             MetricsRegistry, P2Quantile, get_registry,
                             use_registry)


class TestCounterGauge:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1.0)

    def test_counter_reset(self):
        counter = Counter("c")
        counter.inc(5)
        counter.reset()
        assert counter.value == 0.0

    def test_gauge_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10.0)
        gauge.inc(2.0)
        gauge.dec(5.0)
        assert gauge.value == pytest.approx(7.0)

    def test_counter_thread_safety(self):
        counter = Counter("c")

        def worker():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestP2Quantile:
    def test_small_stream_is_exact(self):
        est = P2Quantile(0.5)
        for x in (3.0, 1.0, 2.0):
            est.observe(x)
        assert est.value() == pytest.approx(2.0)
        assert est.count == 3

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value())

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    @pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
    def test_uniform_stream_accuracy(self, q):
        rng = np.random.default_rng(0)
        samples = rng.uniform(0.0, 1.0, size=5000)
        est = P2Quantile(q)
        for x in samples:
            est.observe(x)
        # For U(0,1) the value error equals the rank error; P² should be
        # within a few percent of rank on a smooth distribution.
        assert est.value() == pytest.approx(q, abs=0.04)

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1),
           st.sampled_from([0.5, 0.95]))
    @settings(max_examples=25, deadline=None)
    def test_property_rank_accuracy_vs_numpy(self, seed, q):
        """The P² estimate lands at approximately quantile rank q."""
        rng = np.random.default_rng(seed)
        samples = rng.normal(size=800) * rng.uniform(0.5, 10.0)
        est = P2Quantile(q)
        for x in samples:
            est.observe(x)
        rank = float((samples <= est.value()).mean())
        assert abs(rank - q) < 0.08
        # And it stays within the sample's support.
        assert samples.min() <= est.value() <= samples.max()


class TestHistogram:
    def test_summary_keys(self):
        hist = Histogram("h")
        hist.observe_many([1.0, 2.0, 3.0, 4.0])
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(10.0)
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        for q in DEFAULT_QUANTILES:
            assert f"p{q * 100:g}" in summary

    def test_non_finite_samples_skipped(self):
        hist = Histogram("h")
        hist.observe(float("nan"))
        hist.observe(float("inf"))
        hist.observe(1.0)
        assert hist.count == 1
        assert hist.summary()["max"] == 1.0

    def test_quantile_accuracy_vs_numpy(self):
        rng = np.random.default_rng(3)
        samples = np.abs(rng.normal(size=3000))  # timing-like, skewed
        hist = Histogram("h")
        hist.observe_many(samples)
        for q in (0.5, 0.95):
            exact = float(np.quantile(samples, q))
            rank = float((samples <= hist.quantile(q)).mean())
            assert abs(rank - q) < 0.05, (q, exact, hist.quantile(q))

    def test_untracked_quantile_raises(self):
        hist = Histogram("h")
        hist.observe(1.0)
        with pytest.raises(KeyError):
            hist.quantile(0.25)

    def test_reset(self):
        hist = Histogram("h")
        hist.observe_many(range(10))
        hist.reset()
        assert hist.count == 0
        assert math.isnan(hist.mean)

    def test_summary_exemplars_are_a_locked_copy(self):
        # summary() must snapshot exemplars under the lock (a /metrics
        # scrape can race observe() inserting new quantile keys) and
        # hand out copies the caller may mutate freely.
        hist = Histogram("h")
        hist.observe(5.0, exemplar="a" * 32)
        summary = hist.summary()
        summary["exemplars"]["p99"]["trace_id"] = "mutated"
        assert hist.exemplars()["p99"]["trace_id"] == "a" * 32


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_convenience_helpers(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.set_gauge("g", 4.0)
        registry.observe("h", 1.0)
        registry.observe_many("h", [2.0, 3.0])
        snap = registry.snapshot()
        assert snap["c"] == {"type": "counter", "value": 2.0}
        assert snap["g"]["value"] == 4.0
        assert snap["h"]["count"] == 3

    def test_snapshot_sorted_and_reset(self):
        registry = MetricsRegistry()
        registry.inc("z")
        registry.inc("a")
        assert list(registry.snapshot()) == ["a", "z"]
        registry.reset()
        assert registry.snapshot() == {}

    def test_contains_and_names(self):
        registry = MetricsRegistry()
        registry.inc("x.y")
        assert "x.y" in registry
        assert "nope" not in registry
        assert registry.names() == ["x.y"]

    def test_use_registry_scopes_the_global(self):
        before = get_registry()
        with use_registry() as scoped:
            assert get_registry() is scoped
            get_registry().inc("scoped.only")
        assert get_registry() is before
        assert "scoped.only" not in get_registry()
