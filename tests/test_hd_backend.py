"""Tests for the bit-packed binary backend and memory ledger."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hd import (MemoryLedger, dot_similarity, pack_bipolar, packed_dot,
                      popcount, random_bipolar, unpack_bipolar)


class TestPacking:
    def test_roundtrip_exact_word(self):
        hvs = random_bipolar(3, 128, np.random.default_rng(0))
        np.testing.assert_allclose(unpack_bipolar(pack_bipolar(hvs), 128), hvs)

    def test_roundtrip_partial_word(self):
        hvs = random_bipolar(2, 100, np.random.default_rng(1))
        np.testing.assert_allclose(unpack_bipolar(pack_bipolar(hvs), 100), hvs)

    def test_packed_width(self):
        hvs = random_bipolar(1, 65, np.random.default_rng(2))
        assert pack_bipolar(hvs).shape == (1, 2)

    def test_rejects_non_bipolar(self):
        with pytest.raises(ValueError):
            pack_bipolar(np.array([[0.5, 1.0]]))

    def test_footprint_is_one_bit_per_component(self):
        hvs = random_bipolar(4, 3000, np.random.default_rng(3))
        packed = pack_bipolar(hvs)
        assert packed.nbytes == 4 * 47 * 8  # ceil(3000/64)=47 words

    @given(st.integers(min_value=1, max_value=300),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_property_roundtrip(self, dim, seed):
        hvs = random_bipolar(2, dim, np.random.default_rng(seed))
        np.testing.assert_allclose(unpack_bipolar(pack_bipolar(hvs), dim), hvs)


class TestPackedDot:
    def test_matches_dense_dot(self):
        g = np.random.default_rng(4)
        queries = random_bipolar(5, 200, g)
        classes = random_bipolar(3, 200, g)
        packed = packed_dot(pack_bipolar(queries), pack_bipolar(classes), 200)
        dense = dot_similarity(classes, queries)
        np.testing.assert_allclose(packed, dense)

    def test_identical_vectors_full_similarity(self):
        hv = random_bipolar(1, 77, np.random.default_rng(5))
        assert packed_dot(pack_bipolar(hv), pack_bipolar(hv), 77)[0, 0] == 77

    def test_opposite_vectors(self):
        hv = random_bipolar(1, 77, np.random.default_rng(6))
        assert packed_dot(pack_bipolar(hv), pack_bipolar(-hv), 77)[0, 0] == -77

    def test_word_mismatch_rejected(self):
        a = pack_bipolar(random_bipolar(1, 64, np.random.default_rng(7)))
        b = pack_bipolar(random_bipolar(1, 128, np.random.default_rng(8)))
        with pytest.raises(ValueError):
            packed_dot(a, b, 64)

    @given(st.integers(min_value=1, max_value=257),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_property_packed_equals_dense(self, dim, seed):
        g = np.random.default_rng(seed)
        a = random_bipolar(3, dim, g)
        b = random_bipolar(2, dim, g)
        np.testing.assert_allclose(
            packed_dot(pack_bipolar(a), pack_bipolar(b), dim),
            a @ b.T)


class TestPopcount:
    def test_known_values(self):
        np.testing.assert_array_equal(
            popcount(np.array([0, 1, 3, 255, 2 ** 64 - 1], dtype=np.uint64)),
            [0, 1, 2, 8, 64])

    def test_shape_preserved(self):
        words = np.arange(12, dtype=np.uint64).reshape(3, 4)
        assert popcount(words).shape == (3, 4)


class TestMemoryLedger:
    def test_binary_storage_accounting(self):
        ledger = MemoryLedger()
        ledger.store_binary_hypervectors(count=100, dim=3000)
        assert ledger.stored_bytes["constant"] == 100 * 375

    def test_float_storage_accounting(self):
        ledger = MemoryLedger()
        ledger.store_float_hypervectors(count=100, dim=3000)
        assert ledger.stored_bytes["global"] == 100 * 3000 * 4

    def test_footprint_reduction(self):
        ledger = MemoryLedger()
        # 1 bit vs 32 bits per component = 31/32 reduction
        assert ledger.footprint_reduction_vs_float(10, 64) == pytest.approx(
            1 - 1 / 32)

    def test_traffic_accumulates(self):
        ledger = MemoryLedger()
        ledger.move("global", 100)
        ledger.move("global", 50)
        ledger.move("shared", 10)
        assert ledger.traffic_bytes["global"] == 150
        assert ledger.total_traffic() == 160

    def test_region_validation(self):
        ledger = MemoryLedger()
        with pytest.raises(ValueError):
            ledger.store("texture", 1)

    def test_negative_bytes_rejected(self):
        ledger = MemoryLedger()
        with pytest.raises(ValueError):
            ledger.move("global", -1)
