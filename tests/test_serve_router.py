"""Fleet router: hash ring, retry/breaker routing, reload fan-out."""

import json
import os
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import (HashRing, InferenceEngine, ModelServer, Router,
                         StaticFleet, free_port)
from repro.telemetry import get_registry

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures")


def post(url, payload, timeout=30):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def get(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read())


class TestHashRing:
    def test_deterministic_and_complete(self):
        ring = HashRing(["w0", "w1", "w2"])
        key = b'{"features": [1.0, 2.0]}'
        order = ring.ordered(key)
        assert sorted(order) == ["w0", "w1", "w2"]
        assert order == HashRing(["w0", "w1", "w2"]).ordered(key)

    def test_different_keys_spread_across_workers(self):
        ring = HashRing([f"w{i}" for i in range(4)])
        firsts = {ring.ordered(f"key-{i}".encode())[0]
                  for i in range(200)}
        assert firsts == {"w0", "w1", "w2", "w3"}

    def test_member_removal_only_remaps_its_arc(self):
        """Consistent hashing's point: dropping w3 must not move keys
        that were assigned to the surviving workers."""
        full = HashRing(["w0", "w1", "w2", "w3"])
        reduced = HashRing(["w0", "w1", "w2"])
        moved = survivors = 0
        for i in range(500):
            key = f"key-{i}".encode()
            before = full.ordered(key)[0]
            if before == "w3":
                continue
            survivors += 1
            if reduced.ordered(key)[0] != before:
                moved += 1
        assert survivors > 300
        assert moved == 0

    def test_ordered_is_a_failover_sequence(self):
        ring = HashRing(["w0", "w1", "w2"])
        order = ring.ordered(b"payload")
        assert len(order) == len(set(order)) == 3

    def test_replicas_validated(self):
        with pytest.raises(ValueError):
            HashRing(["w0"], replicas=0)


@pytest.fixture
def fleet_servers(synthetic_bundle):
    """Two in-process ModelServers over the same bundle + StaticFleet."""
    bundle = synthetic_bundle(seed=51)
    engine = InferenceEngine(bundle)
    servers = [ModelServer(InferenceEngine(bundle), port=0,
                           max_batch_size=16, max_latency_ms=1.0,
                           workers=1).start() for _ in range(2)]
    fleet = StaticFleet([server.address for server in servers])
    yield fleet, servers, engine
    for server in servers:
        server.stop()


class TestRouting:
    def test_parity_with_direct_engine(self, fleet_servers):
        fleet, servers, engine = fleet_servers
        rng = np.random.default_rng(51)
        features = rng.standard_normal((24, 32))
        with Router(fleet, port=0) as router:
            routed = []
            for row in features:
                out = post(router.url + "/predict",
                           {"features": row.tolist()})
                routed.extend(out["labels"])
        expected = [int(v) for v in engine.predict_features(features)]
        assert routed == expected

    def test_requests_reach_both_workers(self, fleet_servers):
        fleet, servers, _ = fleet_servers
        rng = np.random.default_rng(52)
        with Router(fleet, port=0) as router:
            for row in rng.standard_normal((40, 32)):
                post(router.url + "/predict", {"features": row.tolist()})
            counts = [json.loads(
                urllib.request.urlopen(server.url + "/healthz",
                                       timeout=5).read()
            )["batcher"]["completed"] for server in servers]
        assert all(count > 0 for count in counts), counts

    def test_retry_routes_around_dead_worker(self, fleet_servers):
        fleet, servers, engine = fleet_servers
        # Add a third, never-listening member — requests hashed to it
        # must fail over along the ring and still succeed.
        dead = StaticFleet([servers[0].address, servers[1].address,
                            ("127.0.0.1", free_port())])
        rng = np.random.default_rng(53)
        features = rng.standard_normal((30, 32))
        registry = get_registry()
        before = (registry.snapshot().get("fleet.router.rerouted")
                  or {}).get("value", 0)
        with Router(dead, port=0, retry_backoff_s=0.0) as router:
            routed = []
            for row in features:
                out = post(router.url + "/predict",
                           {"features": row.tolist()})
                routed.extend(out["labels"])
        expected = [int(v) for v in engine.predict_features(features)]
        assert routed == expected
        after = (registry.snapshot().get("fleet.router.rerouted")
                 or {}).get("value", 0)
        assert after > before  # some keys did hash to the dead worker

    def test_breaker_opens_on_repeat_failures_then_skips(self,
                                                         fleet_servers):
        fleet, servers, _ = fleet_servers
        dead = StaticFleet([servers[0].address, servers[1].address,
                            ("127.0.0.1", free_port())])
        rng = np.random.default_rng(54)
        with Router(dead, port=0, retry_backoff_s=0.0,
                    breaker_options={"failure_threshold": 2,
                                     "recovery_timeout_s": 60.0}
                    ) as router:
            for row in rng.standard_normal((40, 32)):
                post(router.url + "/predict", {"features": row.tolist()})
            health = get(router.url + "/healthz")
            breaker = health["breakers"].get("w2")
            assert breaker is not None and breaker["state"] == "open"
            assert breaker["stats"]["opens"] >= 1
            # Once open, further requests skip the dead worker without
            # spending a connection attempt on it.
            skips_before = (get_registry().snapshot()
                            .get("fleet.router.breaker_skips")
                            or {}).get("value", 0)
            for row in rng.standard_normal((20, 32)):
                post(router.url + "/predict", {"features": row.tolist()})
            skips_after = (get_registry().snapshot()
                           .get("fleet.router.breaker_skips")
                           or {}).get("value", 0)
            assert skips_after > skips_before

    def test_no_healthy_worker_is_503(self, fleet_servers):
        fleet, servers, _ = fleet_servers
        fleet.set_healthy("w0", False)
        fleet.set_healthy("w1", False)
        with Router(fleet, port=0) as router:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(router.url + "/predict", {"features": [0.0] * 32})
            assert excinfo.value.code == 503
            assert excinfo.value.headers.get("Retry-After") == "1"

    def test_worker_4xx_passes_through_without_retry(self, fleet_servers):
        fleet, servers, _ = fleet_servers
        with Router(fleet, port=0) as router:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(router.url + "/predict", {"features": "nope"})
            assert excinfo.value.code == 400

    def test_health_status_degraded_and_down(self, fleet_servers):
        fleet, servers, _ = fleet_servers
        with Router(fleet, port=0) as router:
            assert get(router.url + "/healthz")["status"] == "ok"
            fleet.set_healthy("w1", False)
            assert (get(router.url + "/healthz")["status"]
                    == "degraded")
            fleet.set_healthy("w0", False)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(router.url + "/healthz")
            assert excinfo.value.code == 503
            assert json.loads(excinfo.value.read())["status"] == "down"

    def test_metrics_exposes_fleet_counters(self, fleet_servers):
        fleet, servers, _ = fleet_servers
        with Router(fleet, port=0) as router:
            post(router.url + "/predict", {"features": [0.0] * 32})
            with urllib.request.urlopen(router.url + "/metrics",
                                        timeout=5) as response:
                metrics = response.read().decode().replace(".", "_")
            assert "fleet_router_requests" in metrics

    def test_unknown_route_404(self, fleet_servers):
        fleet, servers, _ = fleet_servers
        with Router(fleet, port=0) as router:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(router.url + "/nope")
            assert excinfo.value.code == 404

    def test_max_attempts_validated(self, fleet_servers):
        fleet, _, _ = fleet_servers
        with pytest.raises(ValueError):
            Router(fleet, max_attempts=0)


class TestBroadcastReload:
    def test_good_bundle_reloads_everywhere(self, fleet_servers,
                                            synthetic_bundle, tmp_path):
        fleet, servers, _ = fleet_servers
        path = str(tmp_path / "next.npz")
        synthetic_bundle(seed=51).save(path)
        with Router(fleet, port=0) as router:
            out = post(router.url + "/reload", {"bundle": path})
        assert out["reloaded"] is True
        assert all(entry["status"] == 200
                   for entry in out["workers"].values())
        assert all(server.reloads == 1 for server in servers)

    def test_torn_bundle_rejected_everywhere_and_serving_survives(
            self, fleet_servers, synthetic_bundle, tmp_path):
        fleet, servers, engine = fleet_servers
        good = str(tmp_path / "good.npz")
        torn = str(tmp_path / "torn.npz")
        synthetic_bundle(seed=51).save(good)
        with open(good, "rb") as handle:
            blob = handle.read()
        with open(torn, "wb") as handle:
            handle.write(blob[: len(blob) // 2])

        rng = np.random.default_rng(55)
        features = rng.standard_normal((10, 32))
        with Router(fleet, port=0) as router:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(router.url + "/reload", {"bundle": torn})
            assert excinfo.value.code == 409
            out = json.loads(excinfo.value.read())
            assert out["reloaded"] is False
            assert all(entry["status"] == 409
                       for entry in out["workers"].values())
            # Old engines keep serving, bit-exact.
            routed = []
            for row in features:
                routed.extend(post(router.url + "/predict",
                                   {"features": row.tolist()})["labels"])
        assert routed == [int(v) for v in
                          engine.predict_features(features)]
        assert all(server.reloads == 0 for server in servers)

    def test_partial_allow_answers_207_when_one_worker_down(
            self, fleet_servers, synthetic_bundle, tmp_path):
        """A wedged worker must not veto a best-effort fleet promotion:
        ``"partial": "allow"`` turns the mixed outcome into 207 with
        the per-worker breakdown."""
        fleet, servers, _ = fleet_servers
        mixed = StaticFleet([servers[0].address, servers[1].address,
                             ("127.0.0.1", free_port())])
        path = str(tmp_path / "next.npz")
        synthetic_bundle(seed=51).save(path)
        registry = get_registry()
        before = (registry.snapshot().get("fleet.router.reload.partial")
                  or {}).get("value", 0)
        with Router(mixed, port=0) as router:
            request = urllib.request.Request(
                router.url + "/reload",
                data=json.dumps({"bundle": path,
                                 "partial": "allow"}).encode("utf-8"),
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=30) as response:
                assert response.status == 207  # 2xx: urllib won't raise
                out = json.loads(response.read())
        assert out["reloaded"] is False
        assert out["succeeded"] == 2
        assert out["failed"] == 1
        statuses = sorted((entry["status"] or 0)
                          for entry in out["workers"].values())
        assert statuses == [0, 200, 200]
        assert all(server.reloads == 1 for server in servers)
        after = (registry.snapshot().get("fleet.router.reload.partial")
                 or {}).get("value", 0)
        assert after == before + 1

    def test_default_mode_still_409_when_one_worker_down(
            self, fleet_servers, synthetic_bundle, tmp_path):
        fleet, servers, _ = fleet_servers
        mixed = StaticFleet([servers[0].address, servers[1].address,
                             ("127.0.0.1", free_port())])
        path = str(tmp_path / "next.npz")
        synthetic_bundle(seed=51).save(path)
        with Router(mixed, port=0) as router:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(router.url + "/reload", {"bundle": path})
            assert excinfo.value.code == 409

    def test_partial_allow_all_failed_is_still_409(
            self, synthetic_bundle, tmp_path):
        dead = StaticFleet([("127.0.0.1", free_port())])
        path = str(tmp_path / "next.npz")
        synthetic_bundle(seed=51).save(path)
        with Router(dead, port=0) as router:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(router.url + "/reload",
                     {"bundle": path, "partial": "allow"})
            assert excinfo.value.code == 409

    def test_invalid_partial_value_is_400(self, fleet_servers,
                                          synthetic_bundle, tmp_path):
        fleet, servers, _ = fleet_servers
        path = str(tmp_path / "next.npz")
        synthetic_bundle(seed=51).save(path)
        with Router(fleet, port=0) as router:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(router.url + "/reload",
                     {"bundle": path, "partial": "maybe"})
            assert excinfo.value.code == 400
        assert all(server.reloads == 0 for server in servers)

    def test_partial_key_not_forwarded_to_workers(
            self, fleet_servers, synthetic_bundle, tmp_path):
        """Workers reject unknown /reload keys, so a 200 here proves
        the router stripped ``partial`` before fanning out."""
        fleet, servers, _ = fleet_servers
        path = str(tmp_path / "next.npz")
        synthetic_bundle(seed=51).save(path)
        with Router(fleet, port=0) as router:
            out = post(router.url + "/reload",
                       {"bundle": path, "partial": "deny"})
        assert out["reloaded"] is True
        assert all(server.reloads == 1 for server in servers)


class TestDrain:
    def test_draining_rejects_then_stops(self, fleet_servers):
        fleet, servers, _ = fleet_servers
        router = Router(fleet, port=0).start()
        url = router.url
        post(url + "/predict", {"features": [0.0] * 32})
        router.stop()
        # The listener is gone: connecting again must fail.
        with pytest.raises(urllib.error.URLError):
            post(url + "/predict", {"features": [0.0] * 32}, timeout=2)

    def test_drain_is_idempotent(self, fleet_servers):
        fleet, servers, _ = fleet_servers
        router = Router(fleet, port=0).start()
        router.drain()
        router.drain()
        router.stop()


class TestGoldenParity:
    def test_routed_bitexact_with_single_server_on_golden_bundle(self):
        """Acceptance: router answers == single-server answers on the
        committed golden fixtures (same bundle on every worker)."""
        bundle_path = os.path.join(FIXTURES,
                                   "golden_nshd_bundle_packed.npz")
        with np.load(os.path.join(FIXTURES,
                                  "golden_inputs.npz")) as archive:
            raw = np.asarray(archive["nshd.raw_features"])
        engine = InferenceEngine.from_path(bundle_path,
                                           build_extractor=False)
        servers = [ModelServer(
            InferenceEngine.from_path(bundle_path, build_extractor=False),
            port=0, max_batch_size=16, max_latency_ms=1.0,
            workers=1).start() for _ in range(2)]
        try:
            single = ModelServer(engine, port=0, max_batch_size=16,
                                 max_latency_ms=1.0, workers=1).start()
            try:
                fleet = StaticFleet([s.address for s in servers])
                with Router(fleet, port=0) as router:
                    routed, direct = [], []
                    for start in range(0, len(raw), 8):
                        chunk = raw[start:start + 8].tolist()
                        routed.extend(post(router.url + "/predict",
                                           {"features": chunk})["labels"])
                        direct.extend(post(single.url + "/predict",
                                           {"features": chunk})["labels"])
            finally:
                single.stop()
        finally:
            for server in servers:
                server.stop()
        assert routed == direct
        assert routed == [int(v) for v in engine.predict_features(raw)]
