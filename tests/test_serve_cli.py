"""CLI entry point: ``python -m repro.serve`` config/flag resolution."""

import argparse
import json

import pytest

from repro.serve.__main__ import build_server, load_config, main

from .conftest import _synthetic_bundle


@pytest.fixture
def bundle_path(tmp_path):
    path = str(tmp_path / "bundle.npz")
    _synthetic_bundle(seed=5, binary=True).save(path)
    return path


class TestLoadConfig:
    def test_sectioned_layout(self, tmp_path):
        path = tmp_path / "serve.toml"
        path.write_text(
            '[server]\nhost = "0.0.0.0"\nport = 9000\n'
            "[batcher]\nmax_batch_size = 64\nworkers = 3\n"
            "[engine]\ncache_size = 128\nuse_packed = true\n")
        config = load_config(str(path))
        assert config == {"host": "0.0.0.0", "port": 9000,
                          "max_batch_size": 64, "workers": 3,
                          "cache_size": 128, "use_packed": True}

    def test_flat_layout(self, tmp_path):
        path = tmp_path / "serve.toml"
        path.write_text("port = 8123\nmax_latency_ms = 2.5\n")
        assert load_config(str(path)) == {"port": 8123,
                                          "max_latency_ms": 2.5}

    def test_unknown_section_raises(self, tmp_path):
        path = tmp_path / "serve.toml"
        path.write_text("[cluster]\nsize = 3\n")
        with pytest.raises(ValueError, match=r"unknown config section"):
            load_config(str(path))

    def test_unknown_key_raises(self, tmp_path):
        path = tmp_path / "serve.toml"
        path.write_text("[server]\nportt = 8000\n")
        with pytest.raises(ValueError, match="portt"):
            load_config(str(path))

    def test_unknown_flat_key_raises(self, tmp_path):
        path = tmp_path / "serve.toml"
        path.write_text("prot = 8000\n")
        with pytest.raises(ValueError, match="prot"):
            load_config(str(path))


def _args(bundle, **overrides):
    defaults = dict(bundle=bundle, config=None, host=None, port=0,
                    max_batch_size=None, max_latency_ms=None, workers=None,
                    high_watermark=None, timeout_s=None, cache_size=None,
                    no_packed=False, no_extractor=False, dry_run=False)
    defaults.update(overrides)
    return argparse.Namespace(**defaults)


class TestBuildServer:
    def test_defaults(self, bundle_path):
        server = build_server(_args(bundle_path))
        try:
            assert server.bundle_path == bundle_path
            assert server.engine.use_packed  # auto-selected
            assert server.engine.cache_info()["max_entries"] == 256
        finally:
            server.stop()

    def test_flags_override_config(self, bundle_path, tmp_path):
        config = tmp_path / "serve.toml"
        config.write_text("[engine]\ncache_size = 64\n"
                          "[batcher]\nworkers = 4\n")
        server = build_server(_args(bundle_path, config=str(config),
                                    cache_size=8))
        try:
            # flag wins over file; file fills the rest
            assert server.engine.cache_info()["max_entries"] == 8
            assert len(server.batcher._workers) == 4
        finally:
            server.stop()

    def test_no_packed_flag(self, bundle_path):
        server = build_server(_args(bundle_path, no_packed=True))
        try:
            assert server.engine.use_packed is False
        finally:
            server.stop()

    def test_engine_options_propagate_to_reload(self, bundle_path):
        server = build_server(_args(bundle_path, cache_size=9))
        try:
            assert server.engine_options["cache_size"] == 9
            server.reload(bundle_path)
            assert server.engine.cache_info()["max_entries"] == 9
        finally:
            server.stop()


class TestMain:
    def test_dry_run_prints_health_and_exits_zero(self, bundle_path,
                                                  capsys):
        code = main([bundle_path, "--port", "0", "--dry-run"])
        assert code == 0
        health = json.loads(capsys.readouterr().out)
        assert health["status"] == "ok"
        assert health["engine"]["packed"] is True
        assert "graph" in health["engine"]

    def test_missing_bundle_exits_two(self, tmp_path, capsys):
        code = main([str(tmp_path / "missing.npz"), "--dry-run"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_bundle_exits_two(self, tmp_path, bundle_path,
                                      capsys):
        torn = tmp_path / "torn.npz"
        blob = open(bundle_path, "rb").read()
        torn.write_bytes(blob[:len(blob) // 2])
        code = main([str(torn), "--dry-run"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_config_key_exits_two(self, bundle_path, tmp_path,
                                      capsys):
        config = tmp_path / "serve.toml"
        config.write_text("[server]\nbogus = 1\n")
        code = main([bundle_path, "--config", str(config), "--dry-run"])
        assert code == 2
        assert "bogus" in capsys.readouterr().err
