"""Property tests for the fault injectors (hypothesis-driven).

The injector contracts the rest of the reliability suite relies on:

* rate 0 is the identity, rate 1 is full sign inversion;
* corruption is a pure function of ``(seed, array)`` — re-applying the
  same injector yields bit-identical corruption;
* the realized flip fraction concentrates around the configured rate;
* inputs are never mutated.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.serialize import CheckpointError, load_state, save_state
from repro.reliability import (BatchCorruptionInjector, BitFlipInjector,
                               CheckpointTruncator, ComposeInjector,
                               FeatureDropInjector, flip_bits, truncate_file)
from repro.utils.rng import fresh_rng


def bipolar(shape, seed=0):
    return fresh_rng((seed, "bipolar")).choice([-1.0, 1.0], size=shape)


# ----------------------------------------------------------------------
# BitFlipInjector properties
# ----------------------------------------------------------------------

class TestBitFlipProperties:
    @given(rows=st.integers(1, 20), cols=st.integers(1, 64),
           seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_rate_zero_is_identity(self, rows, cols, seed):
        hvs = bipolar((rows, cols), seed)
        np.testing.assert_array_equal(
            BitFlipInjector(0.0, seed=seed).apply(hvs), hvs)

    @given(rows=st.integers(1, 20), cols=st.integers(1, 64),
           seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_rate_one_is_full_inversion(self, rows, cols, seed):
        hvs = bipolar((rows, cols), seed)
        np.testing.assert_array_equal(
            BitFlipInjector(1.0, seed=seed).apply(hvs), -hvs)

    @given(rate=st.floats(0.0, 1.0, allow_nan=False),
           seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_seeding_is_idempotent(self, rate, seed):
        hvs = bipolar((8, 96), seed)
        injector = BitFlipInjector(rate, seed=seed)
        np.testing.assert_array_equal(injector.apply(hvs),
                                      injector.apply(hvs))

    @given(rate=st.floats(0.05, 0.95), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_flip_fraction_tracks_rate(self, rate, seed):
        hvs = bipolar((40, 500), seed)
        corrupted = BitFlipInjector(rate, seed=seed).apply(hvs)
        realized = float((corrupted != hvs).mean())
        # 40*500 = 20k Bernoulli trials: 5 sigma of p=0.5 is ~0.018
        assert abs(realized - rate) < 0.02

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_input_never_mutated(self, seed):
        hvs = bipolar((5, 32), seed)
        original = hvs.copy()
        BitFlipInjector(0.7, seed=seed).apply(hvs)
        np.testing.assert_array_equal(hvs, original)

    def test_different_seeds_differ(self):
        hvs = bipolar((10, 256))
        a = BitFlipInjector(0.3, seed=1).apply(hvs)
        b = BitFlipInjector(0.3, seed=2).apply(hvs)
        assert not np.array_equal(a, b)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            BitFlipInjector(1.5)
        with pytest.raises(ValueError):
            flip_bits(np.ones(4), -0.1, fresh_rng(0))


# ----------------------------------------------------------------------
# Feature drops / batch corruption / composition
# ----------------------------------------------------------------------

class TestFeatureDrop:
    @given(rate=st.floats(0.0, 1.0), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_drops_expected_column_count(self, rate, seed):
        features = np.ones((6, 50))
        injector = FeatureDropInjector(rate, seed=seed)
        out = injector.apply(features)
        dropped = np.flatnonzero((out == 0.0).all(axis=0))
        assert dropped.size == int(round(rate * 50))
        np.testing.assert_array_equal(dropped,
                                      injector.dropped_columns(50))

    def test_same_columns_for_every_sample(self):
        rng = fresh_rng(3)
        features = rng.normal(size=(12, 30))
        out = FeatureDropInjector(0.4, seed=7).apply(features)
        zero_mask = out == 0.0
        # each column is either fully zeroed or untouched
        assert np.all(zero_mask.all(axis=0) | (~zero_mask).all(axis=0))

    def test_custom_fill(self):
        out = FeatureDropInjector(1.0, seed=0, fill=-5.0).apply(
            np.ones((3, 4)))
        np.testing.assert_array_equal(out, np.full((3, 4), -5.0))


class TestBatchCorruption:
    @pytest.mark.parametrize("mode,check", [
        ("nan", lambda rows: np.isnan(rows).all()),
        ("inf", lambda rows: np.isinf(rows).all()),
        ("huge", lambda rows: (np.abs(rows) > 1e20).all()),
    ])
    def test_modes(self, mode, check):
        batch = np.ones((20, 8))
        injector = BatchCorruptionInjector(0.5, mode=mode, seed=5)
        out = injector.apply(batch)
        rows = injector.corrupted_rows(20)
        assert rows.size > 0
        assert check(out[rows])
        clean = np.setdiff1d(np.arange(20), rows)
        np.testing.assert_array_equal(out[clean], batch[clean])

    def test_fraction_zero_is_clean(self):
        batch = np.ones((10, 4))
        out = BatchCorruptionInjector(0.0, seed=0).apply(batch)
        np.testing.assert_array_equal(out, batch)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            BatchCorruptionInjector(0.5, mode="zap")


class TestCompose:
    def test_applies_in_order(self):
        hvs = bipolar((6, 40))
        compose = ComposeInjector([BitFlipInjector(1.0, seed=1),
                                   FeatureDropInjector(0.5, seed=2)])
        manual = FeatureDropInjector(0.5, seed=2).apply(
            BitFlipInjector(1.0, seed=1).apply(hvs))
        np.testing.assert_array_equal(compose.apply(hvs), manual)

    def test_deterministic(self):
        hvs = bipolar((4, 24))
        compose = ComposeInjector([BitFlipInjector(0.3, seed=9),
                                   BatchCorruptionInjector(0.2, seed=9)])
        np.testing.assert_array_equal(compose.apply(hvs), compose.apply(hvs))


# ----------------------------------------------------------------------
# Checkpoint truncation → CheckpointError on load
# ----------------------------------------------------------------------

class TestCheckpointTruncation:
    @pytest.mark.parametrize("keep", [0.0, 0.3, 0.9])
    def test_truncated_checkpoint_fails_to_load(self, tmp_path, keep):
        path = str(tmp_path / "state.npz")
        save_state({"w": np.arange(4096, dtype=np.float64)}, path)
        truncate_file(path, keep)
        with pytest.raises(CheckpointError):
            load_state(path)

    def test_truncator_object(self, tmp_path):
        path = str(tmp_path / "state.npz")
        save_state({"w": np.ones(1024)}, path)
        new_size = CheckpointTruncator(0.5)(path)
        assert new_size == pytest.approx(0.5 * 1024, abs=2049)
        with pytest.raises(CheckpointError):
            load_state(path)

    def test_keep_all_still_loads(self, tmp_path):
        path = str(tmp_path / "state.npz")
        save_state({"w": np.ones(16)}, path)
        truncate_file(path, 1.0)
        np.testing.assert_array_equal(load_state(path)["w"], np.ones(16))
