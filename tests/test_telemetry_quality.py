"""Streaming quality telemetry: baselines, PSI, drift monitors."""

import numpy as np
import pytest

from repro.telemetry import MetricsRegistry
from repro.telemetry.quality import (BASELINE_VERSION, DriftMonitor,
                                     QualityBaseline,
                                     population_stability_index)


def _rng(seed=0):
    return np.random.default_rng(seed)


@pytest.fixture()
def baseline():
    rng = _rng(3)
    features = rng.normal(size=(1500, 6))
    labels = rng.integers(0, 4, size=1500)
    return QualityBaseline.from_training(features, labels=labels,
                                         num_classes=4)


class TestPSI:
    def test_identical_distributions_are_zero(self):
        assert population_stability_index([1, 2, 3], [10, 20, 30]) == \
            pytest.approx(0.0)

    def test_shifted_distribution_is_large(self):
        psi = population_stability_index([100, 100, 100],
                                         [300, 10, 10])
        assert psi > 0.25

    def test_symmetric_in_magnitude(self):
        forward = population_stability_index([80, 20], [20, 80])
        backward = population_stability_index([20, 80], [80, 20])
        assert forward == pytest.approx(backward)
        assert forward > 0

    def test_empty_sides_are_zero(self):
        assert population_stability_index([], []) == 0.0
        assert population_stability_index([0, 0], [1, 2]) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape"):
            population_stability_index([1, 2], [1, 2, 3])

    def test_empty_bins_stay_finite(self):
        psi = population_stability_index([100, 0, 0], [0, 0, 100])
        assert np.isfinite(psi) and psi > 1.0


class TestQualityBaseline:
    def test_from_training_shapes(self, baseline):
        assert baseline.num_features == 6
        assert baseline.num_classes == 4
        assert baseline.n_bins == 10
        assert baseline.bin_edges.shape == (6, 9)
        assert baseline.expected.shape == (6, 10)
        # Quantile bins over a continuous sample are ~uniform, and the
        # per-feature proportions sum to one.
        np.testing.assert_allclose(baseline.expected.sum(axis=1), 1.0)
        assert baseline.expected.max() < 0.2
        assert baseline.n_samples == 1500

    def test_priors_from_labels(self):
        features = _rng(0).normal(size=(100, 3))
        labels = np.array([0] * 80 + [1] * 20)
        base = QualityBaseline.from_training(features, labels=labels,
                                             num_classes=3)
        np.testing.assert_allclose(base.class_priors, [0.8, 0.2, 0.0])

    def test_labels_default_to_similarity_argmax(self):
        features = _rng(0).normal(size=(50, 3))
        sims = np.zeros((50, 2))
        sims[:30, 0] = 1.0
        sims[30:, 1] = 1.0
        base = QualityBaseline.from_training(features,
                                             similarities=sims)
        np.testing.assert_allclose(base.class_priors, [0.6, 0.4])
        assert base.margin and base.confidence

    def test_uniform_priors_without_labels(self):
        base = QualityBaseline.from_training(
            _rng(0).normal(size=(40, 2)), num_classes=5)
        np.testing.assert_allclose(base.class_priors, np.full(5, 0.2))

    def test_no_label_source_raises(self):
        with pytest.raises(ValueError, match="class priors"):
            QualityBaseline.from_training(_rng(0).normal(size=(10, 2)))

    def test_empty_training_set_raises(self):
        with pytest.raises(ValueError, match="empty"):
            QualityBaseline.from_training(np.empty((0, 4)),
                                          num_classes=2)

    def test_bin_indices_bounds_and_monotonicity(self, baseline):
        probes = np.array([[-1e9] * 6, [1e9] * 6])
        bins = baseline.bin_indices(probes)
        assert (bins[0] == 0).all()
        assert (bins[1] == baseline.n_bins - 1).all()

    def test_dict_round_trip(self, baseline):
        data = baseline.to_dict()
        assert data["version"] == BASELINE_VERSION
        back = QualityBaseline.from_dict(data)
        np.testing.assert_allclose(back.feature_mean,
                                   baseline.feature_mean)
        np.testing.assert_allclose(back.bin_edges, baseline.bin_edges)
        np.testing.assert_allclose(back.expected, baseline.expected)
        np.testing.assert_allclose(back.class_priors,
                                   baseline.class_priors)
        assert back.n_samples == baseline.n_samples

    def test_round_trip_survives_json(self, baseline):
        import json
        back = QualityBaseline.from_dict(
            json.loads(json.dumps(baseline.to_dict())))
        np.testing.assert_allclose(back.expected, baseline.expected)

    def test_unsupported_version_raises(self, baseline):
        data = baseline.to_dict()
        data["version"] = BASELINE_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            QualityBaseline.from_dict(data)

    def test_constant_feature_has_safe_std(self):
        features = np.ones((50, 2))
        base = QualityBaseline.from_training(features, num_classes=2)
        assert (base.feature_std > 0).all()

    def test_describe(self, baseline):
        facts = baseline.describe()
        assert facts["features"] == 6 and facts["classes"] == 4


class TestDriftMonitor:
    def _monitor(self, baseline, **kwargs):
        registry = MetricsRegistry()
        kwargs.setdefault("window", 256)
        kwargs.setdefault("min_samples", 64)
        return DriftMonitor(baseline, registry=registry,
                            **kwargs), registry

    def test_clean_traffic_stays_quiet(self, baseline):
        monitor, registry = self._monitor(baseline)
        rng = _rng(7)
        for _ in range(4):
            monitor.observe(rng.normal(size=(64, 6)),
                            labels=rng.integers(0, 4, size=64))
        snap = monitor.snapshot()
        assert snap["feature"]["psi_max"] < 0.25
        assert snap["prediction"]["psi"] < 0.5
        assert registry.get("quality.feature.psi_max").value < 0.25

    def test_covariate_shift_fires_psi_and_zscore(self, baseline):
        monitor, registry = self._monitor(baseline)
        rng = _rng(7)
        for _ in range(4):
            monitor.observe(3.0 + 2.0 * rng.normal(size=(64, 6)))
        snap = monitor.snapshot()
        assert snap["feature"]["psi_max"] > 0.25
        assert snap["feature"]["zscore_max"] > 6.0
        assert registry.get("quality.feature.psi_max").value > 0.25
        top = monitor.top_features(3)
        assert top and top[0]["psi"] >= top[-1]["psi"]

    def test_gauges_zero_below_min_samples(self, baseline):
        monitor, registry = self._monitor(baseline, min_samples=64)
        monitor.observe(3.0 + _rng(0).normal(size=(16, 6)))
        assert registry.get("quality.feature.psi_max").value == 0.0
        assert monitor.snapshot()["feature"]["psi_max"] == 0.0

    def test_label_skew_fires_prediction_psi(self, baseline):
        monitor, _ = self._monitor(baseline)
        rng = _rng(1)
        for _ in range(4):
            monitor.observe(rng.normal(size=(64, 6)),
                            labels=np.zeros(64, dtype=int))
        assert monitor.snapshot()["prediction"]["psi"] > 1.0

    def test_window_eviction_forgets_old_traffic(self, baseline):
        monitor, _ = self._monitor(baseline, window=128)
        rng = _rng(2)
        for _ in range(2):
            monitor.observe(5.0 + rng.normal(size=(64, 6)))
        assert monitor.snapshot()["feature"]["psi_max"] > 0.25
        # Flood the window with clean traffic: the shift must wash out.
        for _ in range(4):
            monitor.observe(rng.normal(size=(64, 6)))
        assert monitor.snapshot()["feature"]["psi_max"] < 0.25
        assert monitor.snapshot()["window"]["size"] == 128

    def test_margin_and_saturation_streams(self, baseline):
        monitor, registry = self._monitor(baseline)
        rng = _rng(3)
        sims = rng.normal(size=(64, 4))
        encoded = np.sign(rng.normal(size=(64, 32)))
        monitor.observe(rng.normal(size=(64, 6)),
                        labels=np.argmax(sims, axis=1),
                        similarities=sims, encoded=encoded)
        assert registry.get("quality.margin").count == 64
        assert registry.get("quality.confidence").count == 64
        snap = monitor.snapshot()
        assert snap["margin"]["live"]["count"] == 64
        assert snap["saturation"] == pytest.approx(0.0)

    def test_feature_count_mismatch_raises(self, baseline):
        monitor, _ = self._monitor(baseline)
        with pytest.raises(ValueError, match="columns"):
            monitor.observe(np.zeros((4, 5)))

    def test_reset_clears_window(self, baseline):
        monitor, _ = self._monitor(baseline)
        monitor.observe(5.0 + _rng(0).normal(size=(128, 6)))
        monitor.reset()
        snap = monitor.snapshot()
        assert snap["samples"] == 0
        assert snap["window"]["size"] == 0
        assert snap["feature"]["psi_max"] == 0.0

    def test_samples_counter_accumulates(self, baseline):
        monitor, registry = self._monitor(baseline)
        monitor.observe(_rng(0).normal(size=(10, 6)))
        monitor.observe(_rng(1).normal(size=(15, 6)))
        assert monitor.samples == 25
        assert registry.get("quality.samples").value == 25

    def test_single_row_observation(self, baseline):
        monitor, _ = self._monitor(baseline, min_samples=1)
        monitor.observe(np.zeros(6))  # 1-D row is promoted to (1, F)
        assert monitor.snapshot()["window"]["size"] == 1

    def test_describe_is_cheap_facts(self, baseline):
        monitor, _ = self._monitor(baseline)
        facts = monitor.describe()
        assert facts["window"] == 256 and facts["samples"] == 0
