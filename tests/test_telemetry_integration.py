"""Integration: the instrumented trainers/pipelines emit the expected
telemetry, callbacks drive checkpointing/early-stop, guards count events."""

import numpy as np
import pytest

from repro.learn import (CheckpointCallback, EarlyStopping, MassTrainer,
                         TelemetryCallback, TrainerCallback, VanillaHD)
from repro.reliability import NumericsGuard
from repro.telemetry import Tracer, get_tracer, set_tracer, use_registry


@pytest.fixture()
def fresh_tracer():
    previous = set_tracer(Tracer())
    yield get_tracer()
    set_tracer(previous)


def make_hv_problem(n=120, dim=128, classes=4, seed=0):
    rng = np.random.default_rng(seed)
    prototypes = np.sign(rng.standard_normal((classes, dim)))
    labels = rng.integers(0, classes, n)
    noise = np.where(rng.random((n, dim)) < 0.2, -1.0, 1.0)
    return prototypes[labels] * noise, labels


class TestTrainerTelemetry:
    def test_expected_metric_names_published(self, fresh_tracer):
        hvs, labels = make_hv_problem()
        with use_registry() as registry:
            trainer = MassTrainer(4, 128)
            history = trainer.fit(hvs, labels, epochs=2, batch_size=32,
                                  rng=np.random.default_rng(1),
                                  callbacks=[TelemetryCallback()])
            snapshot = registry.snapshot()
        for name in ("train.batches", "train.samples", "train.epochs",
                     "train.epoch", "train.train_acc",
                     "train.similarity_margin", "train.update_norm",
                     "train.epoch_time_s"):
            assert name in snapshot, name
        assert snapshot["train.epochs"]["value"] == 2.0
        assert snapshot["train.batches"]["value"] == 2 * 4  # 120/32 → 4
        assert snapshot["train.similarity_margin"]["count"] > 0
        # Satellite: per-epoch timing lands in the history dict.
        assert len(history["epoch_time"]) == 2
        assert all(t >= 0.0 for t in history["epoch_time"])

    def test_stage_spans_recorded(self, fresh_tracer):
        hvs, labels = make_hv_problem()
        with use_registry():
            MassTrainer(4, 128).fit(hvs, labels, epochs=1, batch_size=32,
                                    rng=np.random.default_rng(1))
        agg = fresh_tracer.aggregate()
        assert "stage.update" in agg
        assert "stage.similarity" in agg
        assert agg["stage.update"]["calls"] == 4

    def test_callback_hooks_fire_in_order(self, fresh_tracer):
        events = []

        class Recorder(TrainerCallback):
            def on_fit_start(self, trainer, total_epochs):
                events.append(("start", total_epochs))

            def on_epoch_end(self, epoch, metrics):
                events.append(("epoch", epoch, metrics["train_acc"]))
                assert metrics["history"]["train_acc"]
                assert metrics["epoch_time_s"] >= 0.0

            def on_fit_end(self, history):
                events.append(("end", len(history["train_acc"])))

        hvs, labels = make_hv_problem()
        with use_registry():
            MassTrainer(4, 128).fit(hvs, labels, epochs=2, batch_size=64,
                                    rng=np.random.default_rng(0),
                                    callbacks=[Recorder()])
        assert events[0] == ("start", 2)
        assert [e[0] for e in events] == ["start", "epoch", "epoch", "end"]
        assert events[-1] == ("end", 2)

    def test_early_stopping_halts_training(self, fresh_tracer):
        hvs, labels = make_hv_problem()
        with use_registry():
            trainer = MassTrainer(4, 128, lr=0.0)  # lr=0 → no improvement
            history = trainer.fit(hvs, labels, epochs=10, batch_size=64,
                                  rng=np.random.default_rng(0),
                                  callbacks=[EarlyStopping(patience=2)])
        assert len(history["train_acc"]) < 10

    def test_legacy_epoch_callback_still_invoked(self, fresh_tracer):
        seen = []
        hvs, labels = make_hv_problem()
        with use_registry():
            MassTrainer(4, 128).fit(
                hvs, labels, epochs=2, batch_size=64,
                rng=np.random.default_rng(0),
                epoch_callback=lambda epoch, hist: seen.append(epoch))
        assert seen == [0, 1]


class TestGuardTelemetry:
    def test_guard_events_increment_counters(self, fresh_tracer):
        hvs, labels = make_hv_problem(n=64)
        poisoned = hvs.copy()
        poisoned[:8] = np.nan
        with use_registry() as registry:
            guard = NumericsGuard(policy="skip_batch")
            trainer = MassTrainer(4, 128, guard=guard)
            trainer.initialize(hvs, labels)
            assert trainer.step(poisoned, labels) is False
            assert trainer.step(hvs, labels) is True
            snapshot = registry.snapshot()
        assert snapshot["guard.nan_batches"]["value"] >= 1.0
        assert snapshot["guard.skipped_batches"]["value"] == 1.0
        assert snapshot["guard.violations"]["value"] == 1.0
        assert snapshot["train.skipped_batches"]["value"] == 1.0
        assert guard.batches_skipped == 1

    def test_overflow_counter(self, fresh_tracer):
        with use_registry() as registry:
            guard = NumericsGuard(policy="skip_batch", max_abs=10.0)
            assert guard.ok("tag", np.array([1e6])) is False
            assert registry.snapshot()["guard.overflow_batches"]["value"] == 1


class TestPipelineTelemetry:
    def test_vanilla_hd_emits_encode_metrics_and_history(self, fresh_tracer,
                                                         tmp_path):
        rng = np.random.default_rng(0)
        images = rng.normal(size=(60, 3, 8, 8))
        labels = rng.integers(0, 3, 60)
        with use_registry() as registry:
            pipeline = VanillaHD(num_classes=3, image_size=8, dim=256,
                                 seed=0)
            ckpt = str(tmp_path / "vanilla.ckpt")
            history = pipeline.fit(images, labels, epochs=3, batch_size=32,
                                   checkpoint_path=ckpt)
            snapshot = registry.snapshot()
        assert snapshot["hd.encode.samples"]["value"] >= 60
        assert snapshot["hd.encode.macs"]["value"] > 0
        assert "train.similarity_margin" in snapshot
        # Satellite: the pipeline history carries per-epoch timings and
        # the checkpoint (written via CheckpointCallback) persists them.
        assert len(history["epoch_time"]) == 3
        completed, saved = pipeline.load_checkpoint(ckpt)
        assert completed == 3
        assert saved["train_acc"] == pytest.approx(history["train_acc"])
        assert len(saved["epoch_time"]) == 3

    def test_checkpoint_callback_merges_prefix_history(self, tmp_path):
        class FakePipeline:
            def __init__(self):
                self.saved = []

            def save_checkpoint(self, path, epoch, history):
                self.saved.append((path, epoch, history))

        pipeline = FakePipeline()
        callback = CheckpointCallback(
            pipeline, "x.ckpt", every=2, total_epochs=3,
            history_prefix={"train_acc": [0.1]})
        history = {"train_acc": [0.2], "epoch_time": [0.01]}
        callback.on_epoch_end(0, {"history": history})  # 1 % 2 → skipped
        assert pipeline.saved == []
        history["train_acc"].append(0.3)
        history["epoch_time"].append(0.02)
        callback.on_epoch_end(1, {"history": history})
        assert len(pipeline.saved) == 1
        _, epoch, merged = pipeline.saved[0]
        assert epoch == 2
        assert merged["train_acc"] == [0.1, 0.2, 0.3]
        assert merged["epoch_time"] == [0.01, 0.02]
        # Final epoch always checkpoints even off the `every` grid.
        callback.on_epoch_end(2, {"history": history})
        assert pipeline.saved[-1][1] == 3

    def test_checkpoint_callback_validates_interval(self):
        with pytest.raises(ValueError):
            CheckpointCallback(object(), "x", every=0)
