"""Tests for t-SNE, interpretability metrics and the KD grid search."""

import numpy as np
import pytest

from repro.analysis import (GridSearchResult, class_alignment,
                            cluster_separation, kd_grid_search,
                            pairwise_affinities, silhouette_score, tsne)


def clustered_data(num_classes=3, per_class=25, dim=20, spread=0.3, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 3.0, size=(num_classes, dim))
    labels = np.repeat(np.arange(num_classes), per_class)
    points = centers[labels] + rng.normal(0, spread, size=(len(labels), dim))
    return points, labels


class TestTSNE:
    def test_affinities_are_distribution(self):
        x, _ = clustered_data()
        p = pairwise_affinities(x, perplexity=10.0)
        assert p.shape == (len(x), len(x))
        assert p.sum() == pytest.approx(1.0, rel=1e-6)
        np.testing.assert_allclose(p, p.T, rtol=1e-10)

    def test_affinities_validation(self):
        with pytest.raises(ValueError):
            pairwise_affinities(np.zeros(5))
        with pytest.raises(ValueError):
            pairwise_affinities(np.zeros((5, 2)), perplexity=10.0)

    def test_affinity_favors_neighbors(self):
        x = np.array([[0.0], [0.1], [10.0]])
        p = pairwise_affinities(x, perplexity=1.5)
        assert p[0, 1] > p[0, 2]

    def test_embedding_shape_and_determinism(self):
        x, _ = clustered_data(per_class=10)
        a = tsne(x, num_iters=50, perplexity=10.0, rng=np.random.default_rng(0))
        b = tsne(x, num_iters=50, perplexity=10.0, rng=np.random.default_rng(0))
        assert a.shape == (len(x), 2)
        np.testing.assert_allclose(a, b)

    def test_embedding_separates_clusters(self):
        x, labels = clustered_data(spread=0.2, seed=1)
        embedded = tsne(x, num_iters=250, perplexity=15.0,
                        rng=np.random.default_rng(0))
        assert cluster_separation(embedded, labels) > 2.0

    def test_embedding_centered(self):
        x, _ = clustered_data(per_class=8)
        embedded = tsne(x, num_iters=30, perplexity=8.0,
                        rng=np.random.default_rng(0))
        np.testing.assert_allclose(embedded.mean(axis=0), np.zeros(2),
                                   atol=1e-8)


class TestInterpretMetrics:
    def test_cluster_separation_orders_configurations(self):
        tight, labels = clustered_data(spread=0.1, seed=2)
        loose, _ = clustered_data(spread=2.0, seed=2)
        assert cluster_separation(tight, labels) > \
            cluster_separation(loose, labels)

    def test_cluster_separation_identical_points(self):
        points = np.zeros((4, 3))
        labels = np.array([0, 0, 1, 1])
        assert cluster_separation(points, labels) == np.inf

    def test_class_alignment_positive_for_matched_model(self):
        points, labels = clustered_data(spread=0.2, seed=3)
        class_matrix = np.stack([points[labels == c].mean(axis=0)
                                 for c in range(3)])
        assert class_alignment(points, labels, class_matrix) > 0

    def test_class_alignment_negative_for_swapped_model(self):
        points, labels = clustered_data(spread=0.2, seed=4)
        class_matrix = np.stack([points[labels == c].mean(axis=0)
                                 for c in (1, 2, 0)])  # wrong assignment
        assert class_alignment(points, labels, class_matrix) < 0

    def test_silhouette_bounds_and_ordering(self):
        tight, labels = clustered_data(spread=0.1, seed=5)
        loose, _ = clustered_data(spread=3.0, seed=5)
        s_tight = silhouette_score(tight, labels)
        s_loose = silhouette_score(loose, labels)
        assert -1.0 <= s_loose <= s_tight <= 1.0
        assert s_tight > 0.8

    def test_silhouette_needs_two_classes(self):
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((3, 2)), np.zeros(3, dtype=int))


class TestKDGridSearch:
    def make_problem(self, seed=0):
        rng = np.random.default_rng(seed)
        dim, k, n = 512, 3, 120
        protos = rng.choice([-1.0, 1.0], size=(k, dim))
        labels = np.repeat(np.arange(k), n // k)
        hvs = np.sign(protos[labels] + rng.normal(0, 1.5, size=(n, dim)))
        hvs[hvs == 0] = 1
        logits = rng.normal(0, 0.3, size=(n, k))
        logits[np.arange(n), labels] += 2.5
        test_hvs = np.sign(protos[labels] + rng.normal(0, 1.5,
                                                       size=(n, dim)))
        test_hvs[test_hvs == 0] = 1
        return hvs, labels, logits, test_hvs, labels

    def test_grid_shape(self):
        tr, y, logits, te, yt = self.make_problem()
        result = kd_grid_search(tr, y, logits, te, yt, num_classes=3,
                                dim=512, temperatures=(12.0, 14.0),
                                alphas=(0.0, 0.5), epochs=3)
        assert result.accuracies.shape == (2, 2)
        assert np.all(result.accuracies >= 0)
        assert np.all(result.accuracies <= 1)

    def test_alpha_zero_row_constant(self):
        tr, y, logits, te, yt = self.make_problem(seed=1)
        result = kd_grid_search(tr, y, logits, te, yt, num_classes=3,
                                dim=512, temperatures=(12.0, 15.0, 17.0),
                                alphas=(0.0,), epochs=3)
        assert np.allclose(result.accuracies[0], result.accuracies[0, 0])

    def test_best_returns_max_cell(self):
        result = GridSearchResult(
            temperatures=(12.0, 13.0), alphas=(0.0, 0.5),
            accuracies=np.array([[0.5, 0.5], [0.6, 0.9]]))
        alpha, temp, acc = result.best()
        assert (alpha, temp, acc) == (0.5, 13.0, 0.9)

    def test_kd_boost_measured_against_alpha_zero(self):
        result = GridSearchResult(
            temperatures=(12.0,), alphas=(0.0, 0.5),
            accuracies=np.array([[0.6], [0.7]]))
        assert result.kd_boost() == pytest.approx(0.1)

    def test_kd_boost_requires_alpha_zero(self):
        result = GridSearchResult(temperatures=(12.0,), alphas=(0.5,),
                                  accuracies=np.array([[0.7]]))
        with pytest.raises(ValueError):
            result.kd_boost()
