"""Inference engine: packed/float agreement, caching, pipeline parity."""

import numpy as np
import pytest

from repro.data import make_dataset
from repro.learn import VanillaHD
from repro.learn.mass import normalized_similarity
from repro.serve import (BundleError, EngineSelfCheckError, InferenceEngine,
                         ModelBundle)
from repro.utils.rng import fresh_rng


@pytest.fixture(scope="module")
def fitted_vanilla():
    x_tr, y_tr, x_te, y_te = make_dataset(num_classes=4, num_train=80,
                                          num_test=40, seed=9)
    pipeline = VanillaHD(num_classes=4, image_size=x_tr.shape[-1],
                         dim=300, seed=9)
    pipeline.fit(x_tr, y_tr, epochs=2)
    return pipeline, x_tr, y_tr, x_te, y_te


class TestPackedPath:
    def test_auto_enabled_on_bipolar_bundle(self, synthetic_bundle):
        engine = InferenceEngine(synthetic_bundle())
        assert engine.use_packed
        assert engine.describe()["packed"]

    def test_float_bundle_stays_on_cosine_path(self, synthetic_bundle):
        engine = InferenceEngine(synthetic_bundle(binary=False))
        assert not engine.use_packed

    def test_forcing_packed_on_float_bundle_raises(self, synthetic_bundle):
        with pytest.raises(BundleError, match="bipolar"):
            InferenceEngine(synthetic_bundle(binary=False), use_packed=True)

    def test_packed_bitexact_with_float_engine(self, synthetic_bundle):
        bundle = synthetic_bundle(dim=640, features=24, classes=7, seed=3)
        packed = InferenceEngine(bundle, cache_size=0)
        floating = InferenceEngine(bundle, use_packed=False, cache_size=0)
        rng = fresh_rng((3, "engine-agreement"))
        features = rng.standard_normal((200, 24))
        np.testing.assert_array_equal(packed.predict_features(features),
                                      floating.predict_features(features))

    def test_selfcheck_catches_corruption(self, synthetic_bundle):
        engine = InferenceEngine(synthetic_bundle())
        assert engine.selfcheck()
        engine._packed_classes = np.roll(engine._packed_classes, 1, axis=0)
        with pytest.raises(EngineSelfCheckError):
            engine.selfcheck()


class TestFloatPath:
    def test_similarities_match_trainer_kernel(self, synthetic_bundle):
        bundle = synthetic_bundle(binary=False)
        engine = InferenceEngine(bundle, cache_size=0)
        rng = fresh_rng((1, "engine-sims"))
        encoded = rng.standard_normal((16, bundle.info["dim"]))
        np.testing.assert_array_equal(
            engine.similarities(encoded),
            normalized_similarity(bundle.class_matrix(), encoded))

    def test_single_sample_matches_batch(self, synthetic_bundle):
        engine = InferenceEngine(synthetic_bundle(), cache_size=0)
        rng = fresh_rng((2, "engine-single"))
        features = rng.standard_normal((8, 32))
        batch = engine.predict_features(features)
        singles = [int(engine.predict_features(row)[0]) for row in features]
        np.testing.assert_array_equal(batch, singles)


class TestCache:
    def test_repeat_queries_hit_lru(self, synthetic_bundle):
        engine = InferenceEngine(synthetic_bundle(), cache_size=64)
        rng = fresh_rng((4, "engine-cache"))
        features = rng.standard_normal((10, 32))
        first = engine.predict_features(features)
        second = engine.predict_features(features)
        np.testing.assert_array_equal(first, second)
        info = engine.cache_info()
        assert info["hits"] >= 10 and info["misses"] >= 10
        assert info["entries"] == 10

    def test_lru_eviction_bounds_entries(self, synthetic_bundle):
        engine = InferenceEngine(synthetic_bundle(), cache_size=4)
        rng = fresh_rng((5, "engine-evict"))
        engine.predict_features(rng.standard_normal((20, 32)))
        assert engine.cache_info()["entries"] == 4

    def test_cache_disabled(self, synthetic_bundle):
        engine = InferenceEngine(synthetic_bundle(), cache_size=0)
        rng = fresh_rng((6, "engine-nocache"))
        features = rng.standard_normal((5, 32))
        engine.predict_features(features)
        engine.predict_features(features)
        assert engine.cache_info() == {"entries": 0, "hits": 0,
                                       "misses": 0, "max_entries": 0}


class TestPipelineParity:
    def test_float_bundle_bitexact_with_pipeline(self, fitted_vanilla):
        pipeline, _, _, x_te, _ = fitted_vanilla
        bundle = ModelBundle.from_pipeline(pipeline)
        engine = InferenceEngine(bundle)
        np.testing.assert_array_equal(engine.predict(x_te),
                                      pipeline.predict(x_te))

    def test_accuracy_matches_pipeline(self, fitted_vanilla):
        pipeline, _, _, x_te, y_te = fitted_vanilla
        engine = InferenceEngine(ModelBundle.from_pipeline(pipeline))
        flat = np.asarray(x_te).reshape(len(x_te), -1)
        assert engine.accuracy_features(flat, y_te) == \
            pytest.approx(pipeline.accuracy(x_te, y_te))

    def test_continuous_encoder_refuses_packed(self, fitted_vanilla):
        """VanillaHD's nonlinear encoder is unquantized: the queries are
        continuous, so the packed path must refuse to engage even when
        the class matrix was binarized at export."""
        pipeline = fitted_vanilla[0]
        bundle = ModelBundle.from_pipeline(pipeline, binarize=True)
        assert not InferenceEngine(bundle).use_packed  # auto stays off
        with pytest.raises(BundleError, match="quantizing encoder"):
            InferenceEngine(bundle, use_packed=True)

    def test_quantized_nonlinear_packed_agrees_with_float(
            self, fitted_vanilla):
        """With a quantizing nonlinear encoder both engine paths are
        bipolar end-to-end and must agree bit-for-bit."""
        pipeline, _, _, x_te, _ = fitted_vanilla
        pipeline.encoder.quantize = True
        try:
            bundle = ModelBundle.from_pipeline(pipeline, binarize=True)
        finally:
            pipeline.encoder.quantize = False
        packed = InferenceEngine(bundle, use_packed=True)
        floating = InferenceEngine(bundle, use_packed=False)
        assert packed.use_packed
        np.testing.assert_array_equal(packed.predict(x_te),
                                      floating.predict(x_te))


class TestFromPath:
    def test_round_trip_predictions(self, synthetic_bundle, tmp_path):
        bundle = synthetic_bundle(seed=11)
        path = str(tmp_path / "bundle.npz")
        bundle.save(path)
        engine = InferenceEngine.from_path(path)
        reference = InferenceEngine(bundle)
        rng = fresh_rng((11, "engine-path"))
        features = rng.standard_normal((12, 32))
        np.testing.assert_array_equal(engine.predict_features(features),
                                      reference.predict_features(features))
