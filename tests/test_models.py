"""Tests for the CNN zoo: indexing, shapes, extractor/teacher wrappers."""

import numpy as np
import pytest

from repro.models import (MODEL_REGISTRY, FeatureExtractor, TeacherModel,
                          create_model, paper_cut_layers, scale_channels,
                          soften_logits)
from repro.models.blocks import ConvBNAct, InvertedResidual, SqueezeExcite
from repro.nn import Tensor, no_grad

TINY = dict(num_classes=4, width_mult=0.125, seed=0)


@pytest.fixture(scope="module")
def tiny_models():
    return {name: create_model(name, **TINY) for name in MODEL_REGISTRY}


class TestRegistry:
    def test_all_models_constructible(self, tiny_models):
        assert set(tiny_models) == {"vgg16", "mobilenetv2",
                                    "efficientnet_b0", "efficientnet_b7"}

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            create_model("resnet50")

    def test_paper_cut_layers(self):
        assert paper_cut_layers("vgg16") == (27, 29)
        assert paper_cut_layers("mobilenetv2") == (14, 17)
        assert paper_cut_layers("efficientnet_b0") == (5, 6, 7, 8)
        assert paper_cut_layers("efficientnet_b7") == (6, 7, 8)
        with pytest.raises(ValueError):
            paper_cut_layers("alexnet")

    def test_layer_index_counts_match_torchvision(self, tiny_models):
        """The paper's indexing: VGG16 has 31 feature layers, MobileNetV2
        19 operators, EfficientNet 9 blocks."""
        assert tiny_models["vgg16"].num_feature_layers() == 31
        assert tiny_models["mobilenetv2"].num_feature_layers() == 19
        assert tiny_models["efficientnet_b0"].num_feature_layers() == 9
        assert tiny_models["efficientnet_b7"].num_feature_layers() == 9

    def test_deterministic_construction(self):
        a = create_model("vgg16", **TINY)
        b = create_model("vgg16", **TINY)
        x = np.random.default_rng(0).normal(size=(2, 3, 32, 32))
        np.testing.assert_allclose(a.logits(x), b.logits(x))

    def test_scale_channels(self):
        assert scale_channels(64, 1.0) == 64
        assert scale_channels(64, 0.25) == 16
        assert scale_channels(64, 0.01) == 4  # floor at minimum
        assert scale_channels(30, 1.0, divisor=4) % 4 == 0


class TestForwardShapes:
    @pytest.mark.parametrize("name", list(MODEL_REGISTRY))
    def test_logits_shape(self, tiny_models, name):
        model = tiny_models[name]
        out = model.logits(np.zeros((3, 3, 32, 32)))
        assert out.shape == (3, 4)

    @pytest.mark.parametrize("name", list(MODEL_REGISTRY))
    def test_paper_layers_valid_and_monotone_depth(self, tiny_models, name):
        model = tiny_models[name]
        for layer in paper_cut_layers(name):
            assert 0 <= layer < model.num_feature_layers()
            c, h, w = model.feature_shape(layer)
            assert c >= 1 and h >= 1 and w >= 1

    def test_features_at_progression(self, tiny_models):
        model = tiny_models["vgg16"]
        x = Tensor(np.zeros((1, 3, 32, 32)))
        with no_grad():
            early = model.features_at(x, 1)
            late = model.features_at(x, 30)
        assert early.shape[2] > late.shape[2]  # pooling shrinks space

    def test_features_at_range_check(self, tiny_models):
        model = tiny_models["vgg16"]
        with pytest.raises(ValueError):
            model.features_at(Tensor(np.zeros((1, 3, 32, 32))), 31)

    def test_feature_count_matches_shape(self, tiny_models):
        model = tiny_models["efficientnet_b0"]
        for layer in (5, 8):
            c, h, w = model.feature_shape(layer)
            assert model.feature_count(layer) == c * h * w

    def test_b7_larger_than_b0(self, tiny_models):
        assert tiny_models["efficientnet_b7"].num_parameters() > \
            tiny_models["efficientnet_b0"].num_parameters()

    def test_predict_and_accuracy(self, tiny_models):
        model = tiny_models["mobilenetv2"]
        x = np.random.default_rng(0).normal(size=(6, 3, 32, 32))
        preds = model.predict(x)
        assert preds.shape == (6,)
        acc = model.accuracy(x, preds)
        assert acc == 1.0


class TestBlocks:
    def test_conv_bn_act_shapes(self):
        block = ConvBNAct(3, 8, kernel=3, stride=2,
                          rng=np.random.default_rng(0))
        out = block(Tensor(np.zeros((2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_conv_bn_act_bad_activation(self):
        with pytest.raises(ValueError):
            ConvBNAct(3, 8, activation="gelu")

    def test_squeeze_excite_preserves_shape(self):
        se = SqueezeExcite(8, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(size=(2, 8, 4, 4)))
        assert se(x).shape == x.shape

    def test_squeeze_excite_gates_in_unit_interval(self):
        se = SqueezeExcite(8, rng=np.random.default_rng(0))
        x = Tensor(np.abs(np.random.default_rng(1).normal(size=(1, 8, 4, 4))))
        out = se(x)
        ratio = out.data / np.where(x.data == 0, 1.0, x.data)
        assert np.all(ratio <= 1.0 + 1e-9) and np.all(ratio >= 0.0)

    def test_inverted_residual_skip_connection(self):
        block = InvertedResidual(8, 8, stride=1, expand_ratio=2,
                                 rng=np.random.default_rng(0))
        assert block.use_residual

    def test_inverted_residual_no_skip_on_stride(self):
        block = InvertedResidual(8, 8, stride=2, expand_ratio=2,
                                 rng=np.random.default_rng(0))
        assert not block.use_residual

    def test_inverted_residual_stride_validation(self):
        with pytest.raises(ValueError):
            InvertedResidual(8, 8, stride=3)

    def test_inverted_residual_shapes(self):
        block = InvertedResidual(4, 12, stride=2, expand_ratio=6,
                                 use_se=True, activation="silu",
                                 rng=np.random.default_rng(0))
        out = block(Tensor(np.zeros((1, 4, 8, 8))))
        assert out.shape == (1, 12, 4, 4)


class TestExtractorAndTeacher:
    def test_extractor_output_shape(self, tiny_models):
        model = tiny_models["vgg16"]
        extractor = FeatureExtractor(model, 27)
        feats = extractor.extract(np.zeros((5, 3, 32, 32)))
        assert feats.shape == (5, extractor.num_features)

    def test_extractor_layer_validation(self, tiny_models):
        with pytest.raises(ValueError):
            FeatureExtractor(tiny_models["vgg16"], 99)

    def test_extractor_eval_mode_restored(self, tiny_models):
        model = tiny_models["vgg16"]
        model.train()
        FeatureExtractor(model, 5).extract(np.zeros((2, 3, 32, 32)))
        assert model.training

    def test_extractor_deterministic(self, tiny_models):
        model = tiny_models["efficientnet_b0"]
        ext = FeatureExtractor(model, 6)
        x = np.random.default_rng(2).normal(size=(3, 3, 32, 32))
        np.testing.assert_allclose(ext.extract(x), ext.extract(x))

    def test_earlier_layer_cheaper_or_equal_features_than_trunk_end(
            self, tiny_models):
        model = tiny_models["vgg16"]
        assert model.feature_count(10) >= model.feature_count(30)

    def test_teacher_logits_match_model(self, tiny_models):
        model = tiny_models["mobilenetv2"]
        teacher = TeacherModel(model)
        x = np.random.default_rng(3).normal(size=(4, 3, 32, 32))
        np.testing.assert_allclose(teacher.logits(x), model.logits(x))

    def test_teacher_soft_labels_are_distributions(self, tiny_models):
        teacher = TeacherModel(tiny_models["vgg16"])
        x = np.random.default_rng(4).normal(size=(3, 3, 32, 32))
        soft = teacher.soft_labels(x, temperature=4.0)
        np.testing.assert_allclose(soft.sum(axis=1), np.ones(3), rtol=1e-10)
        assert np.all(soft >= 0)

    def test_soften_logits_temperature_flattens(self):
        logits = np.array([[4.0, 0.0, 0.0]])
        sharp = soften_logits(logits, 1.0)
        soft = soften_logits(logits, 10.0)
        assert soft[0, 0] < sharp[0, 0]

    def test_soften_logits_validation(self):
        with pytest.raises(ValueError):
            soften_logits(np.zeros((1, 3)), 0.0)
