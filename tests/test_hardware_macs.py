"""Tests for MAC/parameter counting against hand-computed references."""

import numpy as np
import pytest

from repro import nn
from repro.hardware import (baselinehd_macs, count_parameters,
                            hd_encode_macs, hd_similarity_macs, model_macs,
                            nshd_macs, trace_costs, trunk_macs)
from repro.models import create_model


@pytest.fixture(scope="module")
def vgg():
    return create_model("vgg16", num_classes=5, width_mult=0.125, seed=0)


class TestTraceCosts:
    def test_single_conv_macs(self):
        conv = nn.Conv2d(3, 8, 3, padding=1, rng=np.random.default_rng(0))
        costs = trace_costs(lambda x: conv(x), image_size=16)
        # 8 channels x 16x16 outputs x (3 in-ch x 9) per output
        assert sum(c.macs for c in costs) == 8 * 16 * 16 * 27

    def test_strided_conv_macs(self):
        conv = nn.Conv2d(3, 4, 3, stride=2, padding=1,
                         rng=np.random.default_rng(0))
        costs = trace_costs(lambda x: conv(x), image_size=16)
        assert sum(c.macs for c in costs) == 4 * 8 * 8 * 27

    def test_depthwise_conv_macs(self):
        conv = nn.DepthwiseConv2d(3, 3, padding=1,
                                  rng=np.random.default_rng(0))
        costs = trace_costs(lambda x: conv(x), image_size=8)
        # groups == channels: 1 input channel per output
        assert sum(c.macs for c in costs) == 3 * 8 * 8 * 9

    def test_linear_macs(self):
        lin = nn.Linear(10, 4, rng=np.random.default_rng(0))
        model = nn.Sequential(nn.AdaptiveAvgPool2d(1), nn.Flatten())

        def run(x):
            return lin(nn.Tensor(np.zeros((1, 10))))
        costs = trace_costs(run, image_size=8)
        assert sum(c.macs for c in costs) == 40

    def test_batchnorm_zero_macs_but_params(self):
        bn = nn.BatchNorm2d(6)
        bn.eval()
        costs = trace_costs(lambda x: bn(nn.Tensor(np.zeros((1, 6, 4, 4)))),
                            image_size=8)
        bn_costs = [c for c in costs if c.kind == "BatchNorm2d"]
        assert bn_costs[0].macs == 0
        assert bn_costs[0].params == 12

    def test_pool_and_activation_free(self):
        model = nn.Sequential(nn.MaxPool2d(2), nn.ReLU())
        costs = trace_costs(lambda x: model(x), image_size=8)
        assert sum(c.macs for c in costs) == 0
        assert sum(c.params for c in costs) == 0


class TestModelCounts:
    def test_trunk_macs_monotone_in_depth(self, vgg):
        macs = [trunk_macs(vgg, layer) for layer in (5, 15, 27, 30)]
        assert macs == sorted(macs)
        assert macs[0] > 0

    def test_full_model_exceeds_trunk(self, vgg):
        assert model_macs(vgg) > trunk_macs(vgg, 30)

    def test_count_parameters_full(self, vgg):
        assert count_parameters(vgg) == vgg.num_parameters()

    def test_count_parameters_trunk_monotone(self, vgg):
        params = [count_parameters(vgg, layer) for layer in (5, 15, 27)]
        assert params == sorted(params)
        assert params[-1] < vgg.num_parameters()

    def test_trace_does_not_disturb_training_flag(self, vgg):
        vgg.train()
        model_macs(vgg)
        assert vgg.training
        vgg.eval()


class TestHDStageCounts:
    def test_encode_macs(self):
        assert hd_encode_macs(100, 3000) == 300_000

    def test_similarity_macs(self):
        assert hd_similarity_macs(10, 3000) == 30_000

    def test_nshd_stage_breakdown(self, vgg):
        stages = nshd_macs(vgg, 27, dim=3000, reduced_features=64,
                           num_classes=5)
        assert stages["encode"] == 64 * 3000
        assert stages["similarity"] == 5 * 3000
        assert stages["total"] == sum(stages[k] for k in
                                      ("trunk", "manifold", "encode",
                                       "similarity"))

    def test_manifold_macs_use_pooled_features(self, vgg):
        c, h, w = vgg.feature_shape(27)
        stages = nshd_macs(vgg, 27, dim=3000, reduced_features=64,
                           num_classes=5)
        pooled = c * max(1, h // 2) * max(1, w // 2) if h >= 2 and w >= 2 \
            else c * h * w
        assert stages["manifold"] == pooled * 64

    def test_baselinehd_encodes_full_features(self, vgg):
        stages = baselinehd_macs(vgg, 27, dim=3000, num_classes=5)
        assert stages["encode"] == vgg.feature_count(27) * 3000
        assert stages["manifold"] == 0

    def test_nshd_cheaper_than_baseline_when_f_large(self, vgg):
        """Fig. 5's claim: the manifold learner reduces HD-stage MACs
        whenever F̂ (plus the manifold FC) is cheaper than F."""
        nshd = nshd_macs(vgg, 27, dim=3000, reduced_features=64,
                         num_classes=5)
        base = baselinehd_macs(vgg, 27, dim=3000, num_classes=5)
        assert nshd["total"] < base["total"]

    def test_manifold_saving_grows_with_dimension(self, vgg):
        """Fig. 5: savings are larger at D=10,000 than at D=3,000."""
        def saving(dim):
            nshd = nshd_macs(vgg, 27, dim=dim, reduced_features=64,
                             num_classes=5)["total"]
            base = baselinehd_macs(vgg, 27, dim=dim, num_classes=5)["total"]
            return 1.0 - nshd / base
        assert saving(10_000) > saving(3_000)
