"""Tests for feature encoders and the HD decode path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hd import (IDLevelEncoder, LSHEncoder, NonlinearEncoder,
                      RandomProjectionEncoder)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestRandomProjection:
    def test_output_bipolar(self):
        enc = RandomProjectionEncoder(10, 64, rng())
        out = enc.encode(rng(1).normal(size=(5, 10)))
        assert out.shape == (5, 64)
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_matches_paper_formula(self):
        """Encoding equals sign(Σ_f V_f ⊗ P_f)."""
        enc = RandomProjectionEncoder(4, 32, rng(2))
        v = rng(3).normal(size=4)
        manual = np.sign(sum(v[f] * enc.projection[f] for f in range(4)))
        manual[manual == 0] = 1.0
        np.testing.assert_allclose(enc.encode(v)[0], manual)

    def test_similar_inputs_similar_codes(self):
        enc = RandomProjectionEncoder(50, 4096, rng(4))
        base = rng(5).normal(size=50)
        near = base + rng(6).normal(scale=0.01, size=50)
        far = rng(7).normal(size=50)
        h_base, h_near, h_far = enc.encode(np.stack([base, near, far]))
        assert np.dot(h_base, h_near) > np.dot(h_base, h_far)

    def test_feature_count_validation(self):
        enc = RandomProjectionEncoder(10, 64)
        with pytest.raises(ValueError):
            enc.encode(np.zeros((2, 11)))

    def test_raw_encoding_no_sign(self):
        enc = RandomProjectionEncoder(5, 16, rng(8), quantize=False)
        v = rng(9).normal(size=(3, 5))
        np.testing.assert_allclose(enc.encode(v), v @ enc.projection)

    def test_encode_raw_equals_prequantize(self):
        enc = RandomProjectionEncoder(5, 16, rng(10))
        v = rng(11).normal(size=(2, 5))
        raw = enc.encode_raw(v)
        np.testing.assert_allclose(np.where(raw >= 0, 1.0, -1.0),
                                   enc.encode(v))

    def test_decode_recovers_features(self):
        """P Pᵀ ≈ D·I ⇒ decode(encode_raw(v)) ≈ v (paper Sec. V-C)."""
        enc = RandomProjectionEncoder(20, 20000, rng(12))
        v = rng(13).normal(size=(3, 20))
        recovered = enc.decode(enc.encode_raw(v))
        np.testing.assert_allclose(recovered, v, atol=0.2)

    def test_decode_shape_single(self):
        enc = RandomProjectionEncoder(6, 128, rng(14))
        assert enc.decode(np.ones(128)).shape == (1, 6)

    def test_macs_per_sample(self):
        enc = RandomProjectionEncoder(100, 3000)
        assert enc.macs_per_sample() == 300_000
        assert enc.parameter_count() == 300_000

    def test_deterministic_given_rng(self):
        a = RandomProjectionEncoder(8, 32, rng(42))
        b = RandomProjectionEncoder(8, 32, rng(42))
        np.testing.assert_allclose(a.projection, b.projection)

    @given(st.integers(min_value=1, max_value=16),
           st.integers(min_value=8, max_value=128),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_property_scale_invariance(self, features, dim, seed):
        """sign(cV @ P) == sign(V @ P) for c>0: encoding is scale-free."""
        g = np.random.default_rng(seed)
        enc = RandomProjectionEncoder(features, dim, g)
        v = g.normal(size=(2, features)) + 0.1
        np.testing.assert_allclose(enc.encode(v), enc.encode(3.7 * v))


class TestNonlinearEncoder:
    def test_output_range_soft(self):
        enc = NonlinearEncoder(10, 128, rng(15))
        out = enc.encode(rng(16).normal(size=(4, 10)))
        assert np.all(np.abs(out) <= 1.0)

    def test_quantized_output_bipolar(self):
        enc = NonlinearEncoder(10, 128, rng(17), quantize=True)
        out = enc.encode(rng(18).normal(size=(4, 10)))
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_locality(self):
        enc = NonlinearEncoder(30, 4096, rng(19), bandwidth=0.5)
        base = rng(20).normal(size=30)
        near = base + 0.01 * rng(21).normal(size=30)
        far = base + 3.0 * rng(22).normal(size=30)
        h = enc.encode(np.stack([base, near, far]))
        assert np.dot(h[0], h[1]) > np.dot(h[0], h[2])

    def test_macs(self):
        assert NonlinearEncoder(10, 100).macs_per_sample() == 1000


class TestIDLevelEncoder:
    def test_quantization_bounds(self):
        enc = IDLevelEncoder(4, 64, levels=8, value_range=(0, 1), rng=rng(23))
        indices = enc.quantize_values(np.array([[-5.0, 0.0, 0.999, 5.0]]))
        np.testing.assert_array_equal(indices, [[0, 0, 7, 7]])

    def test_level_hvs_correlated_by_distance(self):
        enc = IDLevelEncoder(4, 4096, levels=16, rng=rng(24))
        lv = enc.level_memory
        near = np.dot(lv[0], lv[1])
        far = np.dot(lv[0], lv[15])
        assert near > far

    def test_encode_bipolar(self):
        enc = IDLevelEncoder(6, 128, levels=4, rng=rng(25))
        out = enc.encode(rng(26).uniform(size=(3, 6)))
        assert out.shape == (3, 128)
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_levels_validation(self):
        with pytest.raises(ValueError):
            IDLevelEncoder(4, 64, levels=1)

    def test_range_validation(self):
        with pytest.raises(ValueError):
            IDLevelEncoder(4, 64, value_range=(1.0, 0.0))


class TestLSHEncoder:
    def test_output_bipolar_and_shape(self):
        enc = LSHEncoder(100, 20, rng(27))
        out = enc.encode(rng(28).normal(size=(7, 100)))
        assert out.shape == (7, 20)
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_preserves_angular_locality(self):
        enc = LSHEncoder(50, 2048, rng(29))
        base = rng(30).normal(size=50)
        near = base + 0.05 * rng(31).normal(size=50)
        far = rng(32).normal(size=50)
        h = enc.encode(np.stack([base, near, far]))
        assert np.dot(h[0], h[1]) > np.dot(h[0], h[2])

    def test_macs(self):
        assert LSHEncoder(50, 100).macs_per_sample() == 5000
