"""End-to-end integration tests: the three systems on a tiny real task.

These use a small CNN trained for a couple of epochs so they stay
CPU-cheap; the benchmarks exercise the full-scale configuration.
"""

import numpy as np
import pytest

from repro.data import make_dataset, normalize_images
from repro.learn import NSHD, BaselineHD, FeatureScaler, VanillaHD
from repro.models import create_model, train_cnn


@pytest.fixture(scope="module")
def setup():
    """Tiny dataset + briefly-trained CNN shared by the integration tests."""
    x_tr, y_tr, x_te, y_te = make_dataset(num_classes=5, num_train=150,
                                          num_test=75, seed=11)
    x_tr, mean, std = normalize_images(x_tr)
    x_te, _, _ = normalize_images(x_te, mean, std)
    model = create_model("vgg16", num_classes=5, width_mult=0.125, seed=2)
    train_cnn(model, x_tr, y_tr, epochs=4, batch_size=32, lr=2e-3, seed=2,
              augment=False)
    return model, x_tr, y_tr, x_te, y_te


class TestFeatureScaler:
    def test_fit_transform(self):
        rng = np.random.default_rng(0)
        feats = rng.normal(3.0, 2.0, size=(100, 7))
        scaler = FeatureScaler().fit(feats)
        out = scaler.transform(feats)
        np.testing.assert_allclose(out.mean(axis=0), np.zeros(7), atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), np.ones(7), rtol=1e-10)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            FeatureScaler().transform(np.zeros((2, 3)))

    def test_partially_constant_feature_safe(self):
        rng = np.random.default_rng(1)
        feats = np.column_stack([np.ones(10), rng.normal(size=10)])
        out = FeatureScaler().fit(feats).transform(feats)
        assert np.all(np.isfinite(out))

    def test_all_constant_features_raise(self):
        with pytest.raises(ValueError, match="FeatureScaler"):
            FeatureScaler().fit(np.ones((10, 2)))

    def test_fit_transform_convenience(self):
        rng = np.random.default_rng(2)
        feats = rng.normal(size=(20, 3))
        scaler = FeatureScaler()
        out = scaler.fit_transform(feats)
        np.testing.assert_array_equal(out, scaler.transform(feats))


class TestNSHDIntegration:
    def test_fit_and_predict(self, setup):
        model, x_tr, y_tr, x_te, y_te = setup
        nshd = NSHD(model, layer_index=21, dim=500, reduced_features=16,
                    seed=0)
        history = nshd.fit(x_tr, y_tr, epochs=6)
        assert len(history["train_acc"]) == 6
        preds = nshd.predict(x_te)
        assert preds.shape == (len(x_te),)
        assert nshd.accuracy(x_te, y_te) > 0.3  # far above 0.2 chance

    def test_tracks_teacher_quality(self, setup):
        """NSHD at a late layer should be within reach of the CNN."""
        model, x_tr, y_tr, x_te, y_te = setup
        cnn_acc = model.accuracy(x_te, y_te)
        nshd = NSHD(model, layer_index=27, dim=500, reduced_features=16,
                    seed=0)
        nshd.fit(x_tr, y_tr, epochs=8)
        assert nshd.accuracy(x_te, y_te) >= cnn_acc - 0.15

    def test_ablation_switches(self, setup):
        model, x_tr, y_tr, _, _ = setup
        plain = NSHD(model, layer_index=21, dim=400, reduced_features=16,
                     use_manifold=False, use_distillation=False, seed=0)
        assert plain.manifold is None
        assert plain.encoder.in_features == plain.extractor.num_features
        plain.fit(x_tr, y_tr, epochs=2)

    def test_query_hypervectors_bipolar(self, setup):
        model, x_tr, y_tr, x_te, _ = setup
        nshd = NSHD(model, layer_index=21, dim=400, reduced_features=16,
                    seed=0)
        nshd.fit(x_tr, y_tr, epochs=2)
        hvs = nshd.encode(x_te[:5])
        assert hvs.shape == (5, 400)
        assert set(np.unique(hvs)) <= {-1.0, 1.0}

    def test_deterministic_given_seed(self, setup):
        model, x_tr, y_tr, x_te, _ = setup
        runs = []
        for _ in range(2):
            nshd = NSHD(model, layer_index=21, dim=400, reduced_features=16,
                        seed=9)
            nshd.fit(x_tr, y_tr, epochs=3)
            runs.append(nshd.predict(x_te))
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_distillation_uses_teacher(self, setup):
        """With and without KD must differ (the teacher term is active)."""
        model, x_tr, y_tr, x_te, _ = setup
        kd = NSHD(model, layer_index=21, dim=400, reduced_features=16,
                  alpha=0.7, seed=0)
        kd.fit(x_tr, y_tr, epochs=3)
        nokd = NSHD(model, layer_index=21, dim=400, reduced_features=16,
                    use_distillation=False, seed=0)
        nokd.fit(x_tr, y_tr, epochs=3)
        assert not np.allclose(kd.trainer.class_matrix,
                               nokd.trainer.class_matrix)


class TestBaselineHDIntegration:
    def test_fit_and_predict(self, setup):
        model, x_tr, y_tr, x_te, y_te = setup
        baseline = BaselineHD(model, layer_index=21, dim=500, seed=0)
        baseline.fit(x_tr, y_tr, epochs=6)
        assert baseline.accuracy(x_te, y_te) > 0.3

    def test_uses_full_feature_projection(self, setup):
        model, _, _, _, _ = setup
        baseline = BaselineHD(model, layer_index=21, dim=400, seed=0)
        assert baseline.encoder.in_features == \
            baseline.extractor.num_features


class TestVanillaHDIntegration:
    def test_fit_and_predict(self, setup):
        _, x_tr, y_tr, x_te, y_te = setup
        vanilla = VanillaHD(num_classes=5, dim=500, seed=0)
        vanilla.fit(x_tr, y_tr, epochs=6)
        acc = vanilla.accuracy(x_te, y_te)
        assert 0.0 <= acc <= 1.0

    def test_vanilla_below_nshd(self, setup):
        """The paper's headline ordering on image data (Fig. 7)."""
        model, x_tr, y_tr, x_te, y_te = setup
        vanilla = VanillaHD(num_classes=5, dim=500, seed=0)
        vanilla.fit(x_tr, y_tr, epochs=6)
        nshd = NSHD(model, layer_index=27, dim=500, reduced_features=16,
                    seed=0)
        nshd.fit(x_tr, y_tr, epochs=6)
        assert nshd.accuracy(x_te, y_te) > vanilla.accuracy(x_te, y_te)
