"""Sparkline trend rendering: report sparklines, ledger trends,
per-epoch HD diagnostics sections."""

import math

import numpy as np
import pytest

from repro.telemetry import (DiagnosticsCallback, MetricsRegistry, RunLedger,
                             RunRecord, Tracer, diagnostics_section,
                             render_report, sparkline, trend_section)


def _record(i, pipeline="NSHD", **kwargs):
    defaults = dict(
        pipeline=pipeline,
        config={"dim": 128},
        seed=0,
        wall_s=10.0 + i,
        stage_times={"extract": 1.0 + 0.25 * i, "encode": 0.5},
        stage_calls={"extract": 3, "encode": 3},
        final_accuracy=0.80 + 0.01 * i,
        test_accuracy=0.75,
        git={"sha": "deadbeef", "short_sha": "deadbeef"},
        env={"python": "3"},
    )
    defaults.update(kwargs)
    return RunRecord(**defaults)


class TestSparkline:
    def test_monotone_ramp_uses_full_glyph_range(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert line == "▁▂▃▄▅▆▇█"

    def test_constant_series_is_flat_mid_height(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▅▅▅"

    def test_empty_series(self):
        assert sparkline([]) == ""

    def test_single_point(self):
        assert len(sparkline([3.14])) == 1

    def test_nan_renders_as_gap_without_poisoning_scale(self):
        line = sparkline([1.0, float("nan"), 3.0])
        assert line == "▁·█"

    def test_all_nan(self):
        assert sparkline([float("nan")] * 4) == "····"

    def test_inf_is_a_gap(self):
        line = sparkline([1.0, float("inf"), 2.0])
        assert line[1] == "·"

    def test_width_keeps_newest_points(self):
        # Oldest half descends, newest half ascends: the window must
        # show the ascent only.
        values = list(range(10, 0, -1)) + list(range(10))
        line = sparkline(values, width=10)
        assert len(line) == 10
        assert line == sparkline(list(range(10)))

    def test_width_larger_than_series_is_noop(self):
        assert sparkline([1, 2], width=100) == sparkline([1, 2])

    def test_extremes_map_to_extreme_glyphs(self):
        line = sparkline([0.0, 100.0])
        assert line[0] == "▁" and line[-1] == "█"


class TestTrendSection:
    def test_empty_ledger_returns_none(self, tmp_path):
        assert trend_section(RunLedger(str(tmp_path))) is None

    def test_stage_and_metric_rows(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        for i in range(5):
            ledger.append(_record(i))
        table = trend_section(ledger, pipeline="NSHD")
        assert "stage.extract" in table
        assert "stage.encode" in table
        assert "final_accuracy" in table
        assert "wall_s" in table
        # no manifold/similarity rows: those series are empty
        assert "stage.manifold" not in table
        # glyphs present
        assert any(g in table for g in "▁▂▃▄▅▆▇█")

    def test_delta_is_last_minus_previous(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        for i in range(3):
            ledger.append(_record(i))
        table = trend_section(ledger)
        extract_row = next(line for line in table.splitlines()
                           if "stage.extract" in line)
        assert "0.2500" in extract_row

    def test_pipeline_filter(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        ledger.append(_record(0, pipeline="NSHD"))
        ledger.append(_record(1, pipeline="VanillaHD"))
        table = trend_section(ledger, pipeline="VanillaHD")
        row = next(line for line in table.splitlines()
                   if "stage.extract" in line)
        cells = [cell.strip() for cell in row.split("|")]
        # only the VanillaHD run counts toward the series
        assert cells[2] == "1"

    def test_single_run_has_nan_delta(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        ledger.append(_record(0))
        table = trend_section(ledger)
        assert table is not None  # single-point series still render


class TestDiagnosticsSection:
    @staticmethod
    def _summary(epochs=4):
        return {"per_epoch": [
            {"epoch": e,
             "drift": {"total": 8.0 / (e + 1), "relative": 0.5 / (e + 1)},
             "saturation_fraction": 0.02 * e,
             "confusability": {"off_diag_max": 0.4 - 0.05 * e},
             "margin": {},
             "train_acc": 0.6 + 0.1 * e}
            for e in range(epochs)]}

    def test_empty_returns_none(self):
        assert diagnostics_section({}) is None
        assert diagnostics_section({"per_epoch": []}) is None

    def test_all_signals_render(self):
        table = diagnostics_section(self._summary())
        for signal in ("drift.total", "drift.relative",
                       "saturation_fraction", "confusability.max",
                       "train_acc"):
            assert signal in table
        assert any(g in table for g in "▁▂▃▄▅▆▇█")

    def test_missing_train_acc_drops_row(self):
        summary = self._summary()
        for record in summary["per_epoch"]:
            del record["train_acc"]
        table = diagnostics_section(summary)
        assert "train_acc" not in table
        assert "drift.total" in table

    def test_malformed_records_do_not_raise(self):
        summary = {"per_epoch": [{"epoch": 0}, {"epoch": 1,
                                                "drift": "garbage"}]}
        assert diagnostics_section(summary) is None

    def test_real_callback_summary_renders(self):
        class FakeTrainer:
            class_matrix = np.zeros((3, 16))

        trainer = FakeTrainer()
        registry = MetricsRegistry()
        diag = DiagnosticsCallback(trainer, registry=registry)
        diag.on_fit_start(trainer, total_epochs=2)
        rng = np.random.default_rng(0)
        for epoch in range(2):
            trainer.class_matrix = rng.standard_normal((3, 16))
            diag.on_epoch_end(epoch, {"train_acc": 0.5 + 0.1 * epoch})
        diag.on_fit_end({})
        table = diagnostics_section(diag.summary())
        assert "drift.total" in table and "train_acc" in table


class TestRenderReportWiring:
    def test_sections_present_when_sources_given(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        for i in range(3):
            ledger.append(_record(i))
        report = render_report(
            registry=MetricsRegistry(), tracer=Tracer(),
            ledger=ledger, pipeline="NSHD",
            diagnostics=TestDiagnosticsSection._summary())
        assert "## Ledger trends" in report
        assert "## HD diagnostics (per-epoch)" in report

    def test_sections_absent_by_default(self):
        report = render_report(registry=MetricsRegistry(), tracer=Tracer())
        assert "Ledger trends" not in report
        assert "HD diagnostics" not in report

    def test_empty_sources_are_omitted_not_rendered_empty(self, tmp_path):
        report = render_report(
            registry=MetricsRegistry(), tracer=Tracer(),
            ledger=RunLedger(str(tmp_path / "missing")),
            diagnostics={"per_epoch": []})
        assert "Ledger trends" not in report
        assert "HD diagnostics" not in report

    def test_config_fingerprint_filter(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        ledger.append(_record(0, config={"dim": 128}))
        ledger.append(_record(1, config={"dim": 999}))
        fp = ledger.records()[0].config_fingerprint
        report = render_report(registry=MetricsRegistry(), tracer=Tracer(),
                               ledger=ledger, config_fingerprint=fp)
        assert "## Ledger trends" in report
