"""Tests for Module mechanics, layers, optimizers, serialization."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn import functional as F


def make_mlp(rng=None):
    rng = rng or np.random.default_rng(0)
    return nn.Sequential(
        nn.Linear(4, 8, rng=rng),
        nn.ReLU(),
        nn.Linear(8, 3, rng=rng),
    )


class TestModuleMechanics:
    def test_parameter_discovery(self):
        mlp = make_mlp()
        names = [n for n, _ in mlp.named_parameters()]
        assert "0.weight" in names and "2.bias" in names
        assert len(names) == 4

    def test_num_parameters(self):
        mlp = make_mlp()
        assert mlp.num_parameters() == 4 * 8 + 8 + 8 * 3 + 3

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Dropout(0.5), nn.BatchNorm2d(3))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        mlp = make_mlp()
        out = mlp(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert all(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())

    def test_sequential_slicing(self):
        mlp = make_mlp()
        head = mlp[:2]
        assert isinstance(head, nn.Sequential)
        assert len(head) == 2
        out = head(Tensor(np.ones((1, 4))))
        assert out.shape == (1, 8)

    def test_state_dict_roundtrip(self, tmp_path):
        mlp = make_mlp(np.random.default_rng(1))
        other = make_mlp(np.random.default_rng(2))
        path = str(tmp_path / "mlp.npz")
        nn.save_module(mlp, path)
        nn.load_module(other, path)
        x = Tensor(np.random.default_rng(3).normal(size=(2, 4)))
        np.testing.assert_allclose(mlp(x).data, other(x).data)

    def test_state_dict_includes_buffers(self):
        bn = nn.BatchNorm2d(2)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_load_state_dict_shape_guard(self):
        a = nn.Linear(4, 3)
        b = nn.Linear(4, 5)
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict() | {
                "weight": a.weight.data, "bias": np.zeros(5)})

    def test_load_state_dict_missing_key(self):
        lin = nn.Linear(2, 2)
        with pytest.raises(KeyError):
            lin.load_state_dict({"weight": np.zeros((2, 2))})

    def test_buffer_mutation_shared_after_load(self):
        bn = nn.BatchNorm2d(2)
        bn2 = nn.BatchNorm2d(2)
        bn.running_mean[:] = [1.0, 2.0]
        bn2.load_state_dict(bn.state_dict())
        np.testing.assert_allclose(bn2.running_mean, [1.0, 2.0])


class TestLayers:
    def test_conv_layer_shapes(self):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1)
        out = conv(Tensor(np.zeros((2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_depthwise_layer(self):
        conv = nn.DepthwiseConv2d(6, 3, padding=1)
        out = conv(Tensor(np.zeros((1, 6, 4, 4))))
        assert out.shape == (1, 6, 4, 4)
        assert conv.weight.shape == (6, 1, 3, 3)

    def test_linear_shapes(self):
        lin = nn.Linear(10, 5)
        assert lin(Tensor(np.zeros((7, 10)))).shape == (7, 5)

    def test_batchnorm_updates_buffers_in_training(self):
        bn = nn.BatchNorm2d(2, momentum=1.0)
        x = np.random.default_rng(4).normal(3.0, 1.0, size=(8, 2, 4, 4))
        bn(Tensor(x))
        np.testing.assert_allclose(bn.running_mean, x.mean(axis=(0, 2, 3)),
                                   rtol=1e-10)

    def test_batchnorm_eval_stable(self):
        bn = nn.BatchNorm2d(2)
        bn.eval()
        before = bn.running_mean.copy()
        bn(Tensor(np.random.default_rng(5).normal(size=(4, 2, 3, 3))))
        np.testing.assert_allclose(bn.running_mean, before)

    def test_identity_and_flatten(self):
        x = Tensor(np.zeros((2, 3, 4, 4)))
        assert nn.Identity()(x) is x
        assert nn.Flatten()(x).shape == (2, 48)

    def test_pool_layers(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        assert nn.MaxPool2d(2)(x).shape == (1, 1, 2, 2)
        assert nn.AvgPool2d(2)(x).shape == (1, 1, 2, 2)
        assert nn.AdaptiveAvgPool2d()(x).shape == (1, 1, 1, 1)

    def test_activation_layers(self):
        x = Tensor(np.array([-7.0, 7.0]))
        np.testing.assert_allclose(nn.ReLU()(x).data, [0.0, 7.0])
        np.testing.assert_allclose(nn.ReLU6()(x).data, [0.0, 6.0])
        np.testing.assert_allclose(nn.Sigmoid()(x).data,
                                   1 / (1 + np.exp(-x.data)))
        np.testing.assert_allclose(nn.SiLU()(x).data,
                                   x.data / (1 + np.exp(-x.data)))


class TestOptimizers:
    def quadratic_loss(self, param):
        return ((param - Tensor(np.array([1.0, -2.0]))) ** 2).sum()

    def test_sgd_converges_on_quadratic(self):
        p = nn.Parameter(np.zeros(2))
        opt = nn.SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            self.quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [1.0, -2.0], atol=1e-4)

    def test_sgd_momentum_faster_than_plain(self):
        def run(momentum):
            p = nn.Parameter(np.zeros(2))
            opt = nn.SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                self.quadratic_loss(p).backward()
                opt.step()
            return float(self.quadratic_loss(p).item())
        assert run(0.9) < run(0.0)

    def test_sgd_weight_decay_shrinks(self):
        p = nn.Parameter(np.array([10.0]))
        opt = nn.SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (p * 0).sum().backward()
        opt.step()
        assert abs(p.data[0]) < 10.0

    def test_adam_converges(self):
        p = nn.Parameter(np.zeros(2))
        opt = nn.Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            self.quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [1.0, -2.0], atol=1e-3)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_step_lr_schedule(self):
        p = nn.Parameter(np.zeros(1))
        opt = nn.SGD([p], lr=1.0)
        sched = nn.StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == pytest.approx(1.0)
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_cosine_lr_endpoints(self):
        p = nn.Parameter(np.zeros(1))
        opt = nn.SGD([p], lr=2.0)
        sched = nn.CosineLR(opt, total_epochs=10)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-12)

    def test_training_loop_learns_xor_features(self):
        # End-to-end sanity: a small MLP fits a linearly-inseparable task.
        rng = np.random.default_rng(6)
        x = rng.uniform(-1, 1, size=(256, 2))
        labels = ((x[:, 0] * x[:, 1]) > 0).astype(int)
        model = nn.Sequential(nn.Linear(2, 16, rng=rng), nn.ReLU(),
                              nn.Linear(16, 2, rng=rng))
        opt = nn.Adam(model.parameters(), lr=0.05)
        for _ in range(150):
            opt.zero_grad()
            loss = F.cross_entropy(model(Tensor(x)), labels)
            loss.backward()
            opt.step()
        preds = model(Tensor(x)).argmax(axis=1)
        assert (preds == labels).mean() > 0.95
