"""Hypothesis properties for the serving fast path.

The load-bearing claim of the packed path is *exactness*, not
approximation: for bipolar operands the XOR-popcount kernel computes the
same integer dot products as float arithmetic, so rankings (and
therefore predictions) agree bit-for-bit.  These properties pin that
claim across random dimensions, class counts and seeds.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hd import (classify, pack_bipolar, packed_classify,
                      packed_hamming_similarity)
from repro.serve import InferenceEngine, MicroBatcher
from repro.utils.rng import fresh_rng

from .conftest import _synthetic_bundle


def random_bipolar(rng, shape):
    return np.where(rng.random(shape) < 0.5, -1.0, 1.0)


class TestPackedKernelProperties:
    @given(st.integers(min_value=0, max_value=2 ** 31 - 1),
           st.integers(min_value=1, max_value=200),
           st.integers(min_value=2, max_value=12),
           st.integers(min_value=1, max_value=24))
    @settings(max_examples=40, deadline=None)
    def test_property_packed_ranks_like_float_dot(self, seed, dim,
                                                  classes, queries):
        """argmax over XOR-popcount == argmax over float dot, always.

        ``dim`` deliberately sweeps through non-multiples of 64 so the
        tail-word masking is exercised, and ties (likely at tiny dims)
        must break to the same class index on both paths.
        """
        rng = fresh_rng((seed, "packed-rank"))
        class_matrix = random_bipolar(rng, (classes, dim))
        hvs = random_bipolar(rng, (queries, dim))
        got = packed_classify(pack_bipolar(class_matrix),
                              pack_bipolar(hvs), dim)
        want = classify(class_matrix, hvs, metric="dot")
        np.testing.assert_array_equal(got, want)

    @given(st.integers(min_value=0, max_value=2 ** 31 - 1),
           st.integers(min_value=1, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_property_hamming_recovers_exact_dot(self, seed, dim):
        """δ_ham = 1 - h/D implies dot = D(2δ_ham - 1) exactly."""
        rng = fresh_rng((seed, "packed-dot"))
        a = random_bipolar(rng, (3, dim))
        b = random_bipolar(rng, (5, dim))
        sims = packed_hamming_similarity(pack_bipolar(a), pack_bipolar(b),
                                         dim)
        dots = dim * (2.0 * sims - 1.0)  # (queries, classes) orientation
        np.testing.assert_allclose(dots, b @ a.T, atol=1e-9)

    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_property_engine_paths_agree(self, seed):
        """Packed and float engines over one bundle never disagree."""
        bundle = _synthetic_bundle(dim=257, features=12, classes=5,
                                   seed=seed)
        packed = InferenceEngine(bundle, cache_size=0, selfcheck=False)
        floating = InferenceEngine(bundle, use_packed=False, cache_size=0)
        rng = fresh_rng((seed, "engine-prop"))
        features = rng.standard_normal((32, 12))
        np.testing.assert_array_equal(packed.predict_features(features),
                                      floating.predict_features(features))


class TestBatcherProperties:
    @given(st.integers(min_value=0, max_value=2 ** 31 - 1),
           st.integers(min_value=1, max_value=40),
           st.integers(min_value=1, max_value=16))
    @settings(max_examples=15, deadline=None)
    def test_property_batching_is_transparent(self, seed, n, batch):
        """Whatever the coalescing schedule, labels match the direct
        call — batching must be semantically invisible."""
        rng = fresh_rng((seed, "batcher-prop"))
        features = rng.standard_normal((n, 6))

        def predict(rows):
            return np.asarray(rows).argmax(axis=1)

        with MicroBatcher(predict, max_batch_size=batch,
                          max_latency_ms=1.0, workers=2) as batcher:
            labels = batcher.submit_all(features)
        np.testing.assert_array_equal(labels, predict(features))
