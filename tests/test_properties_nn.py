"""Hypothesis property tests for the nn substrate's structural invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn import Tensor
from repro.nn import functional as F


class TestConvShapes:
    @given(st.integers(min_value=3, max_value=12),
           st.integers(min_value=1, max_value=3),
           st.integers(min_value=1, max_value=2),
           st.integers(min_value=0, max_value=2))
    @settings(max_examples=20, deadline=None)
    def test_property_conv_output_formula(self, size, kernel, stride,
                                          padding):
        if size + 2 * padding < kernel:
            return
        conv = nn.Conv2d(2, 3, kernel, stride=stride, padding=padding,
                         rng=np.random.default_rng(0))
        out = conv(Tensor(np.zeros((1, 2, size, size))))
        expected = F.conv_output_size(size, kernel, stride, padding)
        assert out.shape == (1, 3, expected, expected)

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_property_depthwise_preserves_channels(self, channels):
        conv = nn.DepthwiseConv2d(channels, 3, padding=1,
                                  rng=np.random.default_rng(0))
        out = conv(Tensor(np.zeros((1, channels, 4, 4))))
        assert out.shape[1] == channels


class TestLinearityProperties:
    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_property_conv_is_linear(self, seed):
        """conv(a x + b y) == a conv(x) + b conv(y) (no bias)."""
        rng = np.random.default_rng(seed)
        conv = nn.Conv2d(2, 2, 3, padding=1, bias=False, rng=rng)
        x = rng.normal(size=(1, 2, 5, 5))
        y = rng.normal(size=(1, 2, 5, 5))
        a, b = rng.normal(size=2)
        left = conv(Tensor(a * x + b * y)).data
        right = a * conv(Tensor(x)).data + b * conv(Tensor(y)).data
        np.testing.assert_allclose(left, right, rtol=1e-9, atol=1e-9)

    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_property_linear_is_affine(self, seed):
        rng = np.random.default_rng(seed)
        lin = nn.Linear(4, 3, rng=rng)
        x = rng.normal(size=(2, 4))
        shift = rng.normal(size=(2, 4))
        delta = lin(Tensor(x + shift)).data - lin(Tensor(x)).data
        np.testing.assert_allclose(delta, shift @ lin.weight.data.T,
                                   rtol=1e-9, atol=1e-9)


class TestSerializationProperties:
    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_property_state_dict_roundtrip_exact(self, seed):
        rng = np.random.default_rng(seed)
        model = nn.Sequential(nn.Conv2d(1, 2, 3, rng=rng),
                              nn.BatchNorm2d(2), nn.ReLU(), nn.Flatten(),
                              nn.Linear(2 * 4, 3, rng=rng))
        clone = nn.Sequential(nn.Conv2d(1, 2, 3),
                              nn.BatchNorm2d(2), nn.ReLU(), nn.Flatten(),
                              nn.Linear(2 * 4, 3))
        clone.load_state_dict(model.state_dict())
        model.eval()
        clone.eval()
        x = Tensor(rng.normal(size=(1, 1, 4, 4)))
        np.testing.assert_allclose(model(x).data, clone(x).data)


class TestTraceProperties:
    def test_trace_is_reentrant(self):
        conv = nn.Conv2d(1, 1, 3, rng=np.random.default_rng(0))
        with nn.trace() as outer:
            conv(Tensor(np.zeros((1, 1, 4, 4))))
            with nn.trace() as inner:
                conv(Tensor(np.zeros((1, 1, 4, 4))))
        # Inner trace captures only its own call; outer only its own.
        assert len(inner) == 1
        assert len(outer) == 1

    def test_trace_only_leaf_modules(self):
        model = nn.Sequential(nn.Conv2d(1, 2, 3, rng=np.random.default_rng(0)),
                              nn.ReLU())
        with nn.trace() as records:
            model(Tensor(np.zeros((1, 1, 5, 5))))
        kinds = [type(r.module).__name__ for r in records]
        assert "Sequential" not in kinds
        assert kinds == ["Conv2d", "ReLU"]

    def test_no_trace_overhead_outside_context(self):
        conv = nn.Conv2d(1, 1, 3, rng=np.random.default_rng(0))
        conv(Tensor(np.zeros((1, 1, 4, 4))))  # must not raise or record
