"""Tests for the manifold learner and its HD error-decoding training."""

import numpy as np
import pytest

from repro.hd import RandomProjectionEncoder
from repro.learn import ManifoldLearner, MassTrainer
from repro.learn.mass import normalized_similarity


def rng(seed=0):
    return np.random.default_rng(seed)


class TestConstruction:
    def test_pooled_feature_count(self):
        learner = ManifoldLearner((8, 4, 4), out_features=10, rng=rng())
        assert learner.pooled_features == 8 * 2 * 2
        assert learner.in_features == 8 * 4 * 4

    def test_skips_pooling_on_tiny_maps(self):
        learner = ManifoldLearner((16, 1, 1), out_features=8, rng=rng())
        assert not learner.pooling
        assert learner.pooled_features == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            ManifoldLearner((8, 4), out_features=10)
        with pytest.raises(ValueError):
            ManifoldLearner((8, 4, 4), out_features=0)

    def test_parameter_count(self):
        learner = ManifoldLearner((4, 4, 4), out_features=5, rng=rng())
        assert learner.parameter_count() == 16 * 5 + 5

    def test_macs_per_sample(self):
        learner = ManifoldLearner((4, 4, 4), out_features=5, rng=rng())
        assert learner.macs_per_sample() == 16 * 5


class TestForward:
    def test_output_shape(self):
        learner = ManifoldLearner((4, 4, 4), out_features=7, rng=rng())
        out = learner.transform(rng(1).normal(size=(3, 64)))
        assert out.shape == (3, 7)

    def test_input_validation(self):
        learner = ManifoldLearner((4, 4, 4), out_features=7, rng=rng())
        with pytest.raises(ValueError):
            learner.transform(np.zeros((2, 65)))

    def test_maxpool_applied(self):
        learner = ManifoldLearner((1, 2, 2), out_features=1, rng=rng())
        learner.fc.weight.data = np.ones((1, 1))
        learner.fc.bias.data = np.zeros(1)
        out = learner.transform(np.array([[1.0, 5.0, 2.0, 3.0]]))
        assert out[0, 0] == pytest.approx(5.0)  # max of the 2x2 window

    def test_tensor_and_numpy_paths_agree(self):
        learner = ManifoldLearner((4, 4, 4), out_features=6, rng=rng(2))
        feats = rng(3).normal(size=(2, 64))
        np.testing.assert_allclose(learner.transform(feats),
                                   learner.forward_tensor(feats).data)


class TestPCAInit:
    def test_outputs_become_decorrelated(self):
        learner = ManifoldLearner((4, 4, 4), out_features=4, rng=rng(4))
        feats = rng(5).normal(size=(200, 64))
        learner.init_pca(feats)
        out = learner.transform(feats)
        cov = np.cov(out.T)
        off_diag = cov - np.diag(np.diag(cov))
        assert np.abs(off_diag).max() < 0.15
        np.testing.assert_allclose(np.diag(cov), np.ones(4), rtol=0.2)

    def test_information_preserving_when_full_rank(self):
        """With F̂ == pooled dim, the PCA init is invertible: the pooled
        features are recoverable from the manifold output (R² ≈ 1)."""
        learner = ManifoldLearner((8, 1, 1), out_features=8, rng=rng(6))
        feats = rng(7).normal(size=(50, 8))
        learner.init_pca(feats)
        out = learner.transform(feats)
        centered = feats - feats.mean(axis=0)
        # Least-squares reconstruction of the input from the output.
        coeffs, *_ = np.linalg.lstsq(out, centered, rcond=None)
        residual = centered - out @ coeffs
        r2 = 1.0 - (residual ** 2).sum() / (centered ** 2).sum()
        assert r2 > 0.99

    def test_more_components_than_rank_is_safe(self):
        learner = ManifoldLearner((2, 2, 2), out_features=8, rng=rng(8))
        feats = rng(9).normal(size=(3, 8))  # rank <= 3
        learner.init_pca(feats)
        assert np.all(np.isfinite(learner.fc.weight.data))


class TestErrorDecodingTraining:
    def make_setup(self, seed=0, f_hat=16, dim=1024):
        learner = ManifoldLearner((4, 4, 4), out_features=f_hat,
                                  rng=rng(seed), lr=5e-3)
        encoder = RandomProjectionEncoder(f_hat, dim, rng(seed + 1))
        return learner, encoder

    def test_train_step_returns_finite_loss(self):
        learner, encoder = self.make_setup()
        feats = rng(10).normal(size=(8, 64))
        update = rng(11).normal(size=(8, 3))
        m = rng(12).choice([-1.0, 1.0], size=(3, encoder.dim))
        loss = learner.train_step(feats, update, encoder, m)
        assert np.isfinite(loss)

    def test_train_step_changes_fc(self):
        learner, encoder = self.make_setup()
        before = learner.fc.weight.data.copy()
        feats = rng(13).normal(size=(8, 64))
        update = rng(14).normal(size=(8, 3))
        m = rng(15).choice([-1.0, 1.0], size=(3, encoder.dim))
        learner.train_step(feats, update, encoder, m)
        assert not np.allclose(before, learner.fc.weight.data)

    def test_encoder_size_mismatch_rejected(self):
        learner, _ = self.make_setup(f_hat=16)
        wrong_encoder = RandomProjectionEncoder(8, 512, rng(16))
        with pytest.raises(ValueError):
            learner.train_step(np.zeros((1, 64)), np.zeros((1, 2)),
                               wrong_encoder, np.zeros((2, 512)))

    def test_decode_error_matches_manual_decoding(self):
        learner, encoder = self.make_setup()
        update = rng(17).normal(size=(4, 3))
        hvs = rng(18).choice([-1.0, 1.0], size=(4, encoder.dim))
        decoded = learner.decode_error(update, hvs, encoder, lam=0.5)
        manual = encoder.decode(0.5 * update.T @ hvs)
        np.testing.assert_allclose(decoded, manual)

    def test_training_improves_class_separation(self):
        """The full loop of Sec. V-C: iterating (MASS update, manifold
        step) must improve train accuracy over the PCA-only start."""
        g = rng(20)
        num_classes, f_hat, dim = 3, 8, 1024
        # Features: class structure hidden in a linear subspace + noise.
        protos = g.normal(size=(num_classes, 64)) * 2.0
        labels = np.repeat(np.arange(num_classes), 40)
        feats = protos[labels] + g.normal(size=(len(labels), 64)) * 1.5

        learner = ManifoldLearner((4, 4, 4), out_features=f_hat,
                                  rng=rng(21), lr=1e-2)
        learner.init_pca(feats)
        encoder = RandomProjectionEncoder(f_hat, dim, rng(22))
        trainer = MassTrainer(num_classes, dim, lr=0.05)
        trainer.initialize(encoder.encode(learner.transform(feats)), labels)

        def acc():
            enc = encoder.encode(learner.transform(feats))
            return (normalized_similarity(trainer.class_matrix, enc)
                    .argmax(axis=1) == labels).mean()

        start = acc()
        order = np.arange(len(labels))
        for _ in range(8):
            g.shuffle(order)
            for s in range(0, len(order), 32):
                batch = order[s:s + 32]
                encoded = encoder.encode(learner.transform(feats[batch]))
                trainer.step(encoded, labels[batch])
                update = trainer.compute_update(encoded, labels[batch])
                learner.train_step(feats[batch], update, encoder,
                                   trainer.class_matrix)
        assert acc() >= start
        assert acc() > 0.8
