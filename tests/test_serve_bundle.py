"""Model bundles: export from pipelines, round-trip, verification."""

import numpy as np
import pytest

from repro.data import make_dataset
from repro.learn import VanillaHD
from repro.nn.serialize import save_state
from repro.serve import BUNDLE_VERSION, BundleError, ModelBundle


@pytest.fixture(scope="module")
def fitted_vanilla():
    """Tiny fitted VanillaHD shared by the export tests."""
    x_tr, y_tr, x_te, y_te = make_dataset(num_classes=3, num_train=60,
                                          num_test=30, seed=5)
    pipeline = VanillaHD(num_classes=3, image_size=x_tr.shape[-1],
                         dim=256, seed=5)
    pipeline.fit(x_tr, y_tr, epochs=2)
    return pipeline, x_tr, y_tr, x_te, y_te


class TestExport:
    def test_unfitted_pipeline_raises(self):
        pipeline = VanillaHD(num_classes=3, dim=128, seed=0)
        with pytest.raises(BundleError, match="fitted"):
            ModelBundle.from_pipeline(pipeline)

    def test_export_captures_inference_closure(self, fitted_vanilla):
        pipeline = fitted_vanilla[0]
        bundle = ModelBundle.from_pipeline(pipeline, config={"dim": 256})
        info = bundle.info
        assert info["bundle_version"] == BUNDLE_VERSION
        assert info["pipeline"] == "VanillaHD"
        assert info["dim"] == 256 and info["num_classes"] == 3
        assert info["encoder"]["type"] == "nonlinear"
        assert info["extractor"] is None and info["manifold"] is None
        assert isinstance(info["config_fingerprint"], str)
        assert sorted(bundle.arrays) == info["arrays"]
        for name in ("scaler.mean", "scaler.std", "encoder.basis",
                     "encoder.phase", "classes"):
            assert name in bundle.arrays
        np.testing.assert_array_equal(bundle.class_matrix(),
                                      pipeline.trainer.class_matrix)
        bundle.validate()  # must not raise
        assert bundle.nbytes() > 0
        assert any("VanillaHD" in line for line in bundle.summary())

    def test_binarize_makes_bipolar_classes(self, fitted_vanilla):
        pipeline = fitted_vanilla[0]
        bundle = ModelBundle.from_pipeline(pipeline, binarize=True)
        assert bundle.info["binarized"]
        assert bundle.binary_classes
        assert set(np.unique(bundle.arrays["classes"])) <= {-1.0, 1.0}
        bundle.validate()

    def test_quantize_bits_stores_int_payload(self, fitted_vanilla):
        pipeline = fitted_vanilla[0]
        bundle = ModelBundle.from_pipeline(pipeline, quantize_bits=8)
        assert "classes" not in bundle.arrays
        assert "classes.q" in bundle.arrays and "classes.scale" in \
            bundle.arrays
        reference = np.asarray(pipeline.trainer.class_matrix)
        scale = np.abs(reference).max() / 127.0
        np.testing.assert_allclose(bundle.class_matrix(), reference,
                                   atol=scale)
        bundle.validate()


class TestRoundTrip:
    def test_save_load_bitexact(self, fitted_vanilla, tmp_path):
        pipeline = fitted_vanilla[0]
        bundle = ModelBundle.from_pipeline(pipeline, config={"seed": 5})
        path = str(tmp_path / "bundle.npz")
        bundle.save(path)
        loaded = ModelBundle.load(path)
        assert set(loaded.arrays) == set(bundle.arrays)
        for name, value in bundle.arrays.items():
            np.testing.assert_array_equal(loaded.arrays[name], value)
        assert loaded.info["config_fingerprint"] == \
            bundle.info["config_fingerprint"]
        assert loaded.info["created_at"] == bundle.info["created_at"]

    def test_verify_returns_info(self, fitted_vanilla, tmp_path):
        bundle = ModelBundle.from_pipeline(fitted_vanilla[0])
        path = str(tmp_path / "bundle.npz")
        bundle.save(path)
        info = ModelBundle.verify(path)
        assert info["pipeline"] == "VanillaHD"

    def test_corrupted_archive_rejected(self, fitted_vanilla, tmp_path):
        bundle = ModelBundle.from_pipeline(fitted_vanilla[0])
        path = str(tmp_path / "bundle.npz")
        bundle.save(path)
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        arrays["classes"] = arrays["classes"].copy()
        arrays["classes"].flat[0] += 1.0
        np.savez_compressed(path, **arrays)
        with pytest.raises(BundleError, match="CRC32"):
            ModelBundle.verify(path)

    def test_plain_checkpoint_is_not_a_bundle(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_state({"w": np.ones(4)}, path, meta={"epoch": 1})
        with pytest.raises(BundleError, match="not a model bundle"):
            ModelBundle.load(path)

    def test_future_version_rejected(self, fitted_vanilla, tmp_path):
        bundle = ModelBundle.from_pipeline(fitted_vanilla[0])
        bundle.info["bundle_version"] = BUNDLE_VERSION + 1
        path = str(tmp_path / "bundle.npz")
        bundle.save(path)
        with pytest.raises(BundleError, match="newer schema"):
            ModelBundle.load(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(BundleError):
            ModelBundle.load(str(tmp_path / "missing.npz"))


class TestValidate:
    def test_missing_array_detected(self, synthetic_bundle):
        bundle = synthetic_bundle()
        del bundle.arrays["classes"]
        with pytest.raises(BundleError, match="class-hypervector"):
            bundle.validate()

    def test_shape_mismatch_detected(self, synthetic_bundle):
        bundle = synthetic_bundle(dim=256, features=16)
        bundle.arrays["encoder.projection"] = \
            bundle.arrays["encoder.projection"][:, :100]
        with pytest.raises(BundleError, match="encoder.projection"):
            bundle.validate()

    def test_false_bipolar_claim_detected(self, synthetic_bundle):
        bundle = synthetic_bundle()
        bundle.arrays["classes"] = bundle.arrays["classes"] * 0.5
        with pytest.raises(BundleError, match="not bipolar"):
            bundle.validate()

    def test_unknown_encoder_type_detected(self, synthetic_bundle):
        bundle = synthetic_bundle()
        bundle.info["encoder"] = {"type": "mystery"}
        with pytest.raises(BundleError, match="unknown encoder"):
            bundle.validate()
