"""Request tracing substrate: traceparent, hub, sinks, span trees."""

import json
import threading

import pytest

from repro.telemetry import (FlightRecorder, RequestLog, SpanRecord,
                             TraceContext, TraceJsonlWriter,
                             build_span_tree, get_hub, new_span_id,
                             read_trace_jsonl, request_span,
                             request_tracing_active, sample_trace,
                             stitch_traces, trace_file_for)

HUB = get_hub()


@pytest.fixture
def hub():
    """The process singleton, reset to dormant around each test."""
    HUB.reset()
    yield HUB
    HUB.reset()


@pytest.fixture
def enabled_hub(hub):
    """Hub enabled with a list-capturing span sink and trace sink."""
    spans, roots = [], []
    hub.configure(service="test-svc", enabled=True, sample_rate=1.0)
    hub.add_span_sink(spans.append)
    hub.add_trace_sink(roots.append)
    return hub, spans, roots


class TestTraceContext:
    def test_mint_shape(self):
        ctx = TraceContext.mint()
        assert len(ctx.trace_id) == 32
        assert len(ctx.span_id) == 16
        int(ctx.trace_id, 16), int(ctx.span_id, 16)
        assert ctx.sampled
        assert ctx.trace_id != TraceContext.mint().trace_id

    def test_traceparent_round_trip(self):
        for sampled in (True, False):
            ctx = TraceContext.mint(sampled=sampled)
            header = ctx.to_traceparent()
            assert header.startswith("00-")
            assert header.endswith("-01" if sampled else "-00")
            parsed = TraceContext.parse(header)
            assert parsed == ctx

    def test_parse_accepts_uppercase_and_whitespace(self):
        ctx = TraceContext.mint()
        header = "  " + ctx.to_traceparent().upper() + " "
        assert TraceContext.parse(header) == ctx

    @pytest.mark.parametrize("header", [
        None, "", "garbage",
        "00-abc-def-01",                                    # short ids
        "00-" + "g" * 32 + "-" + "1" * 16 + "-01",          # non-hex
        "ff-" + "1" * 32 + "-" + "2" * 16 + "-01",          # version ff
        "00-" + "0" * 32 + "-" + "2" * 16 + "-01",          # zero trace
        "00-" + "1" * 32 + "-" + "0" * 16 + "-01",          # zero span
        "00-" + "1" * 32 + "-" + "2" * 16,                  # no flags
    ])
    def test_parse_rejects_invalid(self, header):
        assert TraceContext.parse(header) is None

    def test_child_keeps_trace_id(self):
        ctx = TraceContext.mint(sampled=False)
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.span_id != ctx.span_id
        assert child.sampled is False

    def test_new_span_id(self):
        assert len(new_span_id()) == 16
        assert new_span_id() != new_span_id()


class TestSampling:
    def test_edges(self):
        ctx = TraceContext.mint()
        assert sample_trace(ctx.trace_id, 1.0)
        assert not sample_trace(ctx.trace_id, 0.0)

    def test_deterministic(self):
        trace_id = TraceContext.mint().trace_id
        verdicts = {sample_trace(trace_id, 0.5) for _ in range(10)}
        assert len(verdicts) == 1

    def test_rate_roughly_proportional(self):
        ids = [TraceContext.mint().trace_id for _ in range(2000)]
        hit = sum(sample_trace(t, 0.5) for t in ids)
        assert 0.4 < hit / len(ids) < 0.6


class TestHubLifecycle:
    def test_dormant_trace_still_yields_context(self, hub):
        spans = []
        hub.add_span_sink(spans.append)
        with hub.trace("req") as trace:
            assert len(trace.trace_id) == 32
            assert not trace.ctx.sampled
            assert hub.current() is None
        assert spans == []
        assert not request_tracing_active()

    def test_root_and_children_parentage(self, enabled_hub):
        hub, spans, roots = enabled_hub
        with hub.trace("server.request") as trace:
            assert hub.current() is trace.ctx
            assert request_tracing_active()
            with request_span("inner.a"):
                with request_span("inner.b"):
                    pass
        by_name = {s.name: s for s in spans}
        assert set(by_name) == {"server.request", "inner.a", "inner.b"}
        root = by_name["server.request"]
        assert root.parent_id == ""
        assert by_name["inner.a"].parent_id == root.span_id
        assert (by_name["inner.b"].parent_id
                == by_name["inner.a"].span_id)
        assert {s.trace_id for s in spans} == {trace.trace_id}
        assert {s.service for s in spans} == {"test-svc"}
        assert roots and roots[0] is root

    def test_repeated_traces_leave_no_stack_residue(self, enabled_hub):
        # Regression: the root trace must pop its handle off the
        # thread-local stack on exit — server threads are long-lived
        # (keep-alive, persistent router→worker connections) and would
        # otherwise leak one _OpenSpan per request, with late spans
        # attaching to dead traces.
        hub, _, roots = enabled_hub
        for _ in range(5):
            with hub.trace("req"):
                with request_span("stage.x"):
                    pass
        assert hub._stack() == []
        assert hub.current() is None
        assert not request_tracing_active()
        assert len(roots) == 5

    def test_parent_propagation_across_hops(self, enabled_hub):
        hub, spans, _ = enabled_hub
        upstream = TraceContext.mint()
        with hub.trace("server.request", parent=upstream) as trace:
            assert trace.trace_id == upstream.trace_id
        root = spans[-1]
        assert root.parent_id == upstream.span_id
        assert root.trace_id == upstream.trace_id

    def test_exception_marks_error(self, enabled_hub):
        hub, spans, roots = enabled_hub
        with pytest.raises(ValueError):
            with hub.trace("req"):
                with request_span("child"):
                    raise ValueError("boom")
        child, root = spans
        assert child.status == "error" and "boom" in child.error
        assert root.status == "error"
        assert roots[0].status == "error"

    def test_set_error_and_annotate(self, enabled_hub):
        hub, spans, _ = enabled_hub
        with hub.trace("req") as trace:
            trace.annotate(status=503, path="/predict")
            trace.set_error("shed")
        root = spans[-1]
        assert root.status == "error" and root.error == "shed"
        assert root.attrs == {"status": 503, "path": "/predict"}

    def test_record_span_pretimed_and_event(self, enabled_hub):
        hub, spans, _ = enabled_hub
        with hub.trace("req") as trace:
            hub.record_span("queue.wait", trace.ctx, start_ts=123.0,
                            duration_s=0.25, attrs={"batch": "b1"})
            hub.event("breaker_skip", {"worker": "w0"})
        by_name = {s.name: s for s in spans}
        queued = by_name["queue.wait"]
        assert queued.start_ts == 123.0
        assert queued.duration_s == 0.25
        assert queued.parent_id == trace.ctx.span_id
        assert by_name["breaker_skip"].duration_s == 0.0

    def test_activate_adopts_context_on_other_thread(self, enabled_hub):
        hub, spans, _ = enabled_hub
        seen = {}

        def worker(ctx):
            with hub.activate(ctx):
                seen["current"] = hub.current()
                with request_span("batch.dispatch"):
                    pass
            seen["after"] = hub.current()

        with hub.trace("req") as trace:
            thread = threading.Thread(target=worker, args=(trace.ctx,))
            thread.start()
            thread.join()
        assert seen["current"] is trace.ctx
        assert seen["after"] is None
        dispatch = next(s for s in spans if s.name == "batch.dispatch")
        assert dispatch.trace_id == trace.trace_id
        assert dispatch.parent_id == trace.ctx.span_id

    def test_request_span_without_active_request(self, enabled_hub):
        hub, spans, _ = enabled_hub
        with request_span("orphan") as handle:
            assert handle.ctx is None
        assert spans == []

    def test_broken_sink_never_fails_the_request(self, enabled_hub):
        hub, spans, _ = enabled_hub

        def bad_sink(record):
            raise RuntimeError("sink broke")

        hub.add_span_sink(bad_sink)
        with hub.trace("req"):
            pass
        assert [s.name for s in spans] == ["req"]


class TestSpanTree:
    def events(self):
        mk = SpanRecord
        return [
            mk("root", "t1", "a" * 16, "", start_ts=1.0).to_event(),
            mk("child", "t1", "b" * 16, "a" * 16,
               start_ts=3.0).to_event(),
            mk("first", "t1", "c" * 16, "a" * 16,
               start_ts=2.0).to_event(),
        ]

    def test_nesting_and_ordering(self):
        roots = build_span_tree(self.events())
        assert len(roots) == 1
        children = [n["span"]["name"] for n in roots[0]["children"]]
        assert children == ["first", "child"]

    def test_orphan_becomes_root(self):
        events = self.events()[1:]  # drop the parent
        roots = build_span_tree(events)
        assert {r["span"]["name"] for r in roots} == {"first", "child"}


class TestJsonlWriter:
    def test_writes_only_sampled_and_flushes(self, tmp_path):
        path = trace_file_for(str(tmp_path), "svc/1")
        assert "trace-svc-1-" in path
        writer = TraceJsonlWriter(path)
        writer(SpanRecord("keep", "t1", "a" * 16, sampled=True))
        writer(SpanRecord("drop", "t2", "b" * 16, sampled=False))
        # Readable while the handle is still open (crash forensics).
        lines = [json.loads(line)
                 for line in open(path).read().splitlines()]
        assert [e["name"] for e in lines] == ["keep"]
        writer.close()
        assert writer.written == 1

    def test_stitch_two_process_files(self, tmp_path):
        """Router file + worker file → one complete stitched tree."""
        trace = TraceContext.mint()
        attempt = trace.child()
        router = TraceJsonlWriter(str(tmp_path / "router.jsonl"))
        router(SpanRecord("router.request", trace.trace_id,
                          trace.span_id, "", service="router",
                          start_ts=1.0, duration_s=1.0))
        router(SpanRecord("router.attempt", trace.trace_id,
                          attempt.span_id, trace.span_id,
                          service="router", start_ts=1.1,
                          duration_s=0.8))
        worker = TraceJsonlWriter(str(tmp_path / "worker.jsonl"))
        server_span = attempt.child()
        worker(SpanRecord("server.request", trace.trace_id,
                          server_span.span_id, attempt.span_id,
                          service="worker-1", start_ts=1.2,
                          duration_s=0.5))
        router.close()
        worker.close()

        events = read_trace_jsonl(str(tmp_path / "router.jsonl"),
                                  str(tmp_path / "worker.jsonl"))
        stitched = stitch_traces(events)
        assert set(stitched) == {trace.trace_id}
        entry = stitched[trace.trace_id]
        assert entry["complete"]
        assert entry["span_count"] == 3
        assert entry["services"] == ["router", "worker-1"]
        assert entry["duration_s"] == 1.0
        tree = entry["roots"][0]
        assert tree["span"]["name"] == "router.request"
        assert (tree["children"][0]["children"][0]["span"]["name"]
                == "server.request")


class TestFlightRecorder:
    def feed(self, recorder, name, duration_s, status="ok"):
        ctx = TraceContext.mint()
        record = SpanRecord(name, ctx.trace_id, ctx.span_id, "",
                            duration_s=duration_s, status=status)
        recorder.on_span(record)
        recorder.on_trace_end(record)
        return ctx.trace_id

    def test_retains_slowest_n_with_eviction(self):
        recorder = FlightRecorder(slowest=2, errors=8)
        slow = self.feed(recorder, "req", 3.0)
        slower = self.feed(recorder, "req", 4.0)
        fast = self.feed(recorder, "req", 0.1)
        mid = self.feed(recorder, "req", 3.5)  # evicts `slow`
        retained = set(recorder.retained_ids())
        assert retained == {slower, mid}
        assert recorder.lookup(fast) is None
        found = recorder.lookup(slower)
        assert found["retained_for"] == ["slow"]
        assert found["tree"][0]["span"]["name"] == "req"

    def feed_segment(self, recorder, trace_id, duration_s):
        record = SpanRecord("req", trace_id, new_span_id(), "",
                            duration_s=duration_s)
        recorder.on_span(record)
        recorder.on_trace_end(record)

    def test_reended_root_rekeys_slow_heap(self):
        # Regression: when the router root of a co-located trace closes
        # after the embedded worker's root with a longer duration, the
        # slow-heap entry must be re-keyed to the true root duration —
        # otherwise the trace is evicted as if it were still short.
        recorder = FlightRecorder(slowest=2, errors=8)
        merged = "ab" * 16
        self.feed_segment(recorder, merged, 0.01)  # worker segment
        other = self.feed(recorder, "req", 0.02)
        self.feed_segment(recorder, merged, 0.10)  # router root re-ends
        third = self.feed(recorder, "req", 0.05)   # must evict `other`
        assert set(recorder.retained_ids()) == {merged, third}
        assert recorder.lookup(other) is None

    def test_errors_always_retained(self):
        recorder = FlightRecorder(slowest=1, errors=4)
        self.feed(recorder, "req", 9.0)
        err = self.feed(recorder, "req", 0.001, status="error")
        found = recorder.lookup(err)
        assert found is not None
        assert found["retained_for"] == ["error"]

    def test_error_ring_is_bounded(self):
        recorder = FlightRecorder(slowest=1, errors=2)
        self.feed(recorder, "req", 9.0)  # pins the slowest-1 slot
        ids = [self.feed(recorder, "req", 0.001, status="error")
               for _ in range(4)]
        assert recorder.lookup(ids[0]) is None
        assert recorder.lookup(ids[-1]) is not None

    def test_hub_integration_via_enable(self, hub, tmp_path):
        from repro.telemetry import (disable_request_tracing,
                                     enable_request_tracing,
                                     get_flight_recorder)
        enable_request_tracing(service="t", sample_rate=0.0,
                               trace_dir=str(tmp_path))
        try:
            with hub.trace("req") as trace:
                with request_span("inner"):
                    pass
            # Sampling gates the JSONL export, NOT the recorder.
            found = get_flight_recorder().lookup(trace.trace_id)
            assert found is not None
            assert {s["name"] for s in found["spans"]} \
                == {"req", "inner"}
            assert not list(tmp_path.glob("trace-*.jsonl")) or all(
                not path.read_text().strip()
                for path in tmp_path.glob("trace-*.jsonl"))
        finally:
            disable_request_tracing()


class TestRequestLog:
    def test_ring_filters_and_count(self):
        log = RequestLog(maxlen=4)
        for i in range(6):
            log.append(path="/predict", status=200 if i % 2 else 500,
                       trace_id=f"t{i}", latency_ms=float(i))
        assert log.appended == 6
        assert len(log) == 4
        newest = log.snapshot(limit=1)[0]
        assert newest["trace_id"] == "t5"
        errors = log.snapshot(errors_only=True)
        assert {r["trace_id"] for r in errors} == {"t2", "t4"}
        assert log.snapshot(trace_id="t3")[0]["status"] == 200
