"""Tests for shared utilities and the pinned experiment configuration."""

import numpy as np
import pytest

from repro.experiments import (DATASETS, HD_DIM, MODEL_NAMES, MODEL_WIDTHS,
                               REDUCED_FEATURES, TEACHER_EPOCHS,
                               load_dataset)
from repro.utils import derive_rng, format_table, fresh_rng


class TestRng:
    def test_fresh_rng_deterministic(self):
        a = fresh_rng(5).integers(0, 1000, 10)
        b = fresh_rng(5).integers(0, 1000, 10)
        np.testing.assert_array_equal(a, b)

    def test_fresh_rng_tuple_seeds(self):
        a = fresh_rng((1, "train", 3)).random()
        b = fresh_rng((1, "train", 3)).random()
        c = fresh_rng((1, "test", 3)).random()
        assert a == b
        assert a != c

    def test_fresh_rng_none_entropy(self):
        assert fresh_rng(None).random() != fresh_rng(None).random()

    def test_derive_rng_independent_streams(self):
        root = fresh_rng(0)
        a = derive_rng(root, "alpha")
        b = derive_rng(root, "beta")
        assert a.random() != b.random()

    def test_derive_rng_reproducible_from_same_parent_state(self):
        a = derive_rng(fresh_rng(1), "x", 2).random()
        b = derive_rng(fresh_rng(1), "x", 2).random()
        assert a == b


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["a", "bb"], [[1, 2], [33, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_column_alignment(self):
        text = format_table(["col"], [["x"], ["longer"]])
        lines = text.splitlines()
        assert len(lines[0]) == len(lines[2])

    def test_row_width_validation(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestExperimentConfig:
    def test_every_model_has_width_and_epochs(self):
        for name in MODEL_NAMES:
            assert name in MODEL_WIDTHS
            assert name in TEACHER_EPOCHS

    def test_paper_defaults(self):
        assert HD_DIM == 3000  # the paper's Sec. VII-A default
        # F^ must be at least the largest class count (Sec. VII-A).
        assert REDUCED_FEATURES >= max(cfg.num_classes
                                       for cfg in DATASETS.values())

    def test_dataset_configs(self):
        assert DATASETS["s10"].num_classes == 10
        assert DATASETS["s25"].num_classes == 25
        for cfg in DATASETS.values():
            assert cfg.num_test % cfg.num_classes == 0

    def test_load_dataset_validation(self):
        with pytest.raises(ValueError):
            load_dataset("cifar10")

    def test_load_dataset_normalized_and_cached(self):
        x_tr, y_tr, x_te, y_te = load_dataset("s10")
        np.testing.assert_allclose(x_tr.mean(axis=(0, 2, 3)), np.zeros(3),
                                   atol=1e-8)
        assert len(x_tr) == DATASETS["s10"].num_train
        # Second call returns the in-memory cache (same object).
        x_tr2, *_ = load_dataset("s10")
        assert x_tr2 is x_tr
