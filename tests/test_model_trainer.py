"""Tests for the CNN training loop and weight caching."""

import os

import numpy as np
import pytest

from repro.data import make_dataset, normalize_images
from repro.models import cached_model, create_model, train_cnn


@pytest.fixture(scope="module")
def tiny_data():
    x_tr, y_tr, x_te, y_te = make_dataset(num_classes=3, num_train=60,
                                          num_test=30, seed=21)
    x_tr, mean, std = normalize_images(x_tr)
    x_te, _, _ = normalize_images(x_te, mean, std)
    return x_tr, y_tr, x_te, y_te


class TestTrainCNN:
    def test_loss_decreases(self, tiny_data):
        x_tr, y_tr, _, _ = tiny_data
        model = create_model("vgg16", num_classes=3, width_mult=0.125,
                             seed=7)
        history = train_cnn(model, x_tr, y_tr, epochs=3, batch_size=16,
                            lr=2e-3, seed=7, augment=False)
        assert history["loss"][-1] < history["loss"][0]

    def test_history_structure_with_validation(self, tiny_data):
        x_tr, y_tr, x_te, y_te = tiny_data
        model = create_model("vgg16", num_classes=3, width_mult=0.125,
                             seed=8)
        history = train_cnn(model, x_tr, y_tr, epochs=2, batch_size=16,
                            x_val=x_te, y_val=y_te, seed=8, eval_every=1)
        assert len(history["loss"]) == 2
        assert len(history["val_acc"]) == 2

    def test_eval_every_zero_only_final(self, tiny_data):
        x_tr, y_tr, _, _ = tiny_data
        model = create_model("vgg16", num_classes=3, width_mult=0.125,
                             seed=9)
        history = train_cnn(model, x_tr, y_tr, epochs=3, batch_size=16,
                            seed=9, eval_every=0)
        assert len(history["train_acc"]) == 1

    def test_sgd_optimizer_option(self, tiny_data):
        x_tr, y_tr, _, _ = tiny_data
        model = create_model("vgg16", num_classes=3, width_mult=0.125,
                             seed=10)
        train_cnn(model, x_tr, y_tr, epochs=1, batch_size=16,
                  optimizer="sgd", seed=10)

    def test_unknown_optimizer_rejected(self, tiny_data):
        x_tr, y_tr, _, _ = tiny_data
        model = create_model("vgg16", num_classes=3, width_mult=0.125,
                             seed=11)
        with pytest.raises(ValueError):
            train_cnn(model, x_tr, y_tr, epochs=1, optimizer="lion")


class TestCachedModel:
    def test_cache_roundtrip(self, tiny_data, tmp_path):
        x_tr, y_tr, x_te, _ = tiny_data
        kwargs = dict(num_classes=3, width_mult=0.125, epochs=1,
                      batch_size=16, seed=3, dataset_tag="tinytest",
                      cache_dir=str(tmp_path))
        first = cached_model("vgg16", x_tr, y_tr, **kwargs)
        assert len(os.listdir(tmp_path)) == 1
        second = cached_model("vgg16", x_tr, y_tr, **kwargs)
        np.testing.assert_allclose(first.logits(x_te[:4]),
                                   second.logits(x_te[:4]))

    def test_different_tag_retrains(self, tiny_data, tmp_path):
        x_tr, y_tr, _, _ = tiny_data
        base = dict(num_classes=3, width_mult=0.125, epochs=1,
                    batch_size=16, seed=3, cache_dir=str(tmp_path))
        cached_model("vgg16", x_tr, y_tr, dataset_tag="a", **base)
        cached_model("vgg16", x_tr, y_tr, dataset_tag="b", **base)
        assert len(os.listdir(tmp_path)) == 2

    def test_cached_model_in_eval_mode(self, tiny_data, tmp_path):
        x_tr, y_tr, _, _ = tiny_data
        model = cached_model("vgg16", x_tr, y_tr, num_classes=3,
                             width_mult=0.125, epochs=1, batch_size=16,
                             seed=3, dataset_tag="evalmode",
                             cache_dir=str(tmp_path))
        assert not model.training
