"""Tests for the OnlineHD trainer and the sequence (n-gram) encoder."""

import numpy as np
import pytest

from repro.hd import dot_similarity
from repro.hd.sequences import SequenceEncoder
from repro.learn import MassTrainer
from repro.learn.online import OnlineHDTrainer


def make_problem(num_classes=4, per_class=40, dim=512, noise=0.8, seed=0):
    rng = np.random.default_rng(seed)
    protos = rng.choice([-1.0, 1.0], size=(num_classes, dim))
    labels = np.repeat(np.arange(num_classes), per_class)
    hvs = np.sign(protos[labels] + rng.normal(0, noise, size=(len(labels),
                                                              dim)))
    hvs[hvs == 0] = 1
    return hvs, labels


class TestOnlineHDTrainer:
    def test_update_sparsity(self):
        hvs, labels = make_problem()
        trainer = OnlineHDTrainer(4, hvs.shape[1])
        trainer.initialize(hvs, labels)
        update = trainer.compute_update(hvs, labels)
        # At most two nonzero entries per row (correct + predicted).
        assert (np.abs(update) > 0).sum(axis=1).max() <= 2

    def test_no_update_when_correct(self):
        hvs, labels = make_problem(noise=0.1, seed=1)
        trainer = OnlineHDTrainer(4, hvs.shape[1])
        trainer.initialize(hvs, labels)
        correct = trainer.predict(hvs) == labels
        update = trainer.compute_update(hvs, labels)
        assert np.all(update[correct] == 0.0)

    def test_reinforce_correct_option(self):
        hvs, labels = make_problem(noise=0.1, seed=2)
        trainer = OnlineHDTrainer(4, hvs.shape[1], reinforce_correct=True)
        trainer.initialize(hvs, labels)
        correct = trainer.predict(hvs) == labels
        update = trainer.compute_update(hvs, labels)
        assert np.any(update[correct] != 0.0)

    def test_learns_clustered_problem(self):
        hvs, labels = make_problem(noise=1.0, seed=3)
        trainer = OnlineHDTrainer(4, hvs.shape[1], lr=0.1)
        trainer.fit(hvs, labels, epochs=20, rng=np.random.default_rng(0))
        assert trainer.accuracy(hvs, labels) > 0.9

    def test_mass_uses_richer_signal(self):
        """MASS updates all classes; OnlineHD only two — MASS should not
        be worse on a many-class problem at matched budget (the CascadeHD
        argument)."""
        hvs, labels = make_problem(num_classes=8, per_class=25, noise=1.2,
                                   seed=4)
        mass = MassTrainer(8, hvs.shape[1], lr=0.05)
        mass.fit(hvs, labels, epochs=8, rng=np.random.default_rng(0))
        online = OnlineHDTrainer(8, hvs.shape[1], lr=0.05)
        online.fit(hvs, labels, epochs=8, rng=np.random.default_rng(0))
        assert mass.accuracy(hvs, labels) >= \
            online.accuracy(hvs, labels) - 0.05


class TestSequenceEncoder:
    def test_encode_shape_and_bipolarity(self):
        encoder = SequenceEncoder(dim=1024, ngram=3,
                                  rng=np.random.default_rng(0))
        hv = encoder.encode("hello world")
        assert hv.shape == (1024,)
        assert set(np.unique(hv)) <= {-1.0, 1.0}

    def test_determinism(self):
        encoder = SequenceEncoder(dim=512, ngram=2,
                                  rng=np.random.default_rng(1))
        np.testing.assert_allclose(encoder.encode("abcabc"),
                                   encoder.encode("abcabc"))

    def test_order_sensitivity(self):
        """Permutation binding distinguishes 'ab' from 'ba'."""
        encoder = SequenceEncoder(dim=4096, ngram=2,
                                  rng=np.random.default_rng(2))
        sim = encoder.similarity("abababab", "babababa")
        self_sim = encoder.similarity("abababab", "abababab")
        assert self_sim == pytest.approx(1.0)
        assert sim < 0.8

    def test_similar_texts_more_similar_than_random(self):
        encoder = SequenceEncoder(dim=4096, ngram=3,
                                  rng=np.random.default_rng(3))
        near = encoder.similarity("the quick brown fox",
                                  "the quick brown fax")
        far = encoder.similarity("the quick brown fox",
                                 "zzz qqq www vvv uuu")
        assert near > far

    def test_ngram_window_validation(self):
        encoder = SequenceEncoder(dim=128, ngram=3)
        with pytest.raises(ValueError):
            encoder.encode_ngram("ab")
        with pytest.raises(ValueError):
            encoder.encode("ab")  # shorter than the n-gram

    def test_ngram_size_validation(self):
        with pytest.raises(ValueError):
            SequenceEncoder(ngram=0)

    def test_alphabet_grows_lazily(self):
        encoder = SequenceEncoder(dim=256, ngram=1,
                                  rng=np.random.default_rng(4))
        encoder.encode("abc")
        assert len(encoder.items) == 3

    def test_works_on_non_string_symbols(self):
        encoder = SequenceEncoder(dim=512, ngram=2,
                                  rng=np.random.default_rng(5))
        hv = encoder.encode([1, 2, 3, 1, 2, 3])
        assert hv.shape == (512,)

    def test_language_identification_toy(self):
        """The cited language-recognition task [13] in miniature: n-gram
        profiles separate two synthetic 'languages'."""
        rng = np.random.default_rng(6)
        encoder = SequenceEncoder(dim=4096, ngram=3,
                                  rng=np.random.default_rng(7))

        def sample_text(alphabet, length=60):
            return "".join(rng.choice(list(alphabet), size=length))

        lang_a, lang_b = "aeiou", "qxzwk"
        profile_a = np.sign(sum(encoder.encode(sample_text(lang_a))
                                for _ in range(5)))
        profile_b = np.sign(sum(encoder.encode(sample_text(lang_b))
                                for _ in range(5)))
        query = encoder.encode(sample_text(lang_a))
        sims = dot_similarity(np.stack([profile_a, profile_b]), query)
        assert sims[0] > sims[1]
