"""Tests for the OnlineHD trainer and the sequence (n-gram) encoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hd import dot_similarity
from repro.hd.backend import pack_bipolar
from repro.hd.hypervector import is_bipolar
from repro.hd.sequences import SequenceEncoder
from repro.learn import MassTrainer
from repro.learn.mass import clip_update_norms
from repro.learn.online import OnlineHDTrainer


def make_problem(num_classes=4, per_class=40, dim=512, noise=0.8, seed=0):
    rng = np.random.default_rng(seed)
    protos = rng.choice([-1.0, 1.0], size=(num_classes, dim))
    labels = np.repeat(np.arange(num_classes), per_class)
    hvs = np.sign(protos[labels] + rng.normal(0, noise, size=(len(labels),
                                                              dim)))
    hvs[hvs == 0] = 1
    return hvs, labels


class TestOnlineHDTrainer:
    def test_update_sparsity(self):
        hvs, labels = make_problem()
        trainer = OnlineHDTrainer(4, hvs.shape[1])
        trainer.initialize(hvs, labels)
        update = trainer.compute_update(hvs, labels)
        # At most two nonzero entries per row (correct + predicted).
        assert (np.abs(update) > 0).sum(axis=1).max() <= 2

    def test_no_update_when_correct(self):
        hvs, labels = make_problem(noise=0.1, seed=1)
        trainer = OnlineHDTrainer(4, hvs.shape[1])
        trainer.initialize(hvs, labels)
        correct = trainer.predict(hvs) == labels
        update = trainer.compute_update(hvs, labels)
        assert np.all(update[correct] == 0.0)

    def test_reinforce_correct_option(self):
        hvs, labels = make_problem(noise=0.1, seed=2)
        trainer = OnlineHDTrainer(4, hvs.shape[1], reinforce_correct=True)
        trainer.initialize(hvs, labels)
        correct = trainer.predict(hvs) == labels
        update = trainer.compute_update(hvs, labels)
        assert np.any(update[correct] != 0.0)

    def test_learns_clustered_problem(self):
        hvs, labels = make_problem(noise=1.0, seed=3)
        trainer = OnlineHDTrainer(4, hvs.shape[1], lr=0.1)
        trainer.fit(hvs, labels, epochs=20, rng=np.random.default_rng(0))
        assert trainer.accuracy(hvs, labels) > 0.9

    def test_mass_uses_richer_signal(self):
        """MASS updates all classes; OnlineHD only two — MASS should not
        be worse on a many-class problem at matched budget (the CascadeHD
        argument)."""
        hvs, labels = make_problem(num_classes=8, per_class=25, noise=1.2,
                                   seed=4)
        mass = MassTrainer(8, hvs.shape[1], lr=0.05)
        mass.fit(hvs, labels, epochs=8, rng=np.random.default_rng(0))
        online = OnlineHDTrainer(8, hvs.shape[1], lr=0.05)
        online.fit(hvs, labels, epochs=8, rng=np.random.default_rng(0))
        assert mass.accuracy(hvs, labels) >= \
            online.accuracy(hvs, labels) - 0.05


class TestOnlineHDProperties:
    """Property tests for the sparse two-class rule (hypothesis)."""

    @given(seed=st.integers(0, 2 ** 16), num_classes=st.integers(2, 6),
           dim=st.sampled_from([64, 128]), n=st.integers(1, 8),
           reinforce=st.booleans(),
           rate=st.floats(0.0, 1.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_sparse_update_structure(self, seed, num_classes, dim, n,
                                     reinforce, rate):
        """Every update row has at most two nonzeros — the label and the
        prediction — with the OnlineHD magnitudes; correct rows carry
        only the ``reinforce_rate``-scaled consolidation term."""
        rng = np.random.default_rng(seed)
        hvs = rng.choice([-1.0, 1.0], size=(n, dim))
        labels = rng.integers(0, num_classes, size=n)
        trainer = OnlineHDTrainer(num_classes, dim,
                                  reinforce_correct=reinforce,
                                  reinforce_rate=rate)
        trainer.class_matrix = rng.choice([-1.0, 1.0],
                                          size=(num_classes, dim))
        sims = trainer.similarities(hvs)
        preds = sims.argmax(axis=1)
        update = trainer.compute_update(hvs, labels)
        assert (np.abs(update) > 0).sum(axis=1).max() <= 2
        for i in range(n):
            allowed = {int(labels[i]), int(preds[i])}
            off = [j for j in range(num_classes) if j not in allowed]
            assert np.all(update[i, off] == 0.0)
            if preds[i] != labels[i]:
                assert update[i, labels[i]] == \
                    pytest.approx(1.0 - sims[i, labels[i]])
                assert update[i, preds[i]] == \
                    pytest.approx(-(1.0 - sims[i, preds[i]]))
            elif reinforce:
                assert update[i, labels[i]] == \
                    pytest.approx(rate * (1.0 - sims[i, labels[i]]))
            else:
                assert np.all(update[i] == 0.0)

    @given(seed=st.integers(0, 2 ** 16), num_classes=st.integers(3, 8),
           reinforce=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_single_step_preserves_untouched_rows_bit_exact(
            self, seed, num_classes, reinforce):
        """One sparse step moves at most the label and predicted rows;
        every other class row — and therefore its bit-packed form — is
        bit-identical, the invariant the serve-path shadow model's
        parity guarantee builds on."""
        dim = 128
        rng = np.random.default_rng(seed)
        trainer = OnlineHDTrainer(num_classes, dim, lr=0.5,
                                  reinforce_correct=reinforce)
        trainer.class_matrix = rng.choice([-1.0, 1.0],
                                          size=(num_classes, dim))
        before = trainer.class_matrix.copy()
        packed_before = pack_bipolar(before)
        hv = rng.choice([-1.0, 1.0], size=(1, dim))
        label = int(rng.integers(0, num_classes))
        pred = int(trainer.similarities(hv).argmax(axis=1)[0])
        assert trainer.step(hv, np.array([label]))
        touched = {label, pred}
        for row in range(num_classes):
            if row in touched:
                continue
            assert np.array_equal(trainer.class_matrix[row], before[row])
            assert is_bipolar(trainer.class_matrix[row])
            assert np.array_equal(
                pack_bipolar(trainer.class_matrix[row:row + 1]),
                packed_before[row:row + 1])

    @given(seed=st.integers(0, 2 ** 16),
           max_norm=st.floats(0.01, 10.0, allow_nan=False),
           rows=st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_clip_update_norms_bounds_and_identity(self, seed, max_norm,
                                                   rows):
        """Clipped rows land on the max-norm ball; rows already under
        the cap pass through bit-exact."""
        rng = np.random.default_rng(seed)
        delta = rng.standard_normal((rows, 32)) * \
            rng.choice([0.01, 1.0, 100.0], size=(rows, 1))
        clipped = clip_update_norms(delta, max_norm)
        norms = np.linalg.norm(clipped, axis=1)
        assert np.all(norms <= max_norm * (1 + 1e-12))
        under = np.linalg.norm(delta, axis=1) <= max_norm
        assert np.array_equal(clipped[under], delta[under])

    def test_reinforce_rate_zero_matches_disabled(self):
        hvs, labels = make_problem(noise=0.5, seed=7)
        on = OnlineHDTrainer(4, hvs.shape[1], reinforce_correct=True,
                             reinforce_rate=0.0)
        off = OnlineHDTrainer(4, hvs.shape[1], reinforce_correct=False)
        for trainer in (on, off):
            trainer.initialize(hvs, labels)
        assert np.array_equal(on.compute_update(hvs, labels),
                              off.compute_update(hvs, labels))

    def test_reinforce_rate_validated(self):
        with pytest.raises(ValueError):
            OnlineHDTrainer(4, 64, reinforce_correct=True,
                            reinforce_rate=-0.1)


class TestSequenceEncoder:
    def test_encode_shape_and_bipolarity(self):
        encoder = SequenceEncoder(dim=1024, ngram=3,
                                  rng=np.random.default_rng(0))
        hv = encoder.encode("hello world")
        assert hv.shape == (1024,)
        assert set(np.unique(hv)) <= {-1.0, 1.0}

    def test_determinism(self):
        encoder = SequenceEncoder(dim=512, ngram=2,
                                  rng=np.random.default_rng(1))
        np.testing.assert_allclose(encoder.encode("abcabc"),
                                   encoder.encode("abcabc"))

    def test_order_sensitivity(self):
        """Permutation binding distinguishes 'ab' from 'ba'."""
        encoder = SequenceEncoder(dim=4096, ngram=2,
                                  rng=np.random.default_rng(2))
        sim = encoder.similarity("abababab", "babababa")
        self_sim = encoder.similarity("abababab", "abababab")
        assert self_sim == pytest.approx(1.0)
        assert sim < 0.8

    def test_similar_texts_more_similar_than_random(self):
        encoder = SequenceEncoder(dim=4096, ngram=3,
                                  rng=np.random.default_rng(3))
        near = encoder.similarity("the quick brown fox",
                                  "the quick brown fax")
        far = encoder.similarity("the quick brown fox",
                                 "zzz qqq www vvv uuu")
        assert near > far

    def test_ngram_window_validation(self):
        encoder = SequenceEncoder(dim=128, ngram=3)
        with pytest.raises(ValueError):
            encoder.encode_ngram("ab")
        with pytest.raises(ValueError):
            encoder.encode("ab")  # shorter than the n-gram

    def test_ngram_size_validation(self):
        with pytest.raises(ValueError):
            SequenceEncoder(ngram=0)

    def test_alphabet_grows_lazily(self):
        encoder = SequenceEncoder(dim=256, ngram=1,
                                  rng=np.random.default_rng(4))
        encoder.encode("abc")
        assert len(encoder.items) == 3

    def test_works_on_non_string_symbols(self):
        encoder = SequenceEncoder(dim=512, ngram=2,
                                  rng=np.random.default_rng(5))
        hv = encoder.encode([1, 2, 3, 1, 2, 3])
        assert hv.shape == (512,)

    def test_language_identification_toy(self):
        """The cited language-recognition task [13] in miniature: n-gram
        profiles separate two synthetic 'languages'."""
        rng = np.random.default_rng(6)
        encoder = SequenceEncoder(dim=4096, ngram=3,
                                  rng=np.random.default_rng(7))

        def sample_text(alphabet, length=60):
            return "".join(rng.choice(list(alphabet), size=length))

        lang_a, lang_b = "aeiou", "qxzwk"
        profile_a = np.sign(sum(encoder.encode(sample_text(lang_a))
                                for _ in range(5)))
        profile_b = np.sign(sum(encoder.encode(sample_text(lang_b))
                                for _ in range(5)))
        query = encoder.encode(sample_text(lang_a))
        sims = dot_similarity(np.stack([profile_a, profile_b]), query)
        assert sims[0] > sims[1]
