"""Robustness sweep: the accuracy-vs-bit-flip-rate curve.

Checks the paper's graceful-degradation claim on a controlled separable
task: accuracy at flip rate 0 matches the clean model, decays smoothly
with rate (no crash anywhere on the grid), and collapses to chance at
``p = 0.5`` where every hypervector bit is equally likely flipped.
"""

import numpy as np
import pytest

from repro.data import make_dataset, normalize_images
from repro.learn import BaselineHD, MassTrainer
from repro.models import create_model
from repro.reliability import (DEFAULT_RATES, bit_flip_curve, bit_flip_sweep,
                               format_sweep, sweep_systems)
from repro.utils.rng import fresh_rng


@pytest.fixture(scope="module")
def separable():
    """Well-separated class-clustered hypervectors + a fitted trainer."""
    rng = fresh_rng(12)
    num_classes, per_class, dim = 4, 40, 1024
    prototypes = rng.choice([-1.0, 1.0], size=(num_classes, dim))
    labels = np.repeat(np.arange(num_classes), per_class)
    hvs = np.sign(prototypes[labels] +
                  rng.normal(0, 0.8, size=(len(labels), dim)))
    hvs[hvs == 0] = 1.0
    trainer = MassTrainer(num_classes, dim)
    trainer.fit(hvs, labels, epochs=3, rng=fresh_rng(13))
    return trainer, hvs, labels


class TestBitFlipCurve:
    @pytest.mark.parametrize("target", ["query", "memory", "both"])
    def test_graceful_degradation_shape(self, separable, target):
        trainer, hvs, labels = separable
        rows = bit_flip_curve(trainer, hvs, labels, target=target,
                              trials=3, seed=0)
        rates = [row["rate"] for row in rows]
        accs = [row["accuracy"] for row in rows]
        assert rates == list(DEFAULT_RATES)
        assert all(np.isfinite(accs))
        # clean anchor: rate 0 equals the uncorrupted accuracy
        assert accs[0] == pytest.approx(trainer.accuracy(hvs, labels))
        assert accs[0] > 0.9
        # the paper regime: still clearly above chance at p = 0.3
        regime = {row["rate"]: row["accuracy"] for row in rows}
        assert regime[0.3] > 0.25 + 0.15
        # chance anchor: p = 0.5 destroys all information
        assert abs(regime[0.5] - 0.25) < 0.2
        # graceful: accuracy never *increases* by much along the grid
        for earlier, later in zip(accs, accs[1:]):
            assert later <= earlier + 0.05

    def test_trials_reported_as_min_mean_max(self, separable):
        trainer, hvs, labels = separable
        rows = bit_flip_curve(trainer, hvs, labels, rates=(0.2,), trials=5)
        row = rows[0]
        assert row["min"] <= row["accuracy"] <= row["max"]

    def test_deterministic_given_seed(self, separable):
        trainer, hvs, labels = separable
        a = bit_flip_curve(trainer, hvs, labels, rates=(0.1, 0.3), seed=4)
        b = bit_flip_curve(trainer, hvs, labels, rates=(0.1, 0.3), seed=4)
        assert a == b

    def test_validation(self, separable):
        trainer, hvs, labels = separable
        with pytest.raises(ValueError, match="target"):
            bit_flip_curve(trainer, hvs, labels, target="bus")
        with pytest.raises(ValueError, match="trials"):
            bit_flip_curve(trainer, hvs, labels, trials=0)


class TestPipelineSweep:
    def test_sweep_and_format(self):
        x_tr, y_tr, _, _ = make_dataset(num_classes=3, num_train=60,
                                        num_test=6, seed=21)
        x_tr, _, _ = normalize_images(x_tr)
        model = create_model("vgg16", num_classes=3, width_mult=0.125,
                             seed=4)
        model.eval()
        pipeline = BaselineHD(model, layer_index=21, dim=256, seed=5)
        pipeline.fit(x_tr, y_tr, epochs=2, batch_size=32)

        results = sweep_systems({"BaselineHD": pipeline}, x_tr, y_tr,
                                rates=(0.0, 0.2, 0.5), trials=2, seed=1)
        rows = results["BaselineHD"]
        assert [row["rate"] for row in rows] == [0.0, 0.2, 0.5]
        assert all(np.isfinite(row["accuracy"]) for row in rows)
        assert rows[0]["accuracy"] == pytest.approx(
            pipeline.accuracy(x_tr, y_tr))

        table = format_sweep(results)
        assert "BaselineHD" in table and "0.20" in table

        direct = bit_flip_sweep(pipeline, x_tr, y_tr, rates=(0.0, 0.2, 0.5),
                                trials=2, seed=1)
        assert direct == rows

    def test_format_rejects_mismatched_grids(self):
        results = {
            "a": [{"rate": 0.0, "accuracy": 1.0, "min": 1.0, "max": 1.0}],
            "b": [{"rate": 0.1, "accuracy": 1.0, "min": 1.0, "max": 1.0}],
        }
        with pytest.raises(ValueError, match="same rates"):
            format_sweep(results)
        with pytest.raises(ValueError, match="no sweep"):
            format_sweep({})
