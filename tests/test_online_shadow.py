"""Unit tests for the serve-path shadow model (repro.online.shadow).

Covers guarded feedback ingestion (statuses, label validation, class
growth budget), the holdout validation ring, token-bucket rate
limiting, numerics-guard rejection, class-incremental parity for
pre-existing rows, update-norm bounding, rebase/reset semantics, and
shadow-vs-live ring evaluation.
"""

import numpy as np
import pytest

from repro.online import FeedbackError, ShadowModel
from repro.online.shadow import _TokenBucket
from repro.reliability.guards import NumericsGuard
from repro.telemetry import MetricsRegistry, use_registry


@pytest.fixture(autouse=True)
def registry():
    fresh = MetricsRegistry()
    with use_registry(fresh):
        yield fresh


DIM = 64


def make_base(classes=3, dim=DIM, seed=0):
    rng = np.random.default_rng(seed)
    return np.where(rng.random((classes, dim)) < 0.5, -1.0, 1.0)


def sample(base, label, noise=0.4, seed=None, rng=None):
    rng = rng or np.random.default_rng(seed)
    hv = np.sign(base[label] + rng.normal(0, noise, size=base.shape[1]))
    hv[hv == 0] = 1.0
    return hv[None, :]


class TestConstruction:
    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            ShadowModel(make_base(), rule="sgd")

    @pytest.mark.parametrize("kwargs", [
        {"holdout_every": -1},
        {"validation_capacity": 0},
        {"max_new_classes": -1},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ShadowModel(make_base(), **kwargs)

    def test_base_is_copied_not_aliased(self):
        base = make_base()
        shadow = ShadowModel(base, holdout_every=0)
        shadow.ingest(sample(base, 0, seed=1), 1)  # wrong label → update
        assert np.array_equal(base, make_base())  # caller's array intact
        assert np.array_equal(shadow.base, base)

    def test_both_rules_construct(self):
        for rule in ("mass", "online"):
            shadow = ShadowModel(make_base(), rule=rule)
            assert shadow.rule == rule
            assert shadow.num_classes == 3


class TestIngestStatuses:
    def test_applied_known_label(self):
        base = make_base()
        shadow = ShadowModel(base, holdout_every=0)
        assert shadow.ingest(sample(base, 0, seed=2), 0) == "applied"
        assert shadow.applied == 1

    def test_holdout_every_nth(self):
        base = make_base()
        shadow = ShadowModel(base, holdout_every=2)
        statuses = [shadow.ingest(sample(base, 0, seed=i), 0)
                    for i in range(6)]
        assert statuses == ["applied", "held_out"] * 3
        assert shadow.held_out == 3 and shadow.applied == 3
        hvs, labels = shadow.validation_set()
        assert len(labels) == 3 and set(labels) == {0}
        assert hvs.shape == (3, DIM)

    def test_holdout_disabled(self):
        base = make_base()
        shadow = ShadowModel(base, holdout_every=0)
        for i in range(8):
            assert shadow.ingest(sample(base, 1, seed=i), 1) == "applied"
        assert shadow.held_out == 0
        assert shadow.validation_set()[1].size == 0

    def test_ring_wraps_at_capacity(self):
        base = make_base()
        shadow = ShadowModel(base, holdout_every=1,
                             validation_capacity=4)
        for i in range(10):
            shadow.ingest(sample(base, i % 3, seed=i), i % 3)
        hvs, labels = shadow.validation_set()
        assert len(labels) == 4  # bounded, oldest overwritten

    def test_rate_limited(self):
        base = make_base()
        shadow = ShadowModel(base, holdout_every=0,
                             rate_limit_per_s=0.001,
                             rate_limit_burst=2)
        statuses = [shadow.ingest(sample(base, 0, seed=i), 0)
                    for i in range(4)]
        assert statuses[:2] == ["applied", "applied"]
        assert statuses[2:] == ["rate_limited", "rate_limited"]
        assert shadow.rate_limited == 2
        assert shadow.applied == 2  # limited samples never learned from

    def test_guard_rejects_nonfinite(self):
        base = make_base()
        shadow = ShadowModel(base, holdout_every=0)
        poisoned = sample(base, 0, seed=3)
        poisoned[0, 7] = np.nan
        before = shadow.snapshot()
        assert shadow.ingest(poisoned, 0) == "rejected"
        assert shadow.rejected == 1
        assert np.array_equal(shadow.matrix, before)  # matrix untouched

    def test_shape_mismatch_raises(self):
        shadow = ShadowModel(make_base())
        with pytest.raises(FeedbackError, match="shape"):
            shadow.ingest(np.ones((1, DIM + 1)), 0)
        with pytest.raises(FeedbackError, match="shape"):
            shadow.ingest(np.ones((2, DIM)), 0)

    def test_flat_vector_accepted(self):
        base = make_base()
        shadow = ShadowModel(base, holdout_every=0)
        assert shadow.ingest(sample(base, 0, seed=4)[0], 0) == "applied"


class TestLabelValidation:
    def test_out_of_range_labels_raise(self):
        shadow = ShadowModel(make_base())
        hv = sample(shadow.base, 0, seed=5)
        with pytest.raises(FeedbackError, match="outside"):
            shadow.ingest(hv, -1)
        with pytest.raises(FeedbackError, match="outside"):
            shadow.ingest(hv, 4)  # next unseen label is 3, not 4

    def test_growth_budget_enforced(self):
        base = make_base()
        shadow = ShadowModel(base, max_new_classes=1, holdout_every=0)
        assert shadow.ingest(sample(base, 0, seed=6), 3) == "new_class"
        with pytest.raises(FeedbackError, match="budget"):
            shadow.ingest(sample(base, 0, seed=7), 4)

    def test_growth_disabled(self):
        shadow = ShadowModel(make_base(), max_new_classes=0)
        with pytest.raises(FeedbackError, match="budget"):
            shadow.ingest(sample(shadow.base, 0, seed=8), 3)


class TestClassIncremental:
    def test_new_class_seeds_then_bundles(self):
        base = make_base()
        shadow = ShadowModel(base, holdout_every=0)
        rng = np.random.default_rng(9)
        proto = np.where(rng.random(DIM) < 0.5, -1.0, 1.0)
        first = proto[None, :]
        assert shadow.ingest(first, 3) == "new_class"
        assert shadow.num_classes == 4 and shadow.classes_added == 1
        np.testing.assert_allclose(shadow.matrix[3], proto)
        # Later samples accumulate into the new row only.
        second = np.sign(proto + rng.normal(0, 0.3, DIM))[None, :]
        second[second == 0] = 1.0
        assert shadow.ingest(second, 3) == "applied"
        np.testing.assert_allclose(shadow.matrix[3],
                                   proto + second[0])

    def test_preexisting_rows_bit_exact(self):
        """New-class feedback must never move rows < base_classes —
        the parity guarantee the live gate asserts end-to-end."""
        base = make_base()
        shadow = ShadowModel(base, holdout_every=0)
        rng = np.random.default_rng(10)
        proto = np.where(rng.random(DIM) < 0.5, -1.0, 1.0)
        for _ in range(20):
            hv = np.sign(proto + rng.normal(0, 0.4, DIM))[None, :]
            hv[hv == 0] = 1.0
            shadow.ingest(hv, 3)
        assert np.array_equal(shadow.matrix[:3], base)


class TestBounds:
    def test_update_norm_capped_per_row(self):
        base = make_base()
        cap = 0.25
        shadow = ShadowModel(base, rule="mass", lr=50.0,
                             max_update_norm=cap, holdout_every=0)
        before = shadow.snapshot()
        shadow.ingest(sample(base, 0, seed=11), 1)  # deliberately wrong
        moved = np.linalg.norm(shadow.matrix - before, axis=1)
        assert moved.max() <= cap * (1 + 1e-9)
        assert moved.max() > 0  # and it did move

    def test_update_norm_histogram_observed(self, registry):
        base = make_base()
        shadow = ShadowModel(base, holdout_every=0)
        shadow.ingest(sample(base, 0, seed=12), 1)
        assert "online.update_norm" in registry


class TestLifecycle:
    def test_reset_to_clears_state(self):
        base = make_base()
        shadow = ShadowModel(base, holdout_every=2)
        for i in range(8):
            shadow.ingest(sample(base, 0, seed=i), 0)
        new_base = make_base(classes=4, seed=99)
        shadow.reset_to(new_base)
        assert shadow.num_classes == 4
        assert shadow.applied == shadow.held_out == 0
        assert shadow.generation_feedback == 0
        assert shadow.validation_set()[1].size == 0
        assert np.array_equal(shadow.base, new_base)

    def test_snapshot_is_a_copy(self):
        shadow = ShadowModel(make_base())
        snap = shadow.snapshot()
        snap[:] = 0.0
        assert not np.array_equal(shadow.matrix, snap)


class TestEvaluation:
    def test_empty_ring_yields_none(self):
        shadow = ShadowModel(make_base())
        result = shadow.evaluate(shadow.base)
        assert result == {"size": 0, "shadow_accuracy": None,
                          "live_accuracy": None}

    def test_shadow_beats_stale_live_after_shift(self):
        """Swap labels 0<->1 via feedback; on the held-out ring the
        shadow should outscore the stale live matrix."""
        base = make_base(seed=13)
        shadow = ShadowModel(base, rule="mass", lr=8.0,
                             max_update_norm=8.0, holdout_every=4)
        rng = np.random.default_rng(14)
        swap = {0: 1, 1: 0, 2: 2}
        for _ in range(120):
            cluster = int(rng.integers(0, 3))
            hv = sample(base, cluster, noise=0.4, rng=rng)
            shadow.ingest(hv, swap[cluster])
        result = shadow.evaluate(base)
        assert result["size"] >= 8
        assert result["shadow_accuracy"] > result["live_accuracy"]
        assert result["shadow_accuracy"] > 0.8

    def test_health_reports_drift(self, registry):
        base = make_base()
        shadow = ShadowModel(base, holdout_every=0, lr=1.0,
                             max_update_norm=None)
        health = shadow.health()
        assert health["drift"]["relative"] == 0.0
        for i in range(10):
            shadow.ingest(sample(base, 0, seed=20 + i), 1)
        health = shadow.health()
        assert health["drift"]["relative"] > 0.0
        assert "online.shadow.drift" in registry

    def test_status_shape(self):
        shadow = ShadowModel(make_base(), rate_limit_per_s=10.0)
        status = shadow.status()
        assert status["rule"] == "mass"
        assert status["base_classes"] == 3
        assert status["feedback"] == {"seen": 0, "applied": 0,
                                      "held_out": 0, "rejected": 0,
                                      "rate_limited": 0}


class TestTokenBucket:
    def test_burst_then_deny(self):
        bucket = _TokenBucket(rate_per_s=0.001, burst=3)
        assert [bucket.allow() for _ in range(4)] == \
            [True, True, True, False]

    def test_validation(self):
        with pytest.raises(ValueError):
            _TokenBucket(rate_per_s=0.0)
        with pytest.raises(ValueError):
            _TokenBucket(rate_per_s=5.0, burst=0.5)

    def test_guard_counts_surface_in_status(self):
        guard = NumericsGuard(policy="skip_batch", name="online")
        shadow = ShadowModel(make_base(), guard=guard, holdout_every=0)
        bad = np.full((1, DIM), np.inf)
        assert shadow.ingest(bad, 0) == "rejected"
        assert sum(shadow.status()["guard"].values()) >= 1
