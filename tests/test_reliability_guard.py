"""NumericsGuard: policies, detection, and trainer wiring.

Acceptance scenario from the reliability issue: a NaN injected into a
distillation batch must be caught under *all three* policies, and under
none of them may the class-hypervector matrix be corrupted.
"""

import numpy as np
import pytest

from repro.learn import DistillationTrainer, ManifoldLearner, MassTrainer
from repro.models import create_model, train_cnn
from repro.reliability import (BatchCorruptionInjector, NumericsError,
                               NumericsGuard, NumericsWarning)
from repro.utils.rng import fresh_rng


def make_batch(num_classes=3, n=24, dim=64, seed=0):
    rng = fresh_rng((seed, "guard-batch"))
    hvs = np.sign(rng.normal(size=(n, dim))) + 0.0
    labels = rng.integers(0, num_classes, size=n)
    logits = rng.normal(size=(n, num_classes))
    return hvs, labels, logits


# ----------------------------------------------------------------------
# Guard unit behavior
# ----------------------------------------------------------------------

class TestGuardCore:
    def test_clean_arrays_pass(self):
        guard = NumericsGuard()
        assert guard.ok("tag", np.ones(4), np.zeros((2, 2)))
        assert guard.checks == 1
        assert guard.batches_skipped == 0

    def test_detects_nan_inf_overflow(self):
        guard = NumericsGuard(policy="skip_batch", max_abs=1e6)
        assert not guard.ok("nan", np.array([1.0, np.nan]))
        assert not guard.ok("inf", np.array([np.inf, 1.0]))
        assert not guard.ok("overflow", np.array([1e9]))
        assert guard.counts["nan"] == 1
        assert guard.counts["inf"] == 1
        assert guard.counts["overflow"] == 1
        assert guard.batches_skipped == 3

    def test_integer_arrays_are_exempt(self):
        guard = NumericsGuard(max_abs=10.0)
        assert guard.ok("ints", np.array([10**9]))  # ints can't be NaN

    def test_raise_policy(self):
        guard = NumericsGuard(policy="raise", name="unit")
        with pytest.raises(NumericsError, match="unit.*'spot'"):
            guard.ok("spot", np.array([np.nan]))

    def test_warn_policy(self):
        guard = NumericsGuard(policy="warn")
        with pytest.warns(NumericsWarning):
            assert not guard.ok("spot", np.array([np.inf]))

    def test_assert_finite_raises_under_any_policy(self):
        guard = NumericsGuard(policy="skip_batch")
        with pytest.raises(NumericsError):
            guard.assert_finite("spot", np.array([np.nan]))

    def test_summary_and_reset(self):
        guard = NumericsGuard(policy="skip_batch")
        guard.ok("x", np.array([np.nan]))
        summary = guard.summary()
        assert summary["batches_skipped"] == 1
        assert "violation" in summary["last_violation"]
        guard.reset()
        assert guard.summary()["batches_skipped"] == 0
        assert guard.summary()["last_violation"] is None

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            NumericsGuard(policy="ignore")


# ----------------------------------------------------------------------
# Acceptance: NaN distillation batch under all three policies
# ----------------------------------------------------------------------

class TestDistillationGuard:
    def _trained(self, guard):
        trainer = DistillationTrainer(3, 64, alpha=0.5, guard=guard)
        hvs, labels, logits = make_batch()
        trainer.initialize(hvs, labels)
        trainer.step(hvs, labels, teacher_logits=logits)
        return trainer

    def _poisoned(self):
        hvs, labels, logits = make_batch(seed=1)
        return BatchCorruptionInjector(0.3, mode="nan",
                                       seed=2).apply(hvs), labels, logits

    def test_raise_policy_aborts_and_preserves_model(self):
        guard = NumericsGuard(policy="raise")
        trainer = self._trained(guard)
        before = trainer.class_matrix.copy()
        bad_hvs, labels, logits = self._poisoned()
        with pytest.raises(NumericsError):
            trainer.step(bad_hvs, labels, teacher_logits=logits)
        np.testing.assert_array_equal(trainer.class_matrix, before)

    def test_warn_policy_skips_and_preserves_model(self):
        guard = NumericsGuard(policy="warn")
        trainer = self._trained(guard)
        before = trainer.class_matrix.copy()
        bad_hvs, labels, logits = self._poisoned()
        with pytest.warns(NumericsWarning):
            applied = trainer.step(bad_hvs, labels, teacher_logits=logits)
        assert not applied
        np.testing.assert_array_equal(trainer.class_matrix, before)

    def test_skip_policy_is_silent_and_preserves_model(self, recwarn):
        guard = NumericsGuard(policy="skip_batch")
        trainer = self._trained(guard)
        before = trainer.class_matrix.copy()
        bad_hvs, labels, logits = self._poisoned()
        applied = trainer.step(bad_hvs, labels, teacher_logits=logits)
        assert not applied
        assert len(recwarn) == 0
        assert guard.batches_skipped == 1
        np.testing.assert_array_equal(trainer.class_matrix, before)

    def test_nan_teacher_logits_caught_too(self):
        guard = NumericsGuard(policy="skip_batch")
        trainer = self._trained(guard)
        before = trainer.class_matrix.copy()
        hvs, labels, logits = make_batch(seed=3)
        logits[0, 0] = np.nan
        assert not trainer.step(hvs, labels, teacher_logits=logits)
        np.testing.assert_array_equal(trainer.class_matrix, before)

    def test_clean_batches_still_train(self):
        guard = NumericsGuard(policy="skip_batch")
        trainer = self._trained(guard)
        before = trainer.class_matrix.copy()
        hvs, labels, logits = make_batch(seed=4)
        assert trainer.step(hvs, labels, teacher_logits=logits)
        assert not np.array_equal(trainer.class_matrix, before)
        assert guard.batches_skipped == 0


class TestMassTrainerGuard:
    def test_fit_skips_poisoned_batches_but_converges(self):
        """A fraction of NaN samples in fit() must not poison M."""
        guard = NumericsGuard(policy="skip_batch")
        trainer = MassTrainer(3, 128, guard=guard)
        rng = fresh_rng(8)
        prototypes = rng.choice([-1.0, 1.0], size=(3, 128))
        labels = np.repeat(np.arange(3), 30)
        hvs = np.sign(prototypes[labels] +
                      rng.normal(0, 0.6, size=(90, 128)))
        hvs[hvs == 0] = 1.0
        hvs[::17] = np.nan  # ~6% poisoned rows
        trainer.fit(hvs, labels, epochs=3, batch_size=16, rng=fresh_rng(9))
        assert np.all(np.isfinite(trainer.class_matrix))
        assert guard.batches_skipped > 0


class TestManifoldGuard:
    def test_nan_update_vetoes_fc_step(self):
        from repro.hd.encoders import RandomProjectionEncoder
        guard = NumericsGuard(policy="skip_batch")
        learner = ManifoldLearner((4, 4, 4), out_features=6, lr=1e-2,
                                  rng=fresh_rng(2), guard=guard)
        rng = fresh_rng(7)
        feats = rng.normal(size=(20, 64))
        encoder = RandomProjectionEncoder(6, 32, fresh_rng(3))
        class_matrix = rng.normal(size=(3, 32))
        before_w = learner.fc.weight.data.copy()
        update = np.full((20, 3), np.nan)
        loss = learner.train_step(feats, update, encoder, class_matrix)
        assert loss == 0.0
        np.testing.assert_array_equal(learner.fc.weight.data, before_w)
        assert guard.batches_skipped == 1


class TestCNNTrainerGuard:
    def test_nan_images_never_reach_model_state(self):
        from repro.data import make_dataset
        x_tr, y_tr, _, _ = make_dataset(num_classes=3, num_train=48,
                                        num_test=6, seed=5)
        x_tr = x_tr.copy()
        x_tr[::7] = np.nan  # poisoned shards
        guard = NumericsGuard(policy="skip_batch")
        model = create_model("mobilenetv2", num_classes=3, width_mult=0.25,
                             seed=0)
        train_cnn(model, x_tr, y_tr, epochs=1, batch_size=8, augment=False,
                  guard=guard, seed=0)
        assert guard.batches_skipped > 0
        for param in model.parameters():
            assert np.all(np.isfinite(param.data))
        for _, buffer in model.named_buffers():
            assert np.all(np.isfinite(buffer))
