"""Tests for the stage-graph compiler: passes, executors, caching."""

import numpy as np
import pytest

from repro.hd.encoders import NonlinearEncoder, RandomProjectionEncoder
from repro.learn.manifold import ManifoldLearner
from repro.pipeline import (EXECUTORS, PASSES, ClassifyStage, CompileError,
                            CompilePlan, EncodeStage, FeatureScaler,
                            FusedEncodeStage, ManifoldReduceStage,
                            ScalePoolStage, ScaleStage, StageCache,
                            StageError, StageGraph, canonical_json,
                            compile_graph, resolve_passes, stage_from_spec)
from repro.learn.pipeline import VanillaHD
from repro.serve import ModelBundle
from repro.serve.__main__ import load_config
from repro.serve.bundle import BundleError
from repro.serve.engine import InferenceEngine
from repro.serve.server import ModelServer
from repro.telemetry import get_registry
from repro.utils.rng import fresh_rng


@pytest.fixture
def rng():
    return fresh_rng((0, "compile-tests"))


def _freeze(graph):
    return StageGraph.from_topology(graph.topology(),
                                    graph.state_arrays())


def _scale_encode_graph(rng, kind="random_projection", quantize=True,
                        features=12, dim=128, classes=5, rows=40,
                        binary_classes=True):
    """Frozen ``scale → encode → classify`` graph + a matching batch."""
    batch = rng.standard_normal((rows, features)) * 2.0 + 1.0
    scaler = FeatureScaler().fit(batch)
    if kind == "random_projection":
        encoder = RandomProjectionEncoder(features, dim,
                                          rng=fresh_rng(3),
                                          quantize=quantize)
    else:
        encoder = NonlinearEncoder(features, dim, rng=fresh_rng(3),
                                   quantize=quantize)
    if binary_classes:
        matrix = np.where(fresh_rng(4).random((classes, dim)) < 0.5,
                          -1.0, 1.0)
    else:
        matrix = fresh_rng(4).standard_normal((classes, dim))
    graph = StageGraph([ScaleStage(scaler), EncodeStage(encoder),
                        ClassifyStage(lambda: matrix, frozen=True)])
    return _freeze(graph), batch


def _scale_pool_graph(rng, shape=(4, 6, 6), out_features=5, rows=20):
    """Frozen ``scale → reduce(pooling)`` graph + a matching batch."""
    flat = int(np.prod(shape))
    batch = rng.standard_normal((rows, flat)) * 1.5 - 0.25
    scaler = FeatureScaler().fit(batch)
    learner = ManifoldLearner(shape, out_features=out_features,
                              rng=fresh_rng(11))
    graph = StageGraph([ScaleStage(scaler),
                        ManifoldReduceStage.from_learner(learner)])
    return _freeze(graph), batch


# ----------------------------------------------------------------------
# Fusion passes
# ----------------------------------------------------------------------
class TestFuseScaleEncode:
    @pytest.mark.parametrize("kind", ["random_projection", "nonlinear"])
    def test_labels_bit_exact(self, rng, kind):
        frozen, batch = _scale_encode_graph(rng, kind=kind)
        result = compile_graph(frozen, passes=["fuse_scale_encode"])
        assert result.passes_applied == ["fuse_scale_encode"]
        assert isinstance(result.graph.stages[0], FusedEncodeStage)
        assert result.graph.names == ["encode", "classify"]
        np.testing.assert_array_equal(result.graph.run(batch),
                                      frozen.run(batch))

    @pytest.mark.parametrize("kind", ["random_projection", "nonlinear"])
    def test_raw_encodings_within_tolerance(self, rng, kind):
        frozen, batch = _scale_encode_graph(rng, kind=kind,
                                            quantize=False)
        result = compile_graph(frozen, passes=["fuse_scale_encode"])
        want = frozen.run(batch, stop="classify")
        got = result.graph.run(batch, stop="classify")
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)

    def test_unfitted_scale_not_fused(self, rng):
        encoder = RandomProjectionEncoder(6, 32, rng=fresh_rng(1))
        graph = StageGraph([ScaleStage(), EncodeStage(encoder)])
        result = compile_graph(graph, passes=["fuse_scale_encode"])
        assert result.passes_applied == []
        assert result.graph is graph

    def test_input_graph_not_mutated(self, rng):
        frozen, _ = _scale_encode_graph(rng)
        names = list(frozen.names)
        compile_graph(frozen, passes="all")
        assert frozen.names == names
        assert isinstance(frozen.stages[0], ScaleStage)

    def test_fused_stage_roundtrips(self, rng):
        frozen, batch = _scale_encode_graph(rng, kind="nonlinear")
        compiled = compile_graph(frozen, passes="all").graph
        rebuilt = _freeze(compiled)
        np.testing.assert_array_equal(rebuilt.run(batch),
                                      compiled.run(batch))


class TestFusePool:
    def test_bit_exact(self, rng):
        frozen, batch = _scale_pool_graph(rng)
        result = compile_graph(frozen, passes=["fuse_pool"])
        assert result.passes_applied == ["fuse_pool"]
        assert isinstance(result.graph.stages[0], ScalePoolStage)
        assert result.graph.names == frozen.names  # boundary moves only
        assert not result.graph.stage("reduce").pooling
        np.testing.assert_array_equal(result.graph.run(batch),
                                      frozen.run(batch))

    def test_odd_spatial_dims_bit_exact(self, rng):
        frozen, batch = _scale_pool_graph(rng, shape=(2, 5, 7))
        compiled = compile_graph(frozen, passes=["fuse_pool"]).graph
        np.testing.assert_array_equal(compiled.run(batch),
                                      frozen.run(batch))

    def test_compiled_topology_roundtrips(self, rng):
        frozen, batch = _scale_pool_graph(rng)
        compiled = compile_graph(frozen, passes="all").graph
        rebuilt = _freeze(compiled)
        np.testing.assert_array_equal(rebuilt.run(batch),
                                      compiled.run(batch))


class TestFixedPoint:
    def test_recompiling_compiled_topology_is_identity(self, rng):
        frozen, _ = _scale_encode_graph(rng)
        compiled = compile_graph(frozen, passes="all").graph
        rebuilt = _freeze(compiled)
        again = compile_graph(rebuilt, passes="all")
        assert again.passes_applied == []
        assert again.graph.topology_json() == compiled.topology_json()

    def test_pool_fixed_point(self, rng):
        frozen, _ = _scale_pool_graph(rng)
        compiled = compile_graph(frozen, passes="all").graph
        again = compile_graph(_freeze(compiled), passes="all")
        assert again.passes_applied == []


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
class TestExecutors:
    def test_registry_contents(self):
        assert {"numpy", "threaded", "packed"} <= set(EXECUTORS)

    def test_threaded_encode_labels_exact(self, rng):
        frozen, batch = _scale_encode_graph(rng, rows=200)
        result = compile_graph(frozen, passes=None,
                               executors={"encode": "threaded"})
        assert result.executor_plan == {"encode": "threaded"}
        np.testing.assert_array_equal(result.graph.run(batch),
                                      frozen.run(batch))

    def test_threaded_raw_within_tolerance(self, rng):
        frozen, batch = _scale_encode_graph(rng, quantize=False,
                                            rows=200)
        compiled = compile_graph(frozen, passes=None,
                                 executors={"encode": "threaded"}).graph
        np.testing.assert_allclose(
            compiled.run(batch, stop="classify"),
            frozen.run(batch, stop="classify"), rtol=1e-9, atol=1e-9)

    def test_threaded_small_batch_falls_through(self, rng):
        frozen, batch = _scale_encode_graph(rng, rows=5)
        compiled = compile_graph(frozen, passes=None,
                                 executors={"encode": "threaded"}).graph
        np.testing.assert_array_equal(compiled.run(batch),
                                      frozen.run(batch))

    def test_threaded_composes_with_fusion(self, rng):
        frozen, batch = _scale_encode_graph(rng, rows=150)
        result = compile_graph(frozen, passes="all",
                               executors={"encode": "threaded"})
        assert result.passes_applied == ["fuse_scale_encode"]
        np.testing.assert_array_equal(result.graph.run(batch),
                                      frozen.run(batch))

    def test_packed_classify_bit_exact(self, rng):
        frozen, batch = _scale_encode_graph(rng)
        result = compile_graph(frozen, passes=None,
                               executors={"classify": "packed"})
        np.testing.assert_array_equal(result.graph.run(batch),
                                      frozen.run(batch))

    def test_packed_rejects_nonbipolar_classes(self, rng):
        frozen, _ = _scale_encode_graph(rng, binary_classes=False)
        with pytest.raises(CompileError, match="bipolar"):
            compile_graph(frozen, passes=None,
                          executors={"classify": "packed"})

    def test_executor_wrappers_are_serialization_transparent(self, rng):
        frozen, _ = _scale_encode_graph(rng)
        compiled = compile_graph(
            frozen, passes=None,
            executors={"encode": "threaded",
                       "classify": "packed"}).graph
        assert compiled.topology_json() == frozen.topology_json()
        assert compiled.topology_digest() == frozen.topology_digest()

    def test_unknown_stage_in_plan(self, rng):
        frozen, _ = _scale_encode_graph(rng)
        with pytest.raises(CompileError, match="unknown stage"):
            compile_graph(frozen, executors={"nope": "threaded"})

    def test_unknown_executor_in_plan(self, rng):
        frozen, _ = _scale_encode_graph(rng)
        with pytest.raises(CompileError, match="registered"):
            compile_graph(frozen, executors={"encode": "cuda"})

    def test_inapplicable_executor_explains_why(self, rng):
        frozen, _ = _scale_encode_graph(rng)
        with pytest.raises(CompileError, match="only applies to"):
            compile_graph(frozen, passes=None,
                          executors={"scale": "threaded"})

    def test_plan_checked_against_compiled_graph(self, rng):
        # Default passes="all" fuses scale away, so a plan keyed on the
        # pre-fusion stage name must fail against the compiled names.
        frozen, _ = _scale_encode_graph(rng)
        with pytest.raises(CompileError, match="unknown stage"):
            compile_graph(frozen, executors={"scale": "threaded"})

    def test_auto_selects_packed_for_quantizing_graph(self, rng):
        frozen, batch = _scale_encode_graph(rng)
        result = compile_graph(frozen, passes=None, executors="auto")
        assert result.executor_plan == {"classify": "packed"}
        np.testing.assert_array_equal(result.graph.run(batch),
                                      frozen.run(batch))

    def test_auto_refuses_unquantized_queries(self, rng):
        # Packed classify packs the *queries* too: a non-quantizing
        # encoder would misrank, so "auto" must not select it.
        frozen, _ = _scale_encode_graph(rng, quantize=False)
        result = compile_graph(frozen, passes=None, executors="auto")
        assert result.executor_plan == {}


# ----------------------------------------------------------------------
# Stage cache
# ----------------------------------------------------------------------
class TestStageCache:
    def test_second_run_hits(self, rng):
        frozen, batch = _scale_encode_graph(rng)
        cache = StageCache()
        first = frozen.run(batch, cache=cache)
        assert cache.hits == 0 and cache.misses == 2  # scale, encode
        second = frozen.run(batch, cache=cache)
        assert cache.hits == 2  # classify is not cacheable
        np.testing.assert_array_equal(second, first)

    def test_different_input_misses(self, rng):
        frozen, batch = _scale_encode_graph(rng)
        cache = StageCache()
        frozen.run(batch, cache=cache)
        frozen.run(batch + 1.0, cache=cache)
        assert cache.hits == 0

    def test_weight_change_invalidates(self, rng):
        frozen, batch = _scale_encode_graph(rng)
        cache = StageCache()
        before = frozen.run(batch, cache=cache)
        encode = frozen.stage("encode")
        encode.encoder.projection = -encode.encoder.projection
        after = frozen.run(batch, cache=cache)
        assert cache.hits <= 1  # scale may hit; encode chain must not
        assert not np.array_equal(after, before)

    def test_call_caches_single_stage(self, rng):
        frozen, batch = _scale_encode_graph(rng)
        cache = StageCache()
        first = frozen.call("scale", batch, cache=cache)
        second = frozen.call("scale", batch, cache=cache)
        assert cache.hits == 1
        np.testing.assert_array_equal(second, first)

    def test_classify_not_cached(self, rng):
        frozen, batch = _scale_encode_graph(rng)
        cache = StageCache()
        encoded = frozen.run(batch, stop="classify")
        frozen.call("classify", encoded, cache=cache)
        frozen.call("classify", encoded, cache=cache)
        assert cache.hits == 0 and len(cache) == 0

    def test_entry_bound_evicts_lru(self, rng):
        frozen, batch = _scale_encode_graph(rng)
        cache = StageCache(max_entries=1)
        frozen.run(batch, cache=cache)
        assert len(cache) == 1
        assert cache.evictions >= 1

    def test_oversized_value_not_stored(self):
        cache = StageCache(max_entries=4, max_bytes=64)
        cache.store(b"key", np.zeros(1024))
        assert len(cache) == 0

    def test_byte_bound_evicts(self):
        cache = StageCache(max_entries=16, max_bytes=2048)
        for i in range(4):
            cache.store(bytes([i]) * 4, np.zeros(128))  # 1 KiB each
        assert len(cache) <= 2
        assert cache.evictions >= 2

    def test_info_and_hit_rate(self, rng):
        frozen, batch = _scale_encode_graph(rng)
        cache = StageCache()
        frozen.run(batch, cache=cache)
        frozen.run(batch, cache=cache)
        info = cache.info()
        assert info["hits"] == 2 and info["misses"] == 2
        assert info["hit_rate"] == pytest.approx(0.5)
        assert cache.hit_rate() == pytest.approx(0.5)
        cache.clear()
        assert len(cache) == 0 and cache.info()["bytes"] == 0

    def test_metrics_emitted(self, rng):
        get_registry().reset()
        frozen, batch = _scale_encode_graph(rng)
        cache = StageCache()
        frozen.run(batch, cache=cache)
        frozen.run(batch, cache=cache)
        snapshot = get_registry().snapshot()
        assert snapshot["stagecache.hits"]["value"] == 2
        assert snapshot["stagecache.misses"]["value"] == 2

    def test_rejects_nonpositive_entries(self):
        with pytest.raises(ValueError):
            StageCache(max_entries=0)


# ----------------------------------------------------------------------
# Canonical topology emit
# ----------------------------------------------------------------------
class TestCanonicalJson:
    def test_sorted_compact_and_coerced(self):
        out = canonical_json({"b": np.int64(1), "a": np.float64(2.0)})
        assert out == '{"a":2.0,"b":1}'

    def test_negative_zero_normalized(self):
        assert canonical_json(-0.0) == canonical_json(0.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json(float("nan"))

    def test_unencodable_type_rejected(self):
        with pytest.raises(TypeError):
            canonical_json(object())

    def test_topology_json_deterministic(self, rng):
        a, _ = _scale_encode_graph(rng)
        b = _freeze(a)
        assert a.topology_json() == b.topology_json()
        assert a.topology_digest() == b.topology_digest()
        assert len(a.topology_digest()) == 40

    def test_topology_digest_tracks_spec_changes(self, rng):
        a, _ = _scale_encode_graph(rng, dim=64)
        b, _ = _scale_encode_graph(rng, dim=128)
        assert a.topology_digest() != b.topology_digest()


# ----------------------------------------------------------------------
# Plans, resolution, verification
# ----------------------------------------------------------------------
class TestCompilePlan:
    def test_roundtrip(self):
        plan = CompilePlan(passes=["fuse_pool"],
                           executors={"encode": "threaded"})
        clone = CompilePlan.from_dict(plan.to_dict())
        assert clone.passes == ["fuse_pool"]
        assert clone.executors == {"encode": "threaded"}

    def test_auto_executors_roundtrip(self):
        plan = CompilePlan(passes="all", executors="auto")
        clone = CompilePlan.from_dict(plan.to_dict())
        assert clone.executors == "auto"
        assert clone.passes == list(PASSES)

    def test_empty(self):
        assert CompilePlan().is_empty()
        assert CompilePlan.from_dict(None).is_empty()
        assert not CompilePlan(passes="all").is_empty()

    def test_unknown_pass_rejected(self):
        with pytest.raises(CompileError, match="registered"):
            CompilePlan(passes=["warp_drive"])

    def test_unknown_executor_rejected(self):
        with pytest.raises(CompileError, match="registered"):
            CompilePlan(executors={"encode": "cuda"})

    def test_malformed_executors_rejected(self):
        with pytest.raises(CompileError, match="executors must be"):
            CompilePlan(executors=42)


class TestResolvePasses:
    def test_all_is_canonical_order(self):
        assert resolve_passes("all") == list(PASSES)
        assert resolve_passes("all")[0] == "fuse_scale_encode"

    def test_none_variants(self):
        assert resolve_passes(None) == []
        assert resolve_passes("none") == []
        assert resolve_passes([]) == []

    def test_single_name_string(self):
        assert resolve_passes("fuse_pool") == ["fuse_pool"]

    def test_unknown_listed(self):
        with pytest.raises(CompileError, match="fuse_scale_encode"):
            resolve_passes(["bogus"])


class TestVerification:
    def test_verify_batch_passes_on_sound_compile(self, rng):
        frozen, batch = _scale_encode_graph(rng)
        result = compile_graph(frozen, passes="all", executors="auto",
                               verify_batch=batch)
        assert result.passes_applied == ["fuse_scale_encode"]

    def test_verify_batch_catches_unsound_pass(self, rng):
        frozen, batch = _scale_encode_graph(rng)

        def rot_classify(graph):
            matrix = np.roll(np.asarray(
                graph.stage("classify").class_matrix), 1, axis=0)
            stages = [ClassifyStage(lambda: matrix, frozen=True)
                      if s.name == "classify" else s
                      for s in graph.stages]
            return StageGraph(stages, name=graph.name)

        PASSES["_test_rot"] = rot_classify
        try:
            with pytest.raises(CompileError, match="disagrees"):
                compile_graph(frozen, passes=["_test_rot"],
                              verify_batch=batch)
        finally:
            del PASSES["_test_rot"]

    def test_compile_metrics(self, rng):
        get_registry().reset()
        frozen, _ = _scale_encode_graph(rng)
        compile_graph(frozen, passes="all", executors="auto")
        snapshot = get_registry().snapshot()
        assert snapshot["compile.runs"]["value"] == 1
        assert snapshot["compile.passes_applied"]["value"] == 1
        assert snapshot["compile.executors_bound"]["value"] == 1


# ----------------------------------------------------------------------
# Serving / pipeline integration
# ----------------------------------------------------------------------
class TestServeIntegration:
    def _features(self, n=24, features=32):
        return fresh_rng((1, "serve-compile")).standard_normal(
            (n, features))

    def test_precompile_bundle_defaults_to_empty_plan(
            self, synthetic_bundle):
        bundle = synthetic_bundle()
        assert bundle.compile_plan().is_empty()
        engine = InferenceEngine(bundle, build_extractor=False)
        assert engine.compile_passes == []

    def test_invalid_plan_in_bundle_fails_loudly(self, synthetic_bundle):
        bundle = synthetic_bundle()
        bundle.info["compile"] = {"passes": ["warp_drive"]}
        with pytest.raises(BundleError, match="invalid compile plan"):
            bundle.compile_plan()

    def test_engine_compile_bit_exact(self, synthetic_bundle):
        bundle = synthetic_bundle()
        plain = InferenceEngine(bundle, build_extractor=False,
                                cache_size=0, use_packed=False)
        compiled = InferenceEngine(bundle, build_extractor=False,
                                   cache_size=0, use_packed=False,
                                   passes="all")
        assert compiled.compile_passes == ["fuse_scale_encode"]
        x = self._features()
        np.testing.assert_array_equal(compiled.predict_features(x),
                                      plain.predict_features(x))

    def test_engine_executors_and_describe(self, synthetic_bundle):
        engine = InferenceEngine(synthetic_bundle(),
                                 build_extractor=False, cache_size=0,
                                 passes="all", executors="auto")
        assert engine.executor_plan.get("classify") == "packed"
        described = engine.describe()["compile"]
        assert described["passes"] == ["fuse_scale_encode"]
        assert described["executors"] == engine.executor_plan

    def test_engine_packed_backcompat_preserved(self, synthetic_bundle):
        # The tri-state use_packed contract survives compilation.
        engine = InferenceEngine(synthetic_bundle(),
                                 build_extractor=False, passes="all")
        assert engine.use_packed
        with pytest.raises(BundleError):
            InferenceEngine(synthetic_bundle(binary=False),
                            build_extractor=False, use_packed=True,
                            passes="all")

    def test_engine_stage_cache(self, synthetic_bundle):
        engine = InferenceEngine(synthetic_bundle(),
                                 build_extractor=False, cache_size=0,
                                 stage_cache_size=8)
        x = self._features()
        first = engine.predict_features(x)
        second = engine.predict_features(x)
        np.testing.assert_array_equal(second, first)
        info = engine.stage_cache_info()
        assert info["hits"] > 0

    def test_stage_cache_info_none_when_disabled(self, synthetic_bundle):
        engine = InferenceEngine(synthetic_bundle(),
                                 build_extractor=False)
        assert engine.stage_cache_info() is None

    def test_deep_health_reports_compile_vitals(self, synthetic_bundle):
        engine = InferenceEngine(synthetic_bundle(),
                                 build_extractor=False, cache_size=0,
                                 passes="all", stage_cache_size=4)
        with ModelServer(engine, port=0, workers=1) as server:
            vitals = server.health(deep=True)["engine_vitals"]
        assert vitals["compile_passes"] == ["fuse_scale_encode"]
        assert isinstance(vitals["executor_plan"], dict)
        assert vitals["stage_cache"]["max_entries"] == 4
        assert vitals["stage_cache_hit_rate"] is not None

    def test_deep_health_without_stage_cache(self, synthetic_bundle):
        engine = InferenceEngine(synthetic_bundle(),
                                 build_extractor=False)
        with ModelServer(engine, port=0, workers=1) as server:
            vitals = server.health(deep=True)["engine_vitals"]
        assert vitals["stage_cache"] is None
        assert vitals["stage_cache_hit_rate"] is None


class TestPipelineIntegration:
    def _fitted_vanilla(self):
        rng = fresh_rng((0, "vanilla-compile"))
        images = rng.random((40, 3, 8, 8)).astype(np.float64)
        labels = np.asarray(rng.integers(0, 3, 40))
        pipe = VanillaHD(num_classes=3, image_size=8, dim=96, seed=0)
        pipe.fit(images, labels, epochs=1)
        return pipe, images

    def test_bundle_from_pipeline_persists_plan(self):
        pipe, images = self._fitted_vanilla()
        bundle = ModelBundle.from_pipeline(pipe, compile_passes="all",
                                           compile_executors="auto")
        plan = bundle.compile_plan()
        assert plan.passes == list(PASSES)
        assert plan.executors == "auto"
        engine = InferenceEngine(bundle, cache_size=0)
        assert engine.compile_passes == ["fuse_scale_encode"]
        np.testing.assert_array_equal(engine.predict(images),
                                      pipe.predict(images))

    def test_pipeline_compiled_matches_predict(self):
        pipe, images = self._fitted_vanilla()
        graph = pipe.compiled(passes="all")
        np.testing.assert_array_equal(graph.run(images),
                                      pipe.predict(images))

    def test_pipeline_stage_cache_hits_on_refit_style_sweep(self):
        pipe, images = self._fitted_vanilla()
        want = pipe.predict(images)
        cache = StageCache()
        pipe.set_stage_cache(cache)
        try:
            pipe.predict(images)
            got = pipe.predict(images)
        finally:
            pipe.set_stage_cache(None)
        np.testing.assert_array_equal(got, want)
        assert cache.hits > 0


class TestCompileConfig:
    def test_compile_section_flattens(self, tmp_path):
        path = tmp_path / "serve.toml"
        path.write_text('[compile]\npasses = "all"\nstage_cache = 32\n'
                        '[compile.executors]\nencode = "threaded"\n')
        config = load_config(str(path))
        assert config["compile_passes"] == "all"
        assert config["compile_executors"] == {"encode": "threaded"}
        assert config["compile_stage_cache"] == 32

    def test_unknown_compile_key_rejected(self, tmp_path):
        path = tmp_path / "serve.toml"
        path.write_text('[compile]\njit = true\n')
        with pytest.raises(ValueError, match=r"compile\.jit"):
            load_config(str(path))

    def test_unknown_section_error_lists_compile(self, tmp_path):
        path = tmp_path / "serve.toml"
        path.write_text('[warp]\nspeed = 9\n')
        with pytest.raises(ValueError, match=r"\[compile\]"):
            load_config(str(path))


# ----------------------------------------------------------------------
# Error-message satellites
# ----------------------------------------------------------------------
class TestErrorMessages:
    def test_unknown_stage_type_lists_registered(self):
        with pytest.raises(StageError, match="encode_fused"):
            stage_from_spec({"type": "quantum", "name": "q"}, {})

    def test_unknown_encoder_type_lists_supported(self):
        spec = {"type": "encode", "name": "encode",
                "encoder": {"type": "holographic", "in_features": 4,
                            "dim": 8}}
        with pytest.raises(StageError,
                           match="random_projection.*nonlinear"
                                 "|nonlinear.*random_projection"):
            stage_from_spec(spec, {})
