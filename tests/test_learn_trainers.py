"""Tests for centroid, MASS and distillation trainers on controlled data."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hd import RandomProjectionEncoder
from repro.learn import DistillationTrainer, MassTrainer, train_centroids
from repro.learn.mass import normalized_similarity


def make_separable_hvs(num_classes=4, per_class=30, dim=512, noise=0.4,
                       seed=0):
    """Class-clustered hypervectors: prototypes + per-sample noise."""
    rng = np.random.default_rng(seed)
    prototypes = rng.choice([-1.0, 1.0], size=(num_classes, dim))
    labels = np.repeat(np.arange(num_classes), per_class)
    hvs = prototypes[labels] + rng.normal(0, noise * 2, size=(len(labels),
                                                              dim))
    return np.sign(hvs) + (np.sign(hvs) == 0), labels, prototypes


class TestCentroid:
    def test_sums_per_class(self):
        hvs = np.array([[1.0, 1], [1, -1], [-1, -1]])
        labels = np.array([0, 0, 1])
        m = train_centroids(hvs, labels, 2)
        np.testing.assert_allclose(m, [[2, 0], [-1, -1]])

    def test_empty_class_is_zero(self):
        m = train_centroids(np.ones((2, 4)), np.array([0, 0]), 3)
        np.testing.assert_allclose(m[1], np.zeros(4))
        np.testing.assert_allclose(m[2], np.zeros(4))

    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            train_centroids(np.ones((2, 4)), np.array([0]), 2)

    def test_label_range_validation(self):
        with pytest.raises(ValueError):
            train_centroids(np.ones((2, 4)), np.array([0, 5]), 2)

    def test_centroids_classify_clustered_data(self):
        hvs, labels, _ = make_separable_hvs()
        m = train_centroids(hvs, labels, 4)
        preds = normalized_similarity(m, hvs).argmax(axis=1)
        assert (preds == labels).mean() > 0.9


class TestNormalizedSimilarity:
    def test_self_similarity_is_one(self):
        hvs = np.random.default_rng(0).choice([-1.0, 1.0], size=(3, 64))
        sims = normalized_similarity(hvs, hvs)
        np.testing.assert_allclose(np.diag(sims), np.ones(3))

    def test_bounded(self):
        rng = np.random.default_rng(1)
        sims = normalized_similarity(rng.normal(size=(4, 32)),
                                     rng.normal(size=(6, 32)))
        assert np.all(np.abs(sims) <= 1.0 + 1e-12)

    def test_zero_rows_safe(self):
        sims = normalized_similarity(np.zeros((2, 8)), np.ones((1, 8)))
        assert np.all(np.isfinite(sims))


class TestMassTrainer:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            MassTrainer(1, 64)
        with pytest.raises(ValueError):
            MassTrainer(3, 0)

    def test_initialize_sets_centroids(self):
        hvs, labels, _ = make_separable_hvs()
        trainer = MassTrainer(4, hvs.shape[1])
        trainer.initialize(hvs, labels)
        np.testing.assert_allclose(trainer.class_matrix,
                                   train_centroids(hvs, labels, 4))

    def test_update_direction(self):
        """U must be positive for the true class when similarity < 1."""
        hvs, labels, _ = make_separable_hvs(per_class=5)
        trainer = MassTrainer(4, hvs.shape[1])
        trainer.initialize(hvs, labels)
        update = trainer.compute_update(hvs, labels)
        own = update[np.arange(len(labels)), labels]
        assert np.all(own > 0)

    def test_fit_improves_over_centroids(self):
        hvs, labels, _ = make_separable_hvs(noise=0.8, seed=3)
        trainer = MassTrainer(4, hvs.shape[1], lr=0.1)
        trainer.initialize(hvs, labels)
        before = trainer.accuracy(hvs, labels)
        trainer.fit(hvs, labels, epochs=10,
                    rng=np.random.default_rng(0))
        assert trainer.accuracy(hvs, labels) >= before

    def test_fit_reaches_high_train_accuracy(self):
        hvs, labels, _ = make_separable_hvs(noise=0.6, seed=4)
        trainer = MassTrainer(4, hvs.shape[1], lr=0.1)
        trainer.fit(hvs, labels, epochs=25, rng=np.random.default_rng(0))
        assert trainer.accuracy(hvs, labels) > 0.95

    def test_well_classified_samples_barely_move_model(self):
        """MASS's key property: update magnitude scales with error."""
        dim = 256
        rng = np.random.default_rng(5)
        proto = rng.choice([-1.0, 1.0], size=(2, dim))
        trainer = MassTrainer(2, dim)
        trainer.class_matrix = proto.copy()
        exact = proto[0:1]          # perfectly classified
        update_exact = trainer.compute_update(exact, np.array([0]))
        opposite = -proto[0:1]      # maximally wrong
        update_wrong = trainer.compute_update(opposite, np.array([0]))
        assert np.abs(update_wrong).sum() > np.abs(update_exact).sum()

    def test_generalizes_to_noisy_queries(self):
        hvs, labels, prototypes = make_separable_hvs(seed=6)
        trainer = MassTrainer(4, hvs.shape[1], lr=0.1)
        trainer.fit(hvs, labels, epochs=10, rng=np.random.default_rng(0))
        test_hvs, test_labels, _ = make_separable_hvs(seed=99)
        # Same prototypes requires same seed; rebuild queries from protos:
        rng = np.random.default_rng(100)
        queries = np.sign(prototypes[labels] +
                          rng.normal(0, 0.8, size=hvs.shape))
        assert trainer.accuracy(queries, labels) > 0.9

    def test_fit_history_keys(self):
        hvs, labels, _ = make_separable_hvs(per_class=5)
        trainer = MassTrainer(4, hvs.shape[1])
        history = trainer.fit(hvs, labels, epochs=3,
                              rng=np.random.default_rng(0))
        assert len(history["train_acc"]) == 3

    @given(st.integers(min_value=2, max_value=6),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_property_zero_update_at_perfect_similarity(self, k, seed):
        """If δ(M,H) is exactly one-hot, U = 0 and M is a fixed point."""
        dim = 128
        rng = np.random.default_rng(seed)
        protos = rng.choice([-1.0, 1.0], size=(k, dim))
        trainer = MassTrainer(k, dim)
        # Orthogonalize via Gram-Schmidt on random protos is overkill;
        # instead use disjoint supports so cosine(C_i, C_j) = 0 exactly.
        m = np.zeros((k, dim))
        block = dim // k
        for i in range(k):
            m[i, i * block:(i + 1) * block] = \
                protos[i, i * block:(i + 1) * block]
        trainer.class_matrix = m.copy()
        queries = m.copy()
        update = trainer.compute_update(queries, np.arange(k))
        np.testing.assert_allclose(update, np.zeros((k, k)), atol=1e-12)


class TestDistillationTrainer:
    def setup_problem(self, seed=0):
        hvs, labels, _ = make_separable_hvs(noise=0.8, seed=seed)
        rng = np.random.default_rng(seed + 1)
        # Teacher logits: mostly correct with confident margins.
        logits = rng.normal(0, 0.5, size=(len(labels), 4))
        logits[np.arange(len(labels)), labels] += 3.0
        return hvs, labels, logits

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            DistillationTrainer(4, 64, temperature=0.0)
        with pytest.raises(ValueError):
            DistillationTrainer(4, 64, alpha=1.5)

    def test_alpha_zero_equals_mass(self):
        hvs, labels, logits = self.setup_problem()
        mass = MassTrainer(4, hvs.shape[1], lr=0.1)
        kd = DistillationTrainer(4, hvs.shape[1], lr=0.1, alpha=0.0)
        mass.fit(hvs, labels, epochs=5, rng=np.random.default_rng(0))
        kd.fit_distilled(hvs, labels, logits, epochs=5,
                         rng=np.random.default_rng(0))
        np.testing.assert_allclose(kd.class_matrix, mass.class_matrix)

    def test_alpha_positive_requires_teacher(self):
        hvs, labels, _ = self.setup_problem()
        kd = DistillationTrainer(4, hvs.shape[1], alpha=0.5)
        kd.initialize(hvs, labels)
        with pytest.raises(ValueError):
            kd.compute_update(hvs, labels)

    def test_teacher_alignment_validation(self):
        hvs, labels, logits = self.setup_problem()
        kd = DistillationTrainer(4, hvs.shape[1], alpha=0.5)
        with pytest.raises(ValueError):
            kd.fit_distilled(hvs, labels, logits[:-1], epochs=1)

    def test_distilled_update_follows_teacher(self):
        """With α=1 the update direction tracks teacher probabilities."""
        dim = 256
        kd = DistillationTrainer(2, dim, alpha=1.0, temperature=2.0)
        kd.class_matrix = np.zeros((2, dim))
        hv = np.random.default_rng(7).choice([-1.0, 1.0], size=(1, dim))
        teacher = np.array([[5.0, -5.0]])  # teacher says class 0
        update = kd.compute_update(hv, np.array([1]), teacher_logits=teacher)
        assert update[0, 0] > update[0, 1]

    def test_distillation_learns_problem(self):
        hvs, labels, logits = self.setup_problem(seed=2)
        kd = DistillationTrainer(4, hvs.shape[1], lr=0.1, alpha=0.5,
                                 temperature=14.0)
        kd.fit_distilled(hvs, labels, logits, epochs=20,
                         rng=np.random.default_rng(0))
        assert kd.accuracy(hvs, labels) > 0.9

    def test_temperature_softens_teacher_distribution(self):
        """Higher t flattens the teacher targets (less confident), while
        Hinton's T^2 correction keeps the update magnitude commensurate
        (same order) instead of vanishing as 1/t^2."""
        hvs, labels, logits = self.setup_problem()

        def update(t):
            kd = DistillationTrainer(4, hvs.shape[1], alpha=1.0,
                                     temperature=t)
            kd.initialize(hvs, labels)
            return kd.compute_update(hvs[:5], labels[:5],
                                     teacher_logits=logits[:5])

        from repro.models import soften_logits
        sharp = soften_logits(logits[:5], 2.0)
        soft = soften_logits(logits[:5], 16.0)
        assert soft.max() < sharp.max()
        ratio = np.abs(update(16.0)).mean() / np.abs(update(2.0)).mean()
        assert 0.1 < ratio < 64.0  # commensurate, not 1/64th

    def test_kd_helps_with_noisy_labels(self):
        """Teacher knowledge should rescue corrupted ground truth — the
        mechanism behind Fig. 8's accuracy gains."""
        hvs, labels, logits = self.setup_problem(seed=5)
        rng = np.random.default_rng(11)
        noisy = labels.copy()
        flip = rng.random(len(labels)) < 0.35
        noisy[flip] = rng.integers(0, 4, size=flip.sum())

        mass = MassTrainer(4, hvs.shape[1], lr=0.05)
        mass.fit(hvs, noisy, epochs=15, rng=np.random.default_rng(0))
        kd = DistillationTrainer(4, hvs.shape[1], lr=0.05, alpha=0.7,
                                 temperature=4.0)
        kd.fit_distilled(hvs, noisy, logits, epochs=15,
                         rng=np.random.default_rng(0))
        assert kd.accuracy(hvs, labels) >= mass.accuracy(hvs, labels)
