"""MAD regression detector: property tests, gate semantics, reports."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.ledger import RunLedger, RunRecord
from repro.telemetry.regress import (DEFAULT_ACCURACY_SPEC,
                                     DEFAULT_STAGE_SPEC, GateSpec, MAD_SCALE,
                                     check_series, gate_run, mad,
                                     rolling_baseline, tolerance,
                                     with_threshold)

SPEC = GateSpec(direction="lower", mad_k=5.0, rel_floor=0.30,
                abs_floor=0.02, min_history=3, window=10)


class TestMad:
    def test_empty_is_zero(self):
        assert mad([]) == 0.0

    def test_constant_is_zero(self):
        assert mad([2.0, 2.0, 2.0]) == 0.0

    def test_known_value(self):
        # median=3, deviations [2,1,0,1,2] -> median 1.
        assert mad([1, 2, 3, 4, 5]) == 1.0

    def test_robust_to_one_outlier(self):
        assert mad([1.0, 1.0, 1.0, 1.0, 100.0]) == 0.0


class TestSpecValidation:
    def test_bad_direction(self):
        with pytest.raises(ValueError, match="direction"):
            GateSpec(direction="sideways")

    def test_negative_floor(self):
        with pytest.raises(ValueError):
            GateSpec(rel_floor=-0.1)

    def test_with_threshold_overrides(self):
        spec = with_threshold(DEFAULT_STAGE_SPEC, mad_k=2.0)
        assert spec.mad_k == 2.0
        assert spec.rel_floor == DEFAULT_STAGE_SPEC.rel_floor


class TestRollingBaseline:
    def test_window_takes_newest(self):
        stats = rolling_baseline([100.0] * 5 + [1.0] * 10, window=10)
        assert stats["median"] == 1.0
        assert stats["count"] == 10

    def test_empty(self):
        stats = rolling_baseline([], window=10)
        assert math.isnan(stats["median"]) and stats["count"] == 0


class TestCheckSeries:
    def test_insufficient_history_passes(self):
        result = check_series("stage.extract", [1.0, 1.0], 50.0, SPEC)
        assert result.status == "insufficient_history"
        assert result.passed

    def test_non_finite_baseline_values_dropped(self):
        result = check_series("stage.extract",
                              [1.0, math.nan, 1.0, math.inf, 1.0],
                              1.0, SPEC)
        assert result.status == "pass"
        assert result.history == 3

    def test_non_finite_current_fails_when_armed(self):
        result = check_series("stage.extract", [1.0, 1.0, 1.0],
                              math.nan, SPEC)
        assert result.status == "fail"

    def test_higher_direction_accuracy(self):
        spec = GateSpec(direction="higher", mad_k=5.0, rel_floor=0.08,
                        abs_floor=0.03, min_history=3)
        base = [0.80, 0.82, 0.81]
        ok = check_series("final_accuracy", base, 0.79, spec)
        assert ok.status == "pass"
        bad = check_series("final_accuracy", base, 0.50, spec)
        assert bad.status == "fail"
        assert bad.limit == pytest.approx(0.81 - bad.tolerance)

    # -- property tests ------------------------------------------------
    @given(median=st.floats(min_value=0.01, max_value=100.0),
           n=st.integers(min_value=3, max_value=10),
           jitter=st.floats(min_value=0.0, max_value=0.999))
    @settings(max_examples=200, deadline=None)
    def test_no_false_positive_below_threshold(self, median, n, jitter):
        """Constant baseline + any current within the band must pass."""
        baseline = [median] * n
        band = tolerance(baseline, SPEC)
        # band = max(0, rel_floor*median, abs_floor) > 0 always.
        current = median + jitter * band
        result = check_series("m", baseline, current, SPEC)
        assert result.status == "pass", result.to_dict()

    @given(median=st.floats(min_value=0.01, max_value=100.0),
           n=st.integers(min_value=3, max_value=10),
           excess=st.floats(min_value=1.001, max_value=100.0))
    @settings(max_examples=200, deadline=None)
    def test_guaranteed_detection_above_threshold(self, median, n, excess):
        """Any current strictly beyond the band must fail."""
        baseline = [median] * n
        band = tolerance(baseline, SPEC)
        current = median + excess * band
        if current <= median + band:  # float rounding at tiny excess
            current = np.nextafter(median + band, math.inf)
        result = check_series("m", baseline, current, SPEC)
        assert result.status == "fail", result.to_dict()

    @given(values=st.lists(st.floats(min_value=0.5, max_value=2.0),
                           min_size=3, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_median_of_baseline_always_passes(self, values):
        """Re-running exactly at the baseline median never regresses."""
        stats = rolling_baseline(values, SPEC.window)
        result = check_series("m", values, stats["median"], SPEC)
        assert result.status == "pass"

    @given(median=st.floats(min_value=0.01, max_value=100.0),
           noise=st.floats(min_value=0.0, max_value=0.05))
    @settings(max_examples=100, deadline=None)
    def test_mad_band_scales_with_noise(self, median, noise):
        """Symmetric ±noise jitter keeps current = median+noise passing."""
        baseline = [median - noise, median, median + noise] * 2
        band = tolerance(baseline, SPEC)
        # MAD term alone covers one noise step: 5 * 1.4826 * noise.
        assert band >= min(SPEC.mad_k * MAD_SCALE * noise,
                           band)  # sanity: band is the max of terms
        result = check_series("m", baseline, median + noise, SPEC)
        assert result.status == "pass"


# ----------------------------------------------------------------------
# gate_run on a synthetic ledger
# ----------------------------------------------------------------------
def synth_record(extract=1.0, acc=0.8, wall=2.0, dim=400, pipeline="nshd"):
    return RunRecord(
        pipeline=pipeline, config={"dim": dim, "seed": 0}, seed=0,
        wall_s=wall,
        stage_times={"extract": extract, "encode": 0.05,
                     "similarity": 0.01, "update": 0.02},
        stage_calls={"extract": 1, "encode": 5, "similarity": 15,
                     "update": 15},
        final_accuracy=acc, test_accuracy=acc - 0.05)


@pytest.fixture
def seeded_ledger(tmp_path):
    ledger = RunLedger(str(tmp_path / "ledger"))
    for extract, acc in ((1.00, 0.80), (1.05, 0.82), (0.95, 0.81)):
        ledger.append(synth_record(extract=extract, acc=acc))
    return ledger


class TestGateRun:
    def test_bootstrap_passes_on_empty_ledger(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        report = gate_run(ledger, synth_record())
        assert report.passed
        assert all(r.status in ("insufficient_history", "skipped")
                   for r in report.results)

    def test_unchanged_run_passes(self, seeded_ledger):
        report = gate_run(seeded_ledger, synth_record())
        assert report.passed
        by_metric = {r.metric: r for r in report.results}
        assert by_metric["stage.extract"].status == "pass"
        assert by_metric["final_accuracy"].status == "pass"
        assert by_metric["wall_s"].status == "pass"

    def test_3x_stage_slowdown_fails(self, seeded_ledger):
        report = gate_run(seeded_ledger, synth_record(extract=3.0))
        assert not report.passed
        failures = {r.metric for r in report.failures}
        assert "stage.extract" in failures
        # Other stages unaffected.
        by_metric = {r.metric: r for r in report.results}
        assert by_metric["stage.encode"].status == "pass"

    def test_accuracy_collapse_fails(self, seeded_ledger):
        report = gate_run(seeded_ledger, synth_record(acc=0.40))
        failures = {r.metric for r in report.failures}
        assert "final_accuracy" in failures

    def test_different_config_not_compared(self, seeded_ledger):
        # Same pipeline but a different dim: no comparable history.
        report = gate_run(seeded_ledger, synth_record(extract=50.0,
                                                      dim=3000))
        assert report.passed
        assert all(r.status == "insufficient_history"
                   for r in report.results)

    def test_own_run_excluded_from_baseline(self, seeded_ledger):
        record = synth_record(extract=3.0)
        seeded_ledger.append(record)  # appended *before* gating
        report = gate_run(seeded_ledger, record)
        assert not report.passed  # its own 3.0 must not dilute baseline

    def test_stage_order_in_report(self, seeded_ledger):
        report = gate_run(seeded_ledger, synth_record())
        stage_metrics = [r.metric for r in report.results
                         if r.metric.startswith("stage.")]
        assert stage_metrics == ["stage.extract", "stage.encode",
                                 "stage.similarity", "stage.update"]

    def test_explicit_missing_stage_skipped(self, seeded_ledger):
        report = gate_run(seeded_ledger, synth_record(),
                          stages=["extract", "manifold"])
        by_metric = {r.metric: r for r in report.results}
        assert by_metric["stage.manifold"].status == "skipped"
        assert report.passed  # skipped is not a failure


class TestGateReport:
    def test_markdown_pass(self, seeded_ledger):
        report = gate_run(seeded_ledger, synth_record())
        text = report.to_markdown()
        assert "**PASS**" in text
        assert "stage.extract" in text
        assert "✅ pass" in text

    def test_markdown_fail(self, seeded_ledger):
        report = gate_run(seeded_ledger, synth_record(extract=3.0))
        text = report.to_markdown()
        assert "**FAIL**" in text
        assert "❌ FAIL" in text

    def test_to_dict_round_trips_json(self, seeded_ledger):
        import json
        report = gate_run(seeded_ledger, synth_record())
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["passed"] is True
        assert payload["pipeline"] == "nshd"
        assert len(payload["results"]) == len(report.results)
