"""Unit + property tests for hypervector algebra and similarity metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import hd


def rng(seed=0):
    return np.random.default_rng(seed)


class TestCreation:
    def test_bipolar_values(self):
        hvs = hd.random_bipolar(10, 256, rng())
        assert hvs.shape == (10, 256)
        assert set(np.unique(hvs)) <= {-1.0, 1.0}

    def test_bipolar_balance(self):
        hvs = hd.random_bipolar(1, 100_000, rng())
        assert abs(hvs.mean()) < 0.02

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            hd.random_bipolar(0, 10)
        with pytest.raises(ValueError):
            hd.random_gaussian(10, 0)

    def test_quasi_orthogonality_statistics(self):
        """Random HV pairs overlap in D/2 bits with std sqrt(D/4) (Sec. II)."""
        dim = 4096
        hvs = hd.random_bipolar(200, dim, rng(1))
        a, b = hvs[:100], hvs[100:]
        overlaps = ((a * b) > 0).sum(axis=1)
        assert abs(overlaps.mean() - dim / 2) < 5 * hd.expected_overlap_std(dim)
        observed_std = overlaps.std()
        assert 0.6 * hd.expected_overlap_std(dim) < observed_std < \
            1.5 * hd.expected_overlap_std(dim)

    def test_is_bipolar(self):
        assert hd.is_bipolar(np.array([1.0, -1.0, 1.0]))
        assert not hd.is_bipolar(np.array([1.0, 0.5]))


class TestAlgebra:
    def test_bind_self_inverse(self):
        a = hd.random_bipolar(1, 128, rng(2))[0]
        b = hd.random_bipolar(1, 128, rng(3))[0]
        np.testing.assert_allclose(hd.bind(hd.bind(a, b), b), a)

    def test_bind_orthogonal_to_inputs(self):
        dim = 8192
        a = hd.random_bipolar(1, dim, rng(4))[0]
        b = hd.random_bipolar(1, dim, rng(5))[0]
        bound = hd.bind(a, b)
        assert abs(np.dot(bound, a)) < 4 * np.sqrt(dim)
        assert abs(np.dot(bound, b)) < 4 * np.sqrt(dim)

    def test_bundle_similar_to_inputs(self):
        dim = 8192
        hvs = hd.random_bipolar(5, dim, rng(6))
        composite = hd.bundle(hvs)
        for hv in hvs:
            assert np.dot(composite, hv) > dim / 2  # far above noise floor

    def test_bundle_varargs(self):
        a = np.ones(4)
        b = -np.ones(4)
        np.testing.assert_allclose(hd.bundle(a, b), np.zeros(4))

    def test_bundle_requires_input(self):
        with pytest.raises(ValueError):
            hd.bundle()

    def test_permute_roundtrip(self):
        a = hd.random_bipolar(1, 64, rng(7))[0]
        np.testing.assert_allclose(hd.permute(hd.permute(a, 3), -3), a)

    def test_permute_decorrelates(self):
        dim = 8192
        a = hd.random_bipolar(1, dim, rng(8))[0]
        assert abs(np.dot(a, hd.permute(a))) < 4 * np.sqrt(dim)

    def test_hard_quantize(self):
        np.testing.assert_allclose(hd.hard_quantize(np.array([-0.2, 0.0, 3.0])),
                                   [-1.0, 1.0, 1.0])

    @given(st.integers(min_value=2, max_value=64),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_bind_commutative(self, dim, seed):
        g = np.random.default_rng(seed)
        a = hd.random_bipolar(1, dim, g)[0]
        b = hd.random_bipolar(1, dim, g)[0]
        np.testing.assert_allclose(hd.bind(a, b), hd.bind(b, a))

    @given(st.integers(min_value=2, max_value=64),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_bind_distributes_over_bundle(self, dim, seed):
        g = np.random.default_rng(seed)
        a, b, c = hd.random_bipolar(3, dim, g)
        left = hd.bind(a, hd.bundle(b, c))
        right = hd.bundle(hd.bind(a, b), hd.bind(a, c))
        np.testing.assert_allclose(left, right)

    @given(st.integers(min_value=1, max_value=32),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_permute_preserves_norm(self, shift, seed):
        g = np.random.default_rng(seed)
        a = g.normal(size=64)
        assert np.linalg.norm(hd.permute(a, shift)) == pytest.approx(
            np.linalg.norm(a))


class TestSimilarity:
    def test_dot_single_query(self):
        m = np.array([[1.0, 1.0], [1.0, -1.0]])
        q = np.array([1.0, 1.0])
        np.testing.assert_allclose(hd.dot_similarity(m, q), [2.0, 0.0])

    def test_dot_batch(self):
        m = np.eye(3)
        q = np.array([[1.0, 0, 0], [0, 2.0, 0]])
        sims = hd.dot_similarity(m, q)
        assert sims.shape == (2, 3)
        np.testing.assert_allclose(sims[0], [1.0, 0, 0])

    def test_cosine_bounds(self):
        m = hd.random_bipolar(4, 512, rng(9))
        q = hd.random_bipolar(6, 512, rng(10))
        sims = hd.cosine_similarity(m, q)
        assert np.all(sims <= 1.0 + 1e-12) and np.all(sims >= -1.0 - 1e-12)

    def test_cosine_self_similarity(self):
        a = hd.random_bipolar(3, 128, rng(11))
        sims = hd.cosine_similarity(a, a)
        np.testing.assert_allclose(np.diag(sims), np.ones(3))

    def test_cosine_zero_vector_safe(self):
        m = np.zeros((2, 8))
        q = np.ones((1, 8))
        sims = hd.cosine_similarity(m, q)
        assert np.all(np.isfinite(sims))

    def test_hamming_identical_is_one(self):
        a = hd.random_bipolar(2, 64, rng(12))
        sims = hd.hamming_similarity(a, a)
        np.testing.assert_allclose(np.diag(sims), [1.0, 1.0])

    def test_hamming_opposite_is_zero(self):
        a = hd.random_bipolar(1, 64, rng(13))
        np.testing.assert_allclose(hd.hamming_similarity(a, -a), [[0.0]])

    def test_classify_picks_most_similar(self):
        classes = hd.random_bipolar(5, 2048, rng(14))
        noisy = classes.copy()
        flip = rng(15).choice(2048, size=200, replace=False)
        noisy[:, flip] *= -1
        preds = hd.classify(classes, noisy)
        np.testing.assert_array_equal(preds, np.arange(5))

    def test_classify_metric_validation(self):
        with pytest.raises(ValueError):
            hd.classify(np.eye(2), np.ones(2), metric="euclid")

    @given(st.integers(min_value=2, max_value=10),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_property_classify_consistent_across_metrics_for_bipolar(
            self, k, seed):
        """For same-norm bipolar vectors, dot and hamming rank identically."""
        g = np.random.default_rng(seed)
        classes = hd.random_bipolar(k, 256, g)
        queries = hd.random_bipolar(5, 256, g)
        np.testing.assert_array_equal(
            hd.classify(classes, queries, metric="dot"),
            hd.classify(classes, queries, metric="hamming"))
