"""Unit tests for the stage library and StageGraph serialization."""

import numpy as np
import pytest

from repro.hd.backend import pack_bipolar
from repro.hd.encoders import NonlinearEncoder, RandomProjectionEncoder
from repro.hd.similarity import classify, packed_classify
from repro.learn.manifold import ManifoldLearner
from repro.learn.mass import normalized_similarity
from repro.pipeline import (STAGE_TYPES, ClassifyStage, EncodeStage,
                            FeatureScaler, FlattenStage, ManifoldReduceStage,
                            PackedClassifyStage, ScaleStage, Stage,
                            StageError, StageGraph, clamped_norms,
                            cosine_similarities, encoder_spec,
                            register_stage, stage_from_spec)
from repro.utils.rng import fresh_rng


@pytest.fixture
def rng():
    return fresh_rng((0, "stage-tests"))


# ----------------------------------------------------------------------
# Shared math helpers
# ----------------------------------------------------------------------
class TestSharedMath:
    def test_clamped_norms_floor(self):
        matrix = np.vstack([np.zeros(8), np.full(8, 2.0)])
        norms = clamped_norms(matrix)
        assert norms[0] == 1.0  # degenerate row clamps to 1, not 0
        assert norms[1] == pytest.approx(np.linalg.norm(matrix[1]))

    def test_cosine_matches_trainer_similarity_bitwise(self, rng):
        matrix = rng.standard_normal((5, 64))
        queries = rng.standard_normal((7, 64))
        ours = cosine_similarities(matrix, queries)
        theirs = normalized_similarity(matrix, queries)
        np.testing.assert_array_equal(ours, theirs)

    def test_precomputed_norms_change_nothing(self, rng):
        matrix = rng.standard_normal((4, 32))
        queries = rng.standard_normal((3, 32))
        np.testing.assert_array_equal(
            cosine_similarities(matrix, queries),
            cosine_similarities(matrix, queries,
                                class_norms=clamped_norms(matrix)))


# ----------------------------------------------------------------------
# Individual stages
# ----------------------------------------------------------------------
class TestFlattenStage:
    def test_flattens_images(self, rng):
        stage = FlattenStage()
        batch = rng.standard_normal((5, 3, 8, 8))
        assert stage(batch).shape == (5, 192)

    def test_roundtrip(self):
        stage = FlattenStage()
        clone = stage_from_spec(stage.spec(), {})
        assert isinstance(clone, FlattenStage)
        assert clone.name == stage.name


class TestScaleStage:
    def test_matches_feature_scaler(self, rng):
        features = rng.standard_normal((20, 6)) * 3 + 1
        scaler = FeatureScaler().fit(features)
        stage = ScaleStage(scaler)
        np.testing.assert_array_equal(stage(features),
                                      scaler.transform(features))

    def test_roundtrip(self, rng):
        features = rng.standard_normal((10, 4))
        stage = ScaleStage(FeatureScaler().fit(features))
        clone = stage_from_spec(stage.spec(), stage.state_arrays())
        np.testing.assert_array_equal(clone(features), stage(features))

    def test_unfitted_scaler_has_no_arrays(self):
        assert ScaleStage().state_arrays() == {}

    def test_missing_arrays_raise(self):
        with pytest.raises(StageError, match="scaler.mean"):
            stage_from_spec({"type": "scale", "name": "scale"}, {})


class TestManifoldReduceStage:
    @pytest.mark.parametrize("shape", [
        (4, 6, 6),   # even spatial dims, pooling
        (2, 5, 7),   # odd spatial dims exercise the crop-to-even
        (3, 1, 1),   # degenerate spatial dims: pooling disabled
    ])
    def test_matches_manifold_learner(self, rng, shape):
        learner = ManifoldLearner(shape, out_features=5,
                                  rng=fresh_rng(11))
        stage = ManifoldReduceStage.from_learner(learner)
        features = rng.standard_normal((6, int(np.prod(shape))))
        np.testing.assert_array_equal(stage(features),
                                      learner.transform(features))

    def test_live_stage_sees_weight_updates(self, rng):
        learner = ManifoldLearner((2, 4, 4), out_features=3,
                                  rng=fresh_rng(1))
        stage = ManifoldReduceStage.from_learner(learner)
        features = rng.standard_normal((4, 32))
        before = stage(features)
        learner.fc.weight.data = learner.fc.weight.data * 2.0
        after = stage(features)
        assert not np.array_equal(before, after)
        np.testing.assert_array_equal(after, learner.transform(features))

    def test_roundtrip(self, rng):
        learner = ManifoldLearner((2, 4, 4), out_features=3,
                                  rng=fresh_rng(2))
        stage = ManifoldReduceStage.from_learner(learner)
        clone = stage_from_spec(stage.spec(), stage.state_arrays())
        features = rng.standard_normal((5, 32))
        np.testing.assert_array_equal(clone(features), stage(features))

    def test_bad_feature_shape(self):
        with pytest.raises(ValueError, match="C, H, W"):
            ManifoldReduceStage((4, 4), 2, True, weight_fn=lambda: None)


class TestEncodeStage:
    def test_random_projection_parity(self, rng):
        encoder = RandomProjectionEncoder(8, 64, rng=fresh_rng(0))
        stage = EncodeStage(encoder)
        features = rng.standard_normal((5, 8))
        np.testing.assert_array_equal(stage(features),
                                      encoder.encode(features))
        assert stage.encoder_type == "random_projection"
        assert stage.quantize is True

    def test_nonlinear_parity(self, rng):
        encoder = NonlinearEncoder(8, 64, rng=fresh_rng(0))
        stage = EncodeStage(encoder)
        features = rng.standard_normal((5, 8))
        np.testing.assert_array_equal(stage(features),
                                      encoder.encode(features))
        assert stage.encoder_type == "nonlinear"

    @pytest.mark.parametrize("make", [
        lambda: RandomProjectionEncoder(6, 32, rng=fresh_rng(3)),
        lambda: RandomProjectionEncoder(6, 32, rng=fresh_rng(3), quantize=False),
        lambda: NonlinearEncoder(6, 32, rng=fresh_rng(3)),
    ])
    def test_roundtrip(self, rng, make):
        stage = EncodeStage(make())
        clone = stage_from_spec(stage.spec(), stage.state_arrays())
        features = rng.standard_normal((4, 6))
        np.testing.assert_array_equal(clone(features), stage(features))
        assert clone.quantize == stage.quantize
        assert clone.encoder_type == stage.encoder_type

    def test_from_arrays_does_not_rerandomize(self):
        encoder = RandomProjectionEncoder(4, 16, rng=fresh_rng(9))
        rebuilt = RandomProjectionEncoder.from_arrays(encoder.projection)
        np.testing.assert_array_equal(rebuilt.projection,
                                      encoder.projection)

    def test_unknown_encoder_type_raises(self):
        with pytest.raises(StageError, match="unknown encoder type"):
            stage_from_spec({"type": "encode", "name": "encode",
                             "encoder": {"type": "fourier"}}, {})

    def test_unsupported_encoder_instance_raises(self):
        class WeirdEncoder:
            quantize = False

        with pytest.raises(StageError, match="cannot serialize"):
            encoder_spec(WeirdEncoder())


class TestClassifyStage:
    def test_matches_normalized_similarity(self, rng):
        matrix = rng.standard_normal((6, 128))
        stage = ClassifyStage.from_matrix(matrix)
        queries = rng.standard_normal((9, 128))
        np.testing.assert_array_equal(
            stage.similarities(queries),
            normalized_similarity(matrix, queries))
        np.testing.assert_array_equal(
            stage(queries),
            normalized_similarity(matrix, queries).argmax(axis=1))

    def test_live_stage_tracks_trainer_matrix(self, rng):
        class FakeTrainer:
            class_matrix = rng.standard_normal((3, 32))

        trainer = FakeTrainer()
        stage = ClassifyStage.from_trainer(trainer)
        queries = rng.standard_normal((4, 32))
        before = stage.similarities(queries)
        trainer.class_matrix = rng.standard_normal((3, 32))
        after = stage.similarities(queries)
        assert not np.array_equal(before, after)
        np.testing.assert_array_equal(
            after, normalized_similarity(trainer.class_matrix, queries))

    def test_frozen_caches_norms(self, rng):
        matrix = rng.standard_normal((3, 16))
        stage = ClassifyStage.from_matrix(matrix)
        assert stage.frozen
        assert stage._norms is not None
        np.testing.assert_array_equal(stage._norms, clamped_norms(matrix))

    def test_roundtrip(self, rng):
        matrix = rng.standard_normal((4, 64))
        stage = ClassifyStage.from_matrix(matrix)
        clone = stage_from_spec(stage.spec(), stage.state_arrays())
        queries = rng.standard_normal((5, 64))
        np.testing.assert_array_equal(clone.similarities(queries),
                                      stage.similarities(queries))


class TestPackedClassifyStage:
    def test_matches_float_dot_on_bipolar(self, rng):
        matrix = np.where(rng.random((5, 256)) < 0.5, -1.0, 1.0)
        queries = np.where(rng.random((16, 256)) < 0.5, -1.0, 1.0)
        stage = PackedClassifyStage.from_class_matrix(matrix)
        np.testing.assert_array_equal(stage(queries),
                                      classify(matrix, queries,
                                               metric="dot"))

    def test_from_classify(self, rng):
        matrix = np.where(rng.random((3, 64)) < 0.5, -1.0, 1.0)
        frozen = ClassifyStage.from_matrix(matrix)
        stage = PackedClassifyStage.from_classify(frozen)
        np.testing.assert_array_equal(stage.packed_classes,
                                      pack_bipolar(matrix))

    def test_not_registered_for_topology(self):
        # An execution variant, not a persisted stage type.
        assert "classify_packed" not in STAGE_TYPES


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_types_registered(self):
        for stage_type in ("flatten", "extract", "scale", "reduce",
                           "encode", "classify"):
            assert stage_type in STAGE_TYPES

    def test_unknown_type_raises(self):
        with pytest.raises(StageError, match="unknown stage type"):
            stage_from_spec({"type": "quantum", "name": "q"}, {})

    def test_register_stage_decorator(self):
        @register_stage
        class NoopStage(Stage):
            stage_type = "test_noop"

            def __call__(self, batch, ctx=None):
                return batch

            @classmethod
            def from_spec(cls, spec, arrays):
                return cls(spec.get("name", "noop"))

        try:
            stage = stage_from_spec({"type": "test_noop", "name": "n"}, {})
            assert isinstance(stage, NoopStage)
        finally:
            del STAGE_TYPES["test_noop"]


# ----------------------------------------------------------------------
# StageGraph
# ----------------------------------------------------------------------
def _tiny_graph(rng, features=6, dim=64, classes=3):
    data = rng.standard_normal((20, features))
    scaler = FeatureScaler().fit(data)
    encoder = RandomProjectionEncoder(features, dim, rng=fresh_rng(0))
    matrix = np.where(rng.random((classes, dim)) < 0.5, -1.0, 1.0)
    graph = StageGraph([ScaleStage(scaler), EncodeStage(encoder),
                        ClassifyStage.from_matrix(matrix)], name="tiny")
    return graph, data


class TestStageGraph:
    def test_introspection(self, rng):
        graph, _ = _tiny_graph(rng)
        assert graph.names == ["scale", "encode", "classify"]
        assert len(graph) == 3
        assert "encode" in graph
        assert "extract" not in graph
        assert graph.describe() == "scale -> encode -> classify"
        assert [s.name for s in graph] == graph.names

    def test_duplicate_names_rejected(self):
        with pytest.raises(StageError, match="duplicate"):
            StageGraph([FlattenStage("x"), FlattenStage("x")])

    def test_empty_graph_rejected(self):
        with pytest.raises(StageError, match="at least one"):
            StageGraph([])

    def test_unknown_stage_raises_with_names(self, rng):
        graph, _ = _tiny_graph(rng)
        with pytest.raises(StageError, match="no stage 'reduce'"):
            graph.stage("reduce")
        with pytest.raises(StageError, match="no stage 'reduce'"):
            graph.run(np.zeros((1, 6)), start="reduce")

    def test_backwards_slice_rejected(self, rng):
        graph, data = _tiny_graph(rng)
        with pytest.raises(StageError, match="after"):
            graph.run(data, start="classify", stop="scale")

    def test_run_equals_manual_composition(self, rng):
        graph, data = _tiny_graph(rng)
        manual = data
        for stage in graph:
            manual = stage(manual)
        np.testing.assert_array_equal(graph.run(data), manual)

    def test_slice_semantics_stop_exclusive(self, rng):
        graph, data = _tiny_graph(rng)
        encoded = graph.run(data, stop="classify")
        assert encoded.shape[1] == 64  # stopped before classify
        labels = graph.run(encoded, start="classify")
        np.testing.assert_array_equal(labels, graph.run(data))

    @staticmethod
    def _traced(fn):
        from repro.telemetry import Tracer, get_tracer, set_tracer

        tracer = Tracer()
        previous = get_tracer()
        set_tracer(tracer)
        try:
            fn()
        finally:
            set_tracer(previous)
        return {child.name for child in tracer.root.children.values()}

    def test_call_emits_stage_span(self, rng):
        graph, data = _tiny_graph(rng)
        names = self._traced(
            lambda: graph.call("encode", graph.call("scale", data)))
        assert "stage.scale" in names
        assert "stage.encode" in names

    def test_run_uninstrumented_by_default(self, rng):
        graph, data = _tiny_graph(rng)
        names = self._traced(lambda: graph.run(data))
        # stages emit no spans; the encoder's own hd.encode.* span (part
        # of the encoder, not the graph runner) is the only survivor.
        assert not any(name.startswith("stage.") for name in names)

    def test_run_instrumented_emits_all_spans(self, rng):
        graph, data = _tiny_graph(rng)
        names = self._traced(lambda: graph.run(data, instrument=True))
        # classify's span uses the historical "stage.similarity" name
        assert {"stage.scale", "stage.encode",
                "stage.similarity"} <= names

    def test_run_instrumented_records_request_stage_spans(self, rng):
        # Per-request stage spans are recorded whenever a request trace
        # is active, independently of `instrument` (which controls only
        # the aggregate ledger spans).
        from repro.telemetry.reqtrace import get_hub

        graph, data = _tiny_graph(rng)
        hub = get_hub()
        hub.reset()
        request_spans = []
        hub.configure(service="t", enabled=True, sample_rate=1.0)
        hub.add_span_sink(request_spans.append)

        def run():
            with hub.trace("req"):
                graph.run(data, instrument=True)

        try:
            aggregate = self._traced(run)
        finally:
            hub.reset()
        expected = {"stage.scale", "stage.encode", "stage.similarity"}
        assert expected <= {s.name for s in request_spans}
        assert expected <= aggregate


class TestTopologyRoundTrip:
    def test_full_round_trip_is_bit_exact(self, rng):
        graph, data = _tiny_graph(rng)
        rebuilt = StageGraph.from_topology(graph.topology(),
                                           graph.state_arrays())
        assert rebuilt.names == graph.names
        assert rebuilt.name == graph.name
        np.testing.assert_array_equal(rebuilt.run(data), graph.run(data))
        np.testing.assert_array_equal(
            rebuilt.run(data, stop="classify"),
            graph.run(data, stop="classify"))

    def test_json_round_trip(self, rng):
        graph, data = _tiny_graph(rng)
        rebuilt = StageGraph.from_topology(graph.topology_json(),
                                           graph.state_arrays())
        np.testing.assert_array_equal(rebuilt.run(data), graph.run(data))

    def test_manifold_graph_round_trip(self, rng):
        learner = ManifoldLearner((2, 4, 4), out_features=5,
                                  rng=fresh_rng(7))
        scaler = FeatureScaler().fit(rng.standard_normal((10, 32)))
        graph = StageGraph([
            ScaleStage(scaler),
            ManifoldReduceStage.from_learner(learner),
            EncodeStage(RandomProjectionEncoder(5, 32, rng=fresh_rng(1))),
            ClassifyStage.from_matrix(rng.standard_normal((3, 32))),
        ], name="manifold")
        data = rng.standard_normal((6, 32))
        rebuilt = StageGraph.from_topology(graph.topology(),
                                           graph.state_arrays())
        np.testing.assert_array_equal(rebuilt.run(data), graph.run(data))

    def test_newer_version_rejected(self, rng):
        graph, _ = _tiny_graph(rng)
        topology = graph.topology()
        topology["version"] = 999
        with pytest.raises(StageError, match="newer"):
            StageGraph.from_topology(topology, graph.state_arrays())

    def test_empty_topology_rejected(self):
        with pytest.raises(StageError, match="no stages"):
            StageGraph.from_topology({"version": 1, "stages": []}, {})

    def test_state_arrays_use_historical_keys(self, rng):
        learner = ManifoldLearner((2, 4, 4), out_features=5,
                                  rng=fresh_rng(7))
        scaler = FeatureScaler().fit(rng.standard_normal((10, 32)))
        graph = StageGraph([
            ScaleStage(scaler),
            ManifoldReduceStage.from_learner(learner),
            EncodeStage(RandomProjectionEncoder(5, 32, rng=fresh_rng(1))),
            ClassifyStage.from_matrix(rng.standard_normal((3, 32))),
        ])
        keys = set(graph.state_arrays())
        assert {"scaler.mean", "scaler.std", "manifold.weight",
                "encoder.projection", "classes"} <= keys

    def test_duplicate_array_keys_rejected(self, rng):
        scaler = FeatureScaler().fit(rng.standard_normal((10, 4)))
        graph = StageGraph([ScaleStage(scaler, name="a"),
                            ScaleStage(scaler, name="b")])
        with pytest.raises(StageError, match="re-defines"):
            graph.state_arrays()

    def test_load_arrays_refreshes_weights(self, rng):
        graph, data = _tiny_graph(rng)
        arrays = graph.state_arrays()
        arrays = {k: np.asarray(v).copy() for k, v in arrays.items()}
        arrays["classes"] = np.roll(arrays["classes"], 1, axis=0)
        before = graph.run(data)
        graph.load_arrays(arrays)
        after = graph.run(data)
        assert not np.array_equal(before, after)
