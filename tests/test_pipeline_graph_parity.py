"""Hypothesis properties: the StageGraph is *equal*, not approximately
equal, to the legacy hand-composed execution paths.

The refactor's contract is bit-exactness — same dtypes, same BLAS calls,
same clamping expressions.  These properties pin it across random
shapes, seeds and encoder families, so a future "harmless" reordering
inside a stage (e.g. normalizing before the GEMM) fails loudly here
before it silently invalidates the golden fixtures.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hd.encoders import NonlinearEncoder, RandomProjectionEncoder
from repro.learn.manifold import ManifoldLearner
from repro.learn.mass import normalized_similarity
from repro.pipeline import (ClassifyStage, EncodeStage, FeatureScaler,
                            FlattenStage, ManifoldReduceStage, ScaleStage,
                            StageGraph)
from repro.utils.rng import fresh_rng

seeds = st.integers(min_value=0, max_value=2 ** 31 - 1)


def _features(rng, n, f, scale=3.0):
    return rng.standard_normal((n, f)) * scale + rng.standard_normal(f)


class TestStageParityProperties:
    @given(seeds, st.integers(min_value=2, max_value=24),
           st.integers(min_value=2, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_property_scale_stage_equals_scaler(self, seed, f, n):
        rng = fresh_rng((seed, "scale-parity"))
        features = _features(rng, n, f)
        scaler = FeatureScaler().fit(features)
        queries = _features(rng, 5, f)
        np.testing.assert_array_equal(ScaleStage(scaler)(queries),
                                      scaler.transform(queries))

    @given(seeds, st.integers(min_value=2, max_value=16),
           st.integers(min_value=8, max_value=200),
           st.booleans(), st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_property_encode_stage_equals_encoder(self, seed, f, dim,
                                                  nonlinear, quantize):
        rng = fresh_rng((seed, "encode-parity"))
        if nonlinear:
            encoder = NonlinearEncoder(f, dim, rng=fresh_rng((seed, "e")),
                                       quantize=quantize)
        else:
            encoder = RandomProjectionEncoder(
                f, dim, rng=fresh_rng((seed, "e")), quantize=quantize)
        queries = _features(rng, 6, f)
        np.testing.assert_array_equal(EncodeStage(encoder)(queries),
                                      encoder.encode(queries))

    @given(seeds, st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=7),
           st.integers(min_value=1, max_value=7),
           st.integers(min_value=1, max_value=12))
    @settings(max_examples=30, deadline=None)
    def test_property_reduce_stage_equals_manifold_learner(
            self, seed, c, h, w, out_features):
        """Crop-to-even numpy max-pool + GEMM ≡ F.max_pool2d + F.linear
        for every (C, H, W), including odd and degenerate spatial dims."""
        rng = fresh_rng((seed, "reduce-parity"))
        learner = ManifoldLearner((c, h, w), out_features=out_features,
                                  rng=fresh_rng((seed, "m")))
        stage = ManifoldReduceStage.from_learner(learner)
        features = _features(rng, 5, c * h * w, scale=1.0)
        np.testing.assert_array_equal(stage(features),
                                      learner.transform(features))

    @given(seeds, st.integers(min_value=2, max_value=10),
           st.integers(min_value=4, max_value=128))
    @settings(max_examples=30, deadline=None)
    def test_property_classify_stage_equals_trainer_similarity(
            self, seed, classes, dim):
        rng = fresh_rng((seed, "classify-parity"))
        matrix = rng.standard_normal((classes, dim))
        queries = rng.standard_normal((7, dim))
        frozen = ClassifyStage.from_matrix(matrix)
        want = normalized_similarity(matrix, queries)
        # Frozen (cached norms) and live (recomputed norms) must both
        # match the trainer expression bit-for-bit.
        np.testing.assert_array_equal(frozen.similarities(queries), want)
        live = ClassifyStage(lambda: matrix, frozen=False)
        np.testing.assert_array_equal(live.similarities(queries), want)
        np.testing.assert_array_equal(frozen(queries),
                                      want.argmax(axis=1))


class TestGraphParityProperties:
    @staticmethod
    def _graph(seed, f, dim, classes, quantize=True):
        rng = fresh_rng((seed, "graph-parity"))
        data = _features(rng, 16, f)
        scaler = FeatureScaler().fit(data)
        encoder = RandomProjectionEncoder(
            f, dim, rng=fresh_rng((seed, "enc")), quantize=quantize)
        matrix = rng.standard_normal((classes, dim))
        graph = StageGraph([ScaleStage(scaler), EncodeStage(encoder),
                            ClassifyStage.from_matrix(matrix)])
        return graph, scaler, encoder, matrix, rng

    @given(seeds, st.integers(min_value=2, max_value=12),
           st.integers(min_value=8, max_value=96),
           st.integers(min_value=2, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_property_graph_run_equals_legacy_composition(
            self, seed, f, dim, classes):
        """graph.run ≡ scaler.transform → encoder.encode → argmax of
        normalized_similarity — the exact pre-refactor inference path."""
        graph, scaler, encoder, matrix, rng = self._graph(
            seed, f, dim, classes)
        queries = _features(rng, 6, f)
        legacy_encoded = encoder.encode(scaler.transform(
            np.asarray(queries, dtype=np.float64)))
        legacy_labels = normalized_similarity(
            matrix, legacy_encoded).argmax(axis=1)
        np.testing.assert_array_equal(
            graph.run(queries, stop="classify"), legacy_encoded)
        np.testing.assert_array_equal(graph.run(queries), legacy_labels)

    @given(seeds, st.integers(min_value=2, max_value=12),
           st.integers(min_value=8, max_value=96),
           st.integers(min_value=2, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_property_slicing_composes(self, seed, f, dim, classes):
        """run(·, stop=s) then run(·, start=s) ≡ run(·) for every cut."""
        graph, _, _, _, rng = self._graph(seed, f, dim, classes)
        queries = _features(rng, 4, f)
        full = graph.run(queries)
        for cut in graph.names:
            head = graph.run(queries, stop=cut)
            tail = graph.run(head, start=cut)
            np.testing.assert_array_equal(tail, full)

    @given(seeds, st.integers(min_value=2, max_value=12),
           st.integers(min_value=8, max_value=96),
           st.integers(min_value=2, max_value=6), st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_property_topology_round_trip_is_identity(
            self, seed, f, dim, classes, quantize):
        """from_topology(topology(), state_arrays()) reproduces every
        intermediate representation bit-exactly."""
        graph, _, _, _, rng = self._graph(seed, f, dim, classes,
                                          quantize=quantize)
        rebuilt = StageGraph.from_topology(graph.topology(),
                                           graph.state_arrays())
        queries = _features(rng, 5, f)
        np.testing.assert_array_equal(rebuilt.run(queries),
                                      graph.run(queries))
        np.testing.assert_array_equal(
            rebuilt.run(queries, stop="classify"),
            graph.run(queries, stop="classify"))
        sims_a = rebuilt.stage("classify").similarities(
            graph.run(queries, stop="classify"))
        sims_b = graph.stage("classify").similarities(
            graph.run(queries, stop="classify"))
        np.testing.assert_array_equal(sims_a, sims_b)

    @given(seeds, st.integers(min_value=2, max_value=8),
           st.integers(min_value=2, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_property_flatten_front_equals_reshape(self, seed, size,
                                                   classes):
        """A VanillaHD-shaped graph front (flatten → scale) equals the
        legacy reshape + transform on raw image tensors."""
        rng = fresh_rng((seed, "flatten-parity"))
        images = rng.standard_normal((6, 3, size, size))
        flat = images.reshape(6, -1)
        scaler = FeatureScaler().fit(flat)
        graph = StageGraph([FlattenStage(), ScaleStage(scaler)])
        np.testing.assert_array_equal(graph.run(images),
                                      scaler.transform(flat))
