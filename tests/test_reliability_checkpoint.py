"""Atomic checkpointing, integrity verification, and bit-exact resume.

The headline test here is the kill-and-resume equivalence: a training run
checkpointed at epoch 2 and resumed by a *fresh* process must finish with
class hypervectors and manifold weights **bit-identical** to an
uninterrupted run — which only holds if the checkpoint really captures
every mutable piece of state (M, FC weights, Adam moments, scaler
statistics, the shuffle RNG, and the epoch counter).
"""

import os

import numpy as np
import pytest

from repro import nn
from repro.data import make_dataset, normalize_images
from repro.learn import NSHD, BaselineHD, ManifoldLearner, MassTrainer
from repro.models import create_model
from repro.nn.serialize import (MANIFEST_KEY, CheckpointError, load_manifest,
                                load_module, load_state, save_module,
                                save_state)
from repro.reliability import ResilientPipeline, truncate_file
from repro.utils.rng import fresh_rng, get_rng_state, set_rng_state


# ----------------------------------------------------------------------
# serialize.py: atomicity + integrity
# ----------------------------------------------------------------------

class TestAtomicSave:
    def test_no_temp_leftovers(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        for _ in range(3):  # overwrites are atomic too
            save_state({"a": np.arange(10.0)}, str(path))
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ckpt.npz"]

    def test_roundtrip_with_meta(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        state = {"w": np.linspace(0, 1, 7), "b": np.zeros((2, 3))}
        save_state(state, path, meta={"epoch": 3, "note": "hi"})
        loaded = load_state(path)
        for key in state:
            np.testing.assert_array_equal(loaded[key], state[key])
        manifest = load_manifest(path)
        assert manifest["meta"] == {"epoch": 3, "note": "hi"}
        assert manifest["format_version"] == 1

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            save_state({MANIFEST_KEY: np.ones(2)},
                       str(tmp_path / "x.npz"))

    def test_missing_file_raises_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            load_state(str(tmp_path / "nope.npz"))


class TestIntegrity:
    def test_bitrot_detected_by_crc(self, tmp_path):
        """Tampered array + intact manifest → CRC failure naming the array."""
        path = str(tmp_path / "ckpt.npz")
        save_state({"w": np.arange(64.0), "ok": np.ones(4)}, path)
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        arrays["w"] = arrays["w"].copy()
        arrays["w"][5] += 1.0  # a single flipped value
        np.savez_compressed(path, **arrays)
        with pytest.raises(CheckpointError, match="CRC32.*'w'"):
            load_state(path)

    def test_truncation_detected(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_state({"w": np.arange(4096.0)}, path)
        truncate_file(path, 0.6)
        with pytest.raises(CheckpointError):
            load_state(path)

    def test_verify_false_skips_crc(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_state({"w": np.arange(8.0)}, path)
        assert "w" in load_state(path, verify=False)

    def test_legacy_archive_without_manifest_loads(self, tmp_path):
        path = str(tmp_path / "legacy.npz")
        np.savez_compressed(path, w=np.ones(3))
        np.testing.assert_array_equal(load_state(path)["w"], np.ones(3))
        assert load_manifest(path) is None


class TestLoadModuleErrors:
    def test_mismatch_names_path_and_keys(self, tmp_path):
        path = str(tmp_path / "linear.npz")
        linear = nn.Linear(4, 3, rng=fresh_rng(0))
        full = linear.state_dict()
        partial = {k: v for k, v in full.items() if "bias" not in k}
        partial["stray"] = np.ones(2)
        save_state(partial, path)
        with pytest.raises(CheckpointError) as excinfo:
            load_module(nn.Linear(4, 3, rng=fresh_rng(1)), path)
        message = str(excinfo.value)
        assert "linear.npz" in message
        assert "bias" in message and "stray" in message

    def test_shape_mismatch_wrapped(self, tmp_path):
        path = str(tmp_path / "linear.npz")
        save_module(nn.Linear(4, 3, rng=fresh_rng(0)), path)
        with pytest.raises(CheckpointError, match="linear.npz"):
            load_module(nn.Linear(5, 3, rng=fresh_rng(1)), path)

    def test_roundtrip_ok(self, tmp_path):
        path = str(tmp_path / "linear.npz")
        source = nn.Linear(4, 3, rng=fresh_rng(0))
        save_module(source, path)
        target = load_module(nn.Linear(4, 3, rng=fresh_rng(1)), path)
        np.testing.assert_array_equal(target.weight.data, source.weight.data)


# ----------------------------------------------------------------------
# RNG + trainer state round-trips
# ----------------------------------------------------------------------

class TestStateRoundTrips:
    def test_rng_state_restores_stream(self):
        rng = fresh_rng(42)
        rng.random(17)  # advance
        state = get_rng_state(rng)
        expected = rng.random(50)
        other = fresh_rng(999)
        set_rng_state(other, state)
        np.testing.assert_array_equal(other.random(50), expected)

    def test_mass_trainer_roundtrip(self):
        rng = fresh_rng(5)
        trainer = MassTrainer(3, 64)
        hvs = np.sign(rng.normal(size=(30, 64))) + 0.0
        labels = rng.integers(0, 3, size=30)
        trainer.fit(hvs, labels, epochs=2, rng=fresh_rng(1))
        clone = MassTrainer(3, 64)
        clone.load_state_dict(trainer.state_dict())
        np.testing.assert_array_equal(clone.class_matrix,
                                      trainer.class_matrix)

    def test_mass_trainer_shape_check(self):
        trainer = MassTrainer(3, 64)
        with pytest.raises(ValueError, match="shape"):
            trainer.load_state_dict({"class_matrix": np.zeros((2, 64))})
        with pytest.raises(ValueError, match="class_matrix"):
            trainer.load_state_dict({"wrong": np.zeros((3, 64))})

    def test_manifold_roundtrip_includes_adam_moments(self):
        """Restoring FC weights alone is not enough for bit-exact resume;
        the Adam slots (m, v, step) must survive the round trip too."""
        rng = fresh_rng(7)
        learner = ManifoldLearner((4, 4, 4), out_features=6, lr=1e-2,
                                  rng=fresh_rng(2))
        feats = rng.normal(size=(20, 64))
        update = rng.normal(size=(20, 3))
        encoder_rng = fresh_rng(3)
        from repro.hd.encoders import RandomProjectionEncoder
        encoder = RandomProjectionEncoder(6, 32, encoder_rng)
        class_matrix = rng.normal(size=(3, 32))
        learner.train_step(feats, update, encoder, class_matrix)

        state = learner.state_dict()
        assert any(key.startswith("optimizer.") for key in state)
        clone = ManifoldLearner((4, 4, 4), out_features=6, lr=1e-2,
                                rng=fresh_rng(99))
        clone.load_state_dict(state)

        # one more identical step on both must produce identical weights
        learner.train_step(feats, update, encoder, class_matrix)
        clone.train_step(feats, update, encoder, class_matrix)
        np.testing.assert_array_equal(clone.fc.weight.data,
                                      learner.fc.weight.data)
        np.testing.assert_array_equal(clone.fc.bias.data,
                                      learner.fc.bias.data)

    def test_manifold_unknown_keys_rejected(self):
        learner = ManifoldLearner((4, 4, 4), out_features=6)
        state = learner.state_dict()
        state["bogus.key"] = np.ones(2)
        with pytest.raises(ValueError, match="bogus.key"):
            learner.load_state_dict(state)


# ----------------------------------------------------------------------
# Pipeline kill-and-resume
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def tiny_task():
    """Tiny dataset + untrained CNN (feature quality is irrelevant here —
    these tests are about state capture, not accuracy)."""
    x_tr, y_tr, _, _ = make_dataset(num_classes=4, num_train=80, num_test=8,
                                    seed=3)
    x_tr, _, _ = normalize_images(x_tr)
    model = create_model("vgg16", num_classes=4, width_mult=0.125, seed=1)
    model.eval()
    return model, x_tr, y_tr


def make_nshd(model):
    return NSHD(model, layer_index=21, dim=256, reduced_features=12, seed=7)


class TestKillAndResume:
    def test_nshd_resume_is_bit_exact(self, tiny_task, tmp_path):
        model, x_tr, y_tr = tiny_task
        ckpt = str(tmp_path / "nshd.npz")

        probe = make_nshd(model)
        raw = probe.extractor.extract(x_tr)
        logits = probe.teacher.logits(x_tr)

        # Run A: uninterrupted reference.
        ref = make_nshd(model)
        ref_history = ref.fit_features(raw, y_tr, logits, epochs=4,
                                       batch_size=32)

        # Run B: same configuration, killed after 2 checkpointed epochs.
        killed = make_nshd(model)
        killed.fit_features(raw, y_tr, logits, epochs=2, batch_size=32,
                            checkpoint_path=ckpt)
        del killed  # the "process" is gone; only the checkpoint survives

        # Run C: a fresh process resumes from the checkpoint.
        resumed = make_nshd(model)
        history = resumed.fit_features(raw, y_tr, logits, epochs=4,
                                       batch_size=32, checkpoint_path=ckpt,
                                       resume=True)

        np.testing.assert_array_equal(resumed.trainer.class_matrix,
                                      ref.trainer.class_matrix)
        np.testing.assert_array_equal(resumed.manifold.fc.weight.data,
                                      ref.manifold.fc.weight.data)
        np.testing.assert_array_equal(resumed.manifold.fc.bias.data,
                                      ref.manifold.fc.bias.data)
        assert history["train_acc"] == ref_history["train_acc"]

    def test_baselinehd_resume_is_bit_exact(self, tiny_task, tmp_path):
        model, x_tr, y_tr = tiny_task
        ckpt = str(tmp_path / "baseline.npz")

        def make():
            return BaselineHD(model, layer_index=21, dim=256, seed=7)

        raw = make().extractor.extract(x_tr)
        ref = make()
        ref.fit_features(raw, y_tr, epochs=4, batch_size=32)
        killed = make()
        killed.fit_features(raw, y_tr, epochs=2, batch_size=32,
                            checkpoint_path=ckpt)
        resumed = make()
        resumed.fit_features(raw, y_tr, epochs=4, batch_size=32,
                             checkpoint_path=ckpt, resume=True)
        np.testing.assert_array_equal(resumed.trainer.class_matrix,
                                      ref.trainer.class_matrix)

    def test_resume_with_missing_checkpoint_starts_fresh(self, tiny_task,
                                                         tmp_path):
        model, x_tr, y_tr = tiny_task
        pipeline = BaselineHD(model, layer_index=21, dim=128, seed=7)
        history = pipeline.fit(x_tr, y_tr, epochs=1, batch_size=32,
                               checkpoint_path=str(tmp_path / "new.npz"),
                               resume=True)
        assert len(history["train_acc"]) == 1
        assert os.path.exists(tmp_path / "new.npz")

    def test_resume_requires_checkpoint_path(self, tiny_task):
        model, x_tr, y_tr = tiny_task
        pipeline = BaselineHD(model, layer_index=21, dim=128, seed=7)
        with pytest.raises(ValueError, match="checkpoint_path"):
            pipeline.fit(x_tr, y_tr, epochs=1, resume=True)

    def test_truncated_checkpoint_raises_on_resume(self, tiny_task,
                                                   tmp_path):
        model, x_tr, y_tr = tiny_task
        ckpt = str(tmp_path / "trunc.npz")
        pipeline = BaselineHD(model, layer_index=21, dim=128, seed=7)
        pipeline.fit(x_tr, y_tr, epochs=1, batch_size=32,
                     checkpoint_path=ckpt)
        truncate_file(ckpt, 0.4)
        fresh = BaselineHD(model, layer_index=21, dim=128, seed=7)
        with pytest.raises(CheckpointError):
            fresh.fit(x_tr, y_tr, epochs=2, checkpoint_path=ckpt,
                      resume=True)

    def test_checkpoint_shape_and_class_guards(self, tiny_task, tmp_path):
        model, x_tr, y_tr = tiny_task
        ckpt = str(tmp_path / "guarded.npz")
        pipeline = BaselineHD(model, layer_index=21, dim=128, seed=7)
        pipeline.fit(x_tr, y_tr, epochs=1, batch_size=32,
                     checkpoint_path=ckpt)
        wrong_dim = BaselineHD(model, layer_index=21, dim=64, seed=7)
        with pytest.raises(CheckpointError, match="dim"):
            wrong_dim.load_checkpoint(ckpt)
        wrong_class = make_nshd(model)
        with pytest.raises(CheckpointError, match="BaselineHD"):
            wrong_class.load_checkpoint(ckpt)


# ----------------------------------------------------------------------
# ResilientPipeline: degradation + retry-by-splitting
# ----------------------------------------------------------------------

class TestResilientPipeline:
    def test_load_or_degrade_restores_good_checkpoint(self, tiny_task,
                                                      tmp_path):
        model, x_tr, y_tr = tiny_task
        ckpt = str(tmp_path / "good.npz")
        pipeline = BaselineHD(model, layer_index=21, dim=128, seed=7)
        pipeline.fit(x_tr, y_tr, epochs=2, batch_size=32,
                     checkpoint_path=ckpt)
        resilient = ResilientPipeline(
            BaselineHD(model, layer_index=21, dim=128, seed=7))
        assert resilient.load_or_degrade(ckpt) == "restored"
        assert not resilient.degraded
        np.testing.assert_array_equal(resilient.predict(x_tr[:8]),
                                      pipeline.predict(x_tr[:8]))

    def test_load_or_degrade_falls_back_on_corruption(self, tiny_task,
                                                      tmp_path):
        model, x_tr, y_tr = tiny_task
        ckpt = str(tmp_path / "bad.npz")
        trained = BaselineHD(model, layer_index=21, dim=128, seed=7)
        trained.fit(x_tr, y_tr, epochs=2, batch_size=32,
                    checkpoint_path=ckpt)
        truncate_file(ckpt, 0.3)

        raw = trained.extractor.extract(x_tr)
        resilient = ResilientPipeline(
            BaselineHD(model, layer_index=21, dim=128, seed=7),
            fallback_epochs=3)
        assert resilient.load_or_degrade(ckpt, raw_features=raw,
                                         labels=y_tr) == "degraded"
        assert resilient.degraded
        predictions = resilient.predict(x_tr)
        assert predictions.shape == (len(x_tr),)
        assert set(np.unique(predictions)) <= set(range(4))
        # the degraded direct-projection model still actually learned
        assert resilient.accuracy(x_tr, y_tr) > 1.0 / 4

    def test_load_or_degrade_without_data_propagates(self, tiny_task,
                                                     tmp_path):
        model, x_tr, y_tr = tiny_task
        ckpt = str(tmp_path / "bad2.npz")
        pipeline = BaselineHD(model, layer_index=21, dim=128, seed=7)
        pipeline.fit(x_tr, y_tr, epochs=1, batch_size=32,
                     checkpoint_path=ckpt)
        truncate_file(ckpt, 0.3)
        with pytest.raises(CheckpointError):
            ResilientPipeline(
                BaselineHD(model, layer_index=21, dim=128, seed=7)
            ).load_or_degrade(ckpt)

    def test_retry_splitting_isolates_poisoned_samples(self):
        class Flaky:
            """Predicts labels but refuses any batch containing a
            poisoned sample index."""

            dim = 16
            num_classes = 2

            def __init__(self, poisoned):
                self.poisoned = set(poisoned)
                self.calls = 0

            def predict(self, batch):
                self.calls += 1
                ids = np.asarray(batch).astype(np.int64).ravel()
                if self.poisoned & set(ids.tolist()):
                    raise FloatingPointError("poisoned sample")
                return ids % 2

        flaky = Flaky(poisoned={5, 11})
        resilient = ResilientPipeline(flaky, max_splits=6,
                                      fallback_label=-1)
        samples = np.arange(16).reshape(16, 1).astype(np.float64)
        out = resilient.predict(samples)
        expected = np.arange(16) % 2
        expected[[5, 11]] = -1
        np.testing.assert_array_equal(out, expected)
        assert resilient.stats["failed_samples"] == 2
        assert resilient.stats["splits"] > 0

    def test_zero_splits_fails_whole_batch(self):
        class AlwaysBad:
            def predict(self, batch):
                raise ValueError("boom")

        resilient = ResilientPipeline(AlwaysBad(), max_splits=0,
                                      fallback_label=9)
        out = resilient.predict(np.zeros((4, 2)))
        np.testing.assert_array_equal(out, np.full(4, 9))
        assert resilient.stats["failed_samples"] == 4

    def test_keyboard_interrupt_propagates(self):
        class Interrupted:
            def predict(self, batch):
                raise KeyboardInterrupt

        resilient = ResilientPipeline(Interrupted())
        with pytest.raises(KeyboardInterrupt):
            resilient.predict(np.zeros((2, 2)))
