"""Model-quality observability on the serving path.

Covers the bundle → engine → server → router wiring of the streaming
drift monitors (:mod:`repro.telemetry.quality`) and the alert rules
engine (:mod:`repro.telemetry.alerts`): baseline capture at export
time, auto-enabled monitors in the engine, ``/driftz`` + ``/alertz``
endpoints, deep-health engine vitals, fleet-wide drift aggregation on
the router, and the serve CLI's ``[alerts]`` / quality config keys.
"""

import json
import urllib.request

import numpy as np
import pytest

from repro.data import make_dataset
from repro.learn import VanillaHD
from repro.serve import BundleError, InferenceEngine, ModelBundle, ModelServer
from repro.serve.__main__ import _parse_args, build_server, load_config
from repro.serve.fleet import StaticFleet
from repro.serve.router import Router
from repro.telemetry import (MetricsRegistry, load_alert_rules,
                             use_registry)
from repro.telemetry.quality import QualityBaseline

from .conftest import _synthetic_bundle


def get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read())


def post(url, payload, timeout=5.0):
    request = urllib.request.Request(
        url, json.dumps(payload).encode("utf-8"),
        {"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def bundle_with_baseline(seed=0, features=16, classes=4, train=512):
    """Synthetic bundle + a baseline computed through its own engine
    (the same closure :meth:`ModelBundle._capture_baseline` sketches)."""
    bundle = _synthetic_bundle(dim=256, features=features,
                               classes=classes, seed=seed)
    engine = InferenceEngine(bundle, build_extractor=False)
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(train, features))
    sims = np.asarray(engine.similarities(engine.encode_features(x)))
    bundle.info["quality_baseline"] = QualityBaseline.from_training(
        x, labels=np.argmax(sims, axis=1), num_classes=classes,
        similarities=sims).to_dict()
    return bundle


@pytest.fixture(scope="module")
def fitted_vanilla():
    x_tr, y_tr, *_ = make_dataset(num_classes=3, num_train=60,
                                  num_test=10, seed=11)
    pipeline = VanillaHD(num_classes=3, image_size=x_tr.shape[-1],
                         dim=256, seed=11)
    pipeline.fit(x_tr, y_tr, epochs=2)
    return pipeline, x_tr, y_tr


class TestBaselineExport:
    def test_from_pipeline_captures_baseline(self, fitted_vanilla):
        pipeline, x_tr, y_tr = fitted_vanilla
        feats = pipeline.graph.run(x_tr, stop="scale")
        bundle = ModelBundle.from_pipeline(
            pipeline, baseline_features=feats, baseline_labels=y_tr)
        section = bundle.info["quality_baseline"]
        baseline = QualityBaseline.from_dict(section)
        assert baseline.num_features == feats.shape[1]
        assert baseline.num_classes == 3
        assert baseline.n_samples == len(feats)
        assert baseline.margin  # similarity pass ran through the graph
        np.testing.assert_allclose(
            baseline.class_priors,
            np.bincount(y_tr, minlength=3) / len(y_tr))

    def test_baseline_survives_save_load(self, fitted_vanilla, tmp_path):
        pipeline, x_tr, y_tr = fitted_vanilla
        feats = pipeline.graph.run(x_tr, stop="scale")
        bundle = ModelBundle.from_pipeline(pipeline,
                                           baseline_features=feats)
        path = str(tmp_path / "bundle.npz")
        bundle.save(path)
        back = ModelBundle.load(path)
        restored = QualityBaseline.from_dict(
            back.info["quality_baseline"])
        np.testing.assert_allclose(restored.expected,
                                   QualityBaseline.from_dict(
                                       bundle.info["quality_baseline"]
                                   ).expected)

    def test_baseline_sample_subsamples_deterministically(
            self, fitted_vanilla):
        pipeline, x_tr, _ = fitted_vanilla
        feats = pipeline.graph.run(x_tr, stop="scale")
        one = ModelBundle.from_pipeline(pipeline, baseline_features=feats,
                                        baseline_sample=16)
        two = ModelBundle.from_pipeline(pipeline, baseline_features=feats,
                                        baseline_sample=16)
        assert one.info["quality_baseline"]["n_samples"] == 16
        assert one.info["quality_baseline"] == \
            two.info["quality_baseline"]

    def test_mismatched_labels_raise(self, fitted_vanilla):
        pipeline, x_tr, _ = fitted_vanilla
        feats = pipeline.graph.run(x_tr, stop="scale")
        with pytest.raises(BundleError, match="rows"):
            ModelBundle.from_pipeline(pipeline, baseline_features=feats,
                                      baseline_labels=np.zeros(3))

    def test_no_baseline_by_default(self, fitted_vanilla):
        bundle = ModelBundle.from_pipeline(fitted_vanilla[0])
        assert "quality_baseline" not in bundle.info


class TestEngineWiring:
    def test_auto_enabled_with_baseline(self):
        engine = InferenceEngine(bundle_with_baseline(),
                                 build_extractor=False)
        assert engine.quality is not None
        assert engine.describe()["quality"]["samples"] == 0

    def test_disabled_without_baseline(self):
        engine = InferenceEngine(_synthetic_bundle(seed=1),
                                 build_extractor=False)
        assert engine.quality is None
        assert engine.describe()["quality"] is None

    def test_forcing_quality_without_baseline_raises(self):
        with pytest.raises(BundleError, match="quality_baseline"):
            InferenceEngine(_synthetic_bundle(seed=1),
                            build_extractor=False, quality=True)

    def test_quality_false_opts_out(self):
        engine = InferenceEngine(bundle_with_baseline(),
                                 build_extractor=False, quality=False)
        assert engine.quality is None

    def test_predictions_feed_the_monitor(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            engine = InferenceEngine(bundle_with_baseline(),
                                     build_extractor=False,
                                     quality_window=128)
            engine.quality.min_samples = 32
            rng = np.random.default_rng(0)
            engine.predict_features(rng.normal(size=(64, 16)))
            assert engine.quality.samples == 64
            assert registry.get("quality.samples").value == 64
            assert registry.get("quality.margin").count == 64
            engine.predict_features(4 + rng.normal(size=(64, 16)))
            assert registry.get("quality.feature.psi_max").value > 0.25

    def test_monitor_failure_never_fails_serving(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            engine = InferenceEngine(bundle_with_baseline(),
                                     build_extractor=False)
            engine.quality.observe = lambda *a, **k: 1 / 0
            labels = engine.predict_features(
                np.random.default_rng(0).normal(size=(4, 16)))
            assert len(labels) == 4
            assert registry.get("quality.monitor_errors").value == 1


@pytest.fixture
def quality_server():
    registry = MetricsRegistry()
    with use_registry(registry):
        engine = InferenceEngine(bundle_with_baseline(),
                                 build_extractor=False,
                                 quality_window=256)
        engine.quality.min_samples = 64
        rules = load_alert_rules([
            {"name": "feature-drift",
             "metric": "quality.feature.psi_max",
             "op": ">", "threshold": 0.25},
        ])
        server = ModelServer(engine, port=0, max_latency_ms=1.0,
                             workers=1, alert_rules=rules,
                             alert_interval_s=0.05).start()
        try:
            yield server, registry
        finally:
            server.stop()


class TestServerEndpoints:
    def test_driftz_and_alertz_lifecycle(self, quality_server):
        server, _ = quality_server
        rng = np.random.default_rng(4)
        assert get(server.url + "/driftz")["enabled"]
        assert get(server.url + "/alertz")["firing"] == []
        for _ in range(2):
            post(server.url + "/predict",
                 {"features": rng.normal(size=(64, 16)).tolist()})
        clean = get(server.url + "/driftz")
        assert clean["feature"]["psi_max"] < 0.25
        assert get(server.url + "/alertz")["firing"] == []
        for _ in range(5):
            post(server.url + "/predict",
                 {"features": (4 + rng.normal(size=(64, 16))).tolist()})
        drifted = get(server.url + "/driftz")
        assert drifted["feature"]["psi_max"] > 0.25
        alerts = get(server.url + "/alertz")
        assert alerts["firing"] == ["feature-drift"]
        (status,) = [s for s in alerts["rules"]
                     if s["rule"]["name"] == "feature-drift"]
        assert status["state"] == "firing"
        assert status["fire_count"] >= 1

    def test_alert_state_gauges_in_metrics(self, quality_server):
        server, registry = quality_server
        get(server.url + "/alertz")  # force one evaluation
        assert "alert.state.feature-drift" in registry

    def test_driftz_disabled_without_monitor(self):
        engine = InferenceEngine(_synthetic_bundle(seed=2),
                                 build_extractor=False)
        with ModelServer(engine, port=0, workers=1) as server:
            assert get(server.url + "/driftz") == {"enabled": False}
            alerts = get(server.url + "/alertz")
            assert alerts == {"enabled": False, "rules": [],
                              "firing": []}

    def test_deep_health_engine_vitals(self, quality_server):
        server, _ = quality_server
        shallow = get(server.url + "/healthz")
        assert "engine_vitals" not in shallow
        for _ in range(2):  # repeat request → second hits the LRU
            payload = post(server.url + "/predict",
                           {"features": [[0.5] * 16]})
            assert len(payload["labels"]) == 1
        deep = get(server.url + "/healthz?deep=1")
        vitals = deep["engine_vitals"]
        assert vitals["packed_path"] is True
        assert vitals["quality_monitor"] is True
        assert vitals["last_reload_ts"] is None
        assert vitals["uptime_s"] > 0
        assert vitals["cache_hit_rate"] is not None
        assert vitals["cache_hit_rate"] > 0

    def test_reload_stamps_last_reload_ts(self, tmp_path):
        path = str(tmp_path / "bundle.npz")
        bundle_with_baseline(seed=7).save(path)
        engine = InferenceEngine.from_path(path, build_extractor=False)
        with ModelServer(engine, port=0, workers=1,
                         bundle_path=path,
                         engine_options={"build_extractor": False}
                         ) as server:
            assert server.last_reload_ts is None
            server.reload()
            assert server.last_reload_ts is not None
            vitals = get(server.url
                         + "/healthz?deep=1")["engine_vitals"]
            assert vitals["last_reload_ts"] == pytest.approx(
                server.last_reload_ts)


class TestRouterAggregation:
    def test_fleet_driftz_rollup(self):
        bundle = bundle_with_baseline(seed=9)
        servers = [ModelServer(
            InferenceEngine(bundle, build_extractor=False,
                            quality_window=128),
            port=0, max_latency_ms=1.0, workers=1).start()
            for _ in range(2)]
        for server in servers:
            server.engine.quality.min_samples = 32
        fleet = StaticFleet([server.address for server in servers])
        rng = np.random.default_rng(9)
        try:
            with Router(fleet, port=0) as router:
                # Drift only worker 0; the rollup takes the fleet max.
                post(servers[0].url + "/predict",
                     {"features": (4 + rng.normal(size=(64, 16))
                                   ).tolist()})
                post(servers[1].url + "/predict",
                     {"features": rng.normal(size=(64, 16)).tolist()})
                payload = get(router.url + "/driftz")
                assert payload["enabled"]
                fleet_view = payload["fleet"]
                assert fleet_view["workers_reporting"] == 2
                assert fleet_view["samples"] == 128
                assert fleet_view["feature_psi_max"] > 0.25
                assert payload["workers"]["w0"]["feature"]["psi_max"] \
                    > payload["workers"]["w1"]["feature"]["psi_max"]
        finally:
            for server in servers:
                server.stop()

    def test_router_alertz_over_fleet_gauges(self):
        fleet = StaticFleet([])
        rules = load_alert_rules([
            {"name": "no-drift-data",
             "metric": "fleet.quality.heartbeat",
             "kind": "absence"}])
        with Router(fleet, port=0, alert_rules=rules) as router:
            payload = get(router.url + "/alertz")
            assert payload["firing"] == ["no-drift-data"]

    def test_router_alertz_disabled_without_rules(self):
        with Router(StaticFleet([]), port=0) as router:
            assert get(router.url + "/alertz")["enabled"] is False


class TestCliConfig:
    def test_alerts_section_parses_rules(self, tmp_path):
        path = tmp_path / "serve.toml"
        path.write_text(
            "[engine]\nquality = false\nquality_window = 128\n"
            "[alerts]\ninterval_s = 0.5\n"
            '[[alerts.rules]]\nname = "drift"\n'
            'metric = "quality.feature.psi_max"\nthreshold = 0.25\n'
            'for_s = 2.0\n'
            '[[alerts.rules]]\nname = "silent"\n'
            'metric = "quality.samples"\nkind = "absence"\n')
        config = load_config(str(path))
        assert config["quality"] is False
        assert config["quality_window"] == 128
        assert config["alert_interval_s"] == 0.5
        names = [rule.name for rule in config["alert_rules"]]
        assert names == ["drift", "silent"]
        assert config["alert_rules"][0].for_s == 2.0

    def test_malformed_rule_fails_at_load(self, tmp_path):
        path = tmp_path / "serve.toml"
        path.write_text('[[alerts.rules]]\nname = "bad"\n'
                        'metric = "m"\nkind = "nope"\n')
        with pytest.raises(Exception, match="kind"):
            load_config(str(path))

    def test_unknown_alerts_key_raises(self, tmp_path):
        path = tmp_path / "serve.toml"
        path.write_text("[alerts]\ninterval = 1.0\n")
        with pytest.raises(ValueError, match="alerts.interval"):
            load_config(str(path))

    def test_build_server_wires_alerts_and_quality(self, tmp_path):
        bundle_path = str(tmp_path / "bundle.npz")
        bundle_with_baseline(seed=3).save(bundle_path)
        config = tmp_path / "serve.toml"
        config.write_text(
            "[engine]\nquality_window = 96\nbuild_extractor = false\n"
            "[alerts]\ninterval_s = 0.25\n"
            '[[alerts.rules]]\nname = "drift"\n'
            'metric = "quality.feature.psi_max"\nthreshold = 0.25\n')
        server = build_server(_parse_args(
            [bundle_path, "--config", str(config), "--port", "0"]))
        try:
            assert server.engine.quality is not None
            assert server.engine.quality.window == 96
            assert server.alerts is not None
            assert [r.name for r in server.alerts.rules] == ["drift"]
            assert server.alert_interval_s == 0.25
        finally:
            server.stop()

    def test_quality_opt_out_via_config(self, tmp_path):
        bundle_path = str(tmp_path / "bundle.npz")
        bundle_with_baseline(seed=3).save(bundle_path)
        config = tmp_path / "serve.toml"
        config.write_text("[engine]\nquality = false\n"
                          "build_extractor = false\n")
        server = build_server(_parse_args(
            [bundle_path, "--config", str(config), "--port", "0"]))
        try:
            assert server.engine.quality is None
            assert server.alerts is None
        finally:
            server.stop()
