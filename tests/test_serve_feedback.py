"""HTTP surface of the online-learning subsystem.

Covers ``POST /feedback`` (features and request_id paths, every error
status), ``POST /promote``, ``GET /onlinez``, the disabled-by-default
behavior, and the serve CLI's ``[online]`` config section (parsing,
unknown-key rejection, ``enabled = false``, build_server wiring).
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import InferenceEngine, ModelServer
from repro.serve.__main__ import _parse_args, build_server, load_config
from repro.telemetry import MetricsRegistry, use_registry

from .conftest import _synthetic_bundle

FEATURES = 16
CLASSES = 4


@pytest.fixture(autouse=True)
def registry():
    fresh = MetricsRegistry()
    with use_registry(fresh):
        yield fresh


def request(url, payload=None, timeout=5.0):
    """(status, body, headers) — 4xx/5xx returned, not raised."""
    if payload is None:
        req = urllib.request.Request(url)
    else:
        req = urllib.request.Request(
            url, json.dumps(payload).encode("utf-8"),
            {"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return response.status, json.loads(response.read()), \
                dict(response.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def online_server(online_options, seed=0, **server_kwargs):
    engine = InferenceEngine(
        _synthetic_bundle(dim=256, features=FEATURES, classes=CLASSES,
                          seed=seed),
        build_extractor=False)
    return ModelServer(engine, port=0, workers=1,
                       online_options=online_options,
                       **server_kwargs).start()


BASE_OPTIONS = {"rule": "mass", "lr": 2.0, "max_update_norm": 2.0,
                "holdout_every": 8, "auto_promote": False}


class TestDisabledByDefault:
    def test_endpoints_404_when_disabled(self):
        engine = InferenceEngine(
            _synthetic_bundle(dim=256, features=FEATURES, seed=1),
            build_extractor=False)
        with ModelServer(engine, port=0, workers=1) as server:
            assert server.online is None
            status, body, _ = request(server.url + "/feedback",
                                      {"label": 0,
                                       "features": [0.0] * FEATURES})
            assert status == 404
            status, body, _ = request(server.url + "/promote", {})
            assert status == 404
            status, body, _ = request(server.url + "/onlinez")
            assert (status, body) == (200, {"enabled": False})


class TestFeedbackEndpoint:
    @pytest.fixture()
    def server(self):
        server = online_server(dict(BASE_OPTIONS))
        yield server
        server.stop()

    def test_features_feedback_applies(self, server, registry):
        status, body, _ = request(
            server.url + "/feedback",
            {"label": 0, "features": [0.5] * FEATURES})
        assert status == 200
        assert body["status"] == "applied"
        assert body["classes"] == CLASSES
        assert body["generation"] == 0
        assert registry.counter("serve.feedback.requests").value == 1
        assert registry.counter("online.feedback.applied").value == 1

    def test_malformed_json_is_400(self, server, registry):
        req = urllib.request.Request(
            server.url + "/feedback", b"{not json",
            {"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=5.0)
        assert excinfo.value.code == 400
        assert registry.counter("serve.feedback.bad_request").value == 1

    @pytest.mark.parametrize("payload", [
        {"features": [0.0] * FEATURES},           # no label
        {"label": True, "features": [0.0] * FEATURES},
        {"label": 0},                             # neither source
        {"label": 0, "features": [0.0] * FEATURES,
         "request_id": "x"},                      # both sources
        {"label": 0, "features": [[0.0] * FEATURES] * 2},  # batch
        {"label": 0, "features": [0.0] * (FEATURES + 1)},
        {"label": -1, "features": [0.0] * FEATURES},
        {"label": 99, "features": [0.0] * FEATURES},
    ])
    def test_bad_payloads_are_400(self, server, payload):
        status, body, _ = request(server.url + "/feedback", payload)
        assert status == 400
        assert "error" in body

    def test_unknown_request_id_is_404(self, server, registry):
        status, body, _ = request(server.url + "/feedback",
                                  {"label": 0, "request_id": "ghost"})
        assert status == 404
        assert registry.counter(
            "online.feedback.unknown_request").value == 1

    def test_request_id_round_trip(self, server):
        status, predicted, _ = request(
            server.url + "/predict",
            {"features": [[0.25] * FEATURES]})
        assert status == 200
        request_id = predicted["request_id"]
        status, body, _ = request(server.url + "/feedback",
                                  {"label": 2,
                                   "request_id": request_id})
        assert status == 200
        assert body["status"] in ("applied", "held_out")

    def test_batch_predictions_are_not_remembered(self, server):
        status, predicted, _ = request(
            server.url + "/predict",
            {"features": [[0.25] * FEATURES, [0.5] * FEATURES]})
        assert status == 200
        status, body, _ = request(
            server.url + "/feedback",
            {"label": 0, "request_id": predicted["request_id"]})
        assert status == 404  # one label cannot disambiguate a batch

    def test_new_class_over_http(self, server):
        status, body, _ = request(
            server.url + "/feedback",
            {"label": CLASSES, "features": [0.9] * FEATURES})
        assert status == 200
        assert body["status"] == "new_class"
        assert body["classes"] == CLASSES + 1

    def test_onlinez_reports_state(self, server):
        request(server.url + "/feedback",
                {"label": 1, "features": [0.1] * FEATURES})
        status, body, _ = request(server.url + "/onlinez")
        assert status == 200
        assert body["enabled"] is True
        assert body["generation"] == 0
        assert body["shadow"]["feedback"]["seen"] == 1
        assert body["gates"]["min_shadow_accuracy"] == 0.5

    def test_manual_promote_reports_failed_gates(self, server):
        status, decision, _ = request(server.url + "/promote", {})
        assert status == 200
        assert decision["promote"] is False
        assert "feedback" in decision["reasons"]


class TestThrottlingAndGuards:
    def test_rate_limited_is_429_with_retry_after(self):
        server = online_server(dict(BASE_OPTIONS,
                                    rate_limit_per_s=0.001,
                                    rate_limit_burst=1))
        try:
            payload = {"label": 0, "features": [0.5] * FEATURES}
            first, _, _ = request(server.url + "/feedback", payload)
            assert first == 200
            status, body, headers = request(server.url + "/feedback",
                                            payload)
            assert status == 429
            assert body["status"] == "rate_limited"
            assert "Retry-After" in headers
        finally:
            server.stop()

    def test_guard_rejection_is_422(self, registry):
        # Encoded hypervectors are +-1; a 0.5 magnitude cap trips the
        # numerics guard on every sample.
        server = online_server(dict(BASE_OPTIONS, guard_max_abs=0.5))
        try:
            status, body, _ = request(
                server.url + "/feedback",
                {"label": 0, "features": [0.5] * FEATURES})
            assert status == 422
            assert body["status"] == "rejected"
            assert registry.counter(
                "online.feedback.rejected").value == 1
        finally:
            server.stop()


class TestOnlineConfig:
    def test_online_section_parses(self, tmp_path):
        path = tmp_path / "serve.toml"
        path.write_text(
            "[online]\nrule = \"online\"\nlr = 0.5\n"
            "max_update_norm = 2.0\nrate_limit_per_s = 50.0\n"
            "holdout_every = 4\npromote_every = 128\n"
            "auto_promote = false\nmin_shadow_accuracy = 0.7\n")
        config = load_config(str(path))
        options = config["online_options"]
        assert options["rule"] == "online"
        assert options["promote_every"] == 128
        assert options["min_shadow_accuracy"] == 0.7

    def test_unknown_online_key_raises(self, tmp_path):
        path = tmp_path / "serve.toml"
        path.write_text("[online]\nlearning_rate = 0.5\n")
        with pytest.raises(ValueError, match="online.learning_rate"):
            load_config(str(path))

    def test_unknown_section_error_mentions_online(self, tmp_path):
        path = tmp_path / "serve.toml"
        path.write_text("[bogus]\nx = 1\n")
        with pytest.raises(ValueError, match="online"):
            load_config(str(path))

    def test_build_server_wires_learner(self, tmp_path):
        bundle_path = str(tmp_path / "bundle.npz")
        _synthetic_bundle(dim=256, features=FEATURES,
                          seed=3).save(bundle_path)
        config = tmp_path / "serve.toml"
        config.write_text("[engine]\nbuild_extractor = false\n"
                          "[online]\nrule = \"mass\"\nlr = 1.5\n"
                          "promote_every = 32\n")
        server = build_server(_parse_args(
            [bundle_path, "--config", str(config), "--port", "0"]))
        try:
            assert server.online is not None
            assert server.online.shadow.rule == "mass"
            assert server.online.shadow.lr == 1.5
            assert server.online.promote_every == 32
        finally:
            server.stop()

    def test_enabled_false_disables(self, tmp_path):
        bundle_path = str(tmp_path / "bundle.npz")
        _synthetic_bundle(dim=256, features=FEATURES,
                          seed=4).save(bundle_path)
        config = tmp_path / "serve.toml"
        config.write_text("[engine]\nbuild_extractor = false\n"
                          "[online]\nenabled = false\n")
        server = build_server(_parse_args(
            [bundle_path, "--config", str(config), "--port", "0"]))
        try:
            assert server.online is None
        finally:
            server.stop()
