"""Profiler: op/layer recording, backward timing, dormant-path overhead."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn import functional as F
from repro.telemetry import (Profiler, disabled_overhead_ratio,
                             get_active_profiler)


class TestInstallation:
    def test_context_manager_installs_and_removes(self):
        assert get_active_profiler() is None
        with Profiler() as prof:
            assert get_active_profiler() is prof
        assert get_active_profiler() is None

    def test_nested_profilers_raise(self):
        with Profiler():
            with pytest.raises(RuntimeError):
                Profiler().enable()

    def test_disable_is_idempotent(self):
        prof = Profiler()
        prof.enable()
        prof.disable()
        prof.disable()
        assert get_active_profiler() is None


class TestOpRecording:
    def test_forward_and_backward_times_recorded(self):
        rng = np.random.default_rng(0)
        with Profiler() as prof:
            a = Tensor(rng.normal(size=(8, 8)), requires_grad=True)
            b = Tensor(rng.normal(size=(8, 8)), requires_grad=True)
            out = (a @ b).relu().sum()
            out.backward()
        assert {"matmul", "relu", "sum"} <= set(prof.ops)
        matmul = prof.ops["matmul"]
        assert matmul.calls == 1
        assert matmul.forward_s >= 0.0
        assert matmul.backward_calls == 1
        # Fig. 5-style MAC estimate: out.size * inner = 64 * 8.
        assert matmul.flops == 8 * 8 * 8

    def test_nothing_recorded_while_disabled(self):
        prof = Profiler()
        a = Tensor(np.ones((4, 4)))
        _ = a + a
        assert prof.ops == {}

    def test_conv_flops_estimate(self):
        rng = np.random.default_rng(1)
        with Profiler() as prof:
            x = Tensor(rng.normal(size=(2, 3, 8, 8)))
            w = Tensor(rng.normal(size=(4, 3, 3, 3)))
            bias = Tensor(np.zeros(4))
            out = F.conv2d(x, w, bias, stride=1, padding=1)
        conv = prof.ops["conv2d"]
        assert conv.calls == 1
        assert conv.flops == out.data.size * 3 * 3 * 3

    def test_total_and_top_ops(self):
        with Profiler() as prof:
            a = Tensor(np.ones((16, 16)))
            for _ in range(3):
                _ = a + a
            _ = a @ a
        top = prof.top_ops(1)
        assert len(top) == 1
        assert prof.total_op_time() >= top[0].total_s
        assert prof.ops["add"].calls == 3

    def test_reset(self):
        with Profiler() as prof:
            a = Tensor(np.ones((4, 4)))
            _ = a + a
        prof.reset()
        assert prof.ops == {} and prof.layers == {}


class TestLayerRecording:
    def test_leaf_modules_recorded_with_macs(self):
        rng = np.random.default_rng(2)
        layer = nn.Linear(12, 5, rng=rng)
        with Profiler() as prof:
            layer(Tensor(rng.normal(size=(7, 12))))
        stat = prof.layers["Linear"]
        assert stat.calls == 1
        # layer_cost counts one GEMM per call (batch-size independent),
        # matching the Fig. 5 hardware accounting in repro.hardware.macs.
        assert stat.macs == 12 * 5
        assert stat.params == 12 * 5 + 5

    def test_container_modules_not_recorded(self):
        rng = np.random.default_rng(3)
        model = nn.Sequential(nn.Linear(6, 6, rng=rng), nn.ReLU())
        with Profiler() as prof:
            model(Tensor(rng.normal(size=(2, 6))))
        assert "Sequential" not in prof.layers
        assert {"Linear", "ReLU"} <= set(prof.layers)

    def test_format_tables(self):
        rng = np.random.default_rng(4)
        layer = nn.Linear(4, 3, rng=rng)
        with Profiler() as prof:
            out = layer(Tensor(rng.normal(size=(2, 4))))
            out.sum()
        assert "Linear" in prof.format_top_layers()
        assert "matmul" in prof.format_top_ops()
        assert "(no ops recorded)" in Profiler().format_top_ops()

    def test_to_events_tagged(self):
        rng = np.random.default_rng(5)
        layer = nn.Linear(4, 3, rng=rng)
        with Profiler() as prof:
            layer(Tensor(rng.normal(size=(2, 4))))
        kinds = {event["type"] for event in prof.to_events()}
        assert kinds == {"op", "layer"}


class TestDormantOverhead:
    def test_overhead_smoke(self):
        """Dormant hooks must stay cheap.

        The CI gate (scripts/check_telemetry.sh) asserts < 1.05 with
        min-of-repeats; here we only smoke-test with a loose bound so a
        noisy shared runner cannot flake the unit suite.
        """
        ratio = min(disabled_overhead_ratio(size=64, iters=50, repeats=3)
                    for _ in range(2))
        assert ratio < 1.5

    def test_refuses_to_measure_while_enabled(self):
        with Profiler():
            with pytest.raises(RuntimeError):
                disabled_overhead_ratio(size=8, iters=1, repeats=1)

    def test_wrapped_ops_expose_originals(self):
        assert hasattr(Tensor.__add__, "__wrapped__")
        assert hasattr(Tensor.__matmul__, "__wrapped__")
        assert hasattr(F.conv2d, "__wrapped__")
