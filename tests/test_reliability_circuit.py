"""Circuit breaker: state machine, thresholds, half-open probing."""

import itertools

import pytest

from repro.reliability import CircuitBreaker, CircuitOpenError
from repro.reliability.circuit import CLOSED, HALF_OPEN, OPEN
from repro.telemetry import get_registry

_IDS = itertools.count()


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, seconds):
        self.t += seconds


def make_breaker(**overrides):
    options = dict(name=f"test{next(_IDS)}", failure_threshold=3,
                   error_rate_threshold=0.5, window=10, min_requests=4,
                   recovery_timeout_s=5.0, half_open_probes=2,
                   clock=FakeClock())
    options.update(overrides)
    breaker = CircuitBreaker(**options)
    breaker.clock = options["clock"]  # test handle to the fake clock
    return breaker


class TestClosed:
    def test_starts_closed_and_allows(self):
        breaker = make_breaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_successes_keep_it_closed(self):
        breaker = make_breaker()
        for _ in range(50):
            assert breaker.allow()
            breaker.record_success()
        assert breaker.state == CLOSED

    def test_consecutive_failures_open(self):
        breaker = make_breaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_interleaved_success_resets_consecutive_count(self):
        breaker = make_breaker(failure_threshold=3, min_requests=100)
        for _ in range(5):
            breaker.record_failure()
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state == CLOSED

    def test_error_rate_opens_despite_interleaved_successes(self):
        breaker = make_breaker(failure_threshold=100, window=10,
                               min_requests=10, error_rate_threshold=0.5)
        # Alternate success/failure: never 100 consecutive, but the
        # rolling window hits 50% errors at min_requests outcomes.
        for _ in range(5):
            breaker.record_success()
            breaker.record_failure()
        assert breaker.state == OPEN

    def test_error_rate_needs_min_requests(self):
        breaker = make_breaker(failure_threshold=100, min_requests=8,
                               error_rate_threshold=0.25)
        for _ in range(3):
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state == CLOSED  # only 6 outcomes observed


class TestOpenAndHalfOpen:
    def tripped(self, **overrides):
        breaker = make_breaker(**overrides)
        for _ in range(breaker.failure_threshold):
            breaker.record_failure()
        assert breaker.state == OPEN
        return breaker

    def test_open_rejects_until_recovery_timeout(self):
        breaker = self.tripped(recovery_timeout_s=5.0)
        assert not breaker.allow()
        assert breaker.time_until_retry() == pytest.approx(5.0)
        breaker.clock.advance(4.9)
        assert not breaker.allow()
        breaker.clock.advance(0.2)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()

    def test_half_open_admits_limited_probes(self):
        breaker = self.tripped(half_open_probes=2)
        breaker.clock.advance(5.1)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # probe budget spent

    def test_half_open_success_quota_closes(self):
        breaker = self.tripped(half_open_probes=2)
        breaker.clock.advance(5.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens_immediately(self):
        breaker = self.tripped()
        breaker.clock.advance(5.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        # The recovery timer restarted from the reopen.
        breaker.clock.advance(5.1)
        assert breaker.state == HALF_OPEN

    def test_close_after_recovery_clears_failure_history(self):
        breaker = self.tripped(half_open_probes=1)
        breaker.clock.advance(5.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        # One more failure must not instantly re-open (history reset).
        breaker.record_failure()
        assert breaker.state == CLOSED


class TestCallAndIntrospection:
    def test_call_wraps_outcomes(self):
        breaker = make_breaker(failure_threshold=2)
        assert breaker.call(lambda: 42) == 42
        with pytest.raises(ValueError):
            breaker.call(self._boom)
        with pytest.raises(ValueError):
            breaker.call(self._boom)
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: 42)

    @staticmethod
    def _boom():
        raise ValueError("nope")

    def test_reset_restores_closed(self):
        breaker = make_breaker(failure_threshold=1)
        breaker.record_failure()
        assert breaker.state == OPEN
        breaker.reset()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_describe_and_stats(self):
        breaker = make_breaker(failure_threshold=2)
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        facts = breaker.describe()
        assert facts["state"] == OPEN
        assert facts["stats"]["opens"] == 1
        assert facts["stats"]["failures"] == 2
        assert facts["stats"]["successes"] == 1
        assert 0.0 < facts["error_rate"] <= 1.0

    def test_error_rate_property(self):
        breaker = make_breaker(failure_threshold=100, min_requests=100)
        for _ in range(3):
            breaker.record_success()
        breaker.record_failure()
        assert breaker.error_rate == pytest.approx(0.25)

    def test_transition_metrics_emitted(self):
        breaker = make_breaker(failure_threshold=1, half_open_probes=1)
        breaker.record_failure()
        breaker.clock.advance(5.1)
        assert breaker.allow()
        breaker.record_success()
        snapshot = get_registry().snapshot()
        for state in (OPEN, HALF_OPEN, CLOSED):
            name = f"circuit.{breaker.name}.{state}"
            assert snapshot.get(name, {}).get("value", 0) >= 1, name

    def test_rejected_probe_counts(self):
        breaker = make_breaker(failure_threshold=1)
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.stats["rejected"] == 1

    def test_invalid_options_raise(self):
        with pytest.raises(ValueError):
            make_breaker(failure_threshold=0)
        with pytest.raises(ValueError):
            make_breaker(error_rate_threshold=1.5)
        with pytest.raises(ValueError):
            make_breaker(window=0)
