"""Unit tests for promotion gating and the bundle promotion path.

Covers every :class:`~repro.online.promote.PromotionController` gate
failing individually (including the ``min_shadow_accuracy`` poison
backstop), :meth:`~repro.serve.bundle.ModelBundle.promoted` (version
bump, re-quantization parity, recomputed class priors, refusal modes),
and the :class:`~repro.online.learner.OnlineLearner` promote flow
against a fake server (export → reload → rebase, failure containment,
external-reload detection).
"""

import os

import numpy as np
import pytest

from repro.online import OnlineLearner, PromotionController, ShadowModel
from repro.serve import BundleError, InferenceEngine, ModelBundle
from repro.telemetry import MetricsRegistry, use_registry
from repro.telemetry.quality import QualityBaseline

from .conftest import _synthetic_bundle


@pytest.fixture(autouse=True)
def registry():
    fresh = MetricsRegistry()
    with use_registry(fresh):
        yield fresh


DIM = 64
FEATURES = 16


def make_base(classes=3, dim=DIM, seed=0):
    rng = np.random.default_rng(seed)
    return np.where(rng.random((classes, dim)) < 0.5, -1.0, 1.0)


def recovered_shadow(seed=1, samples=150):
    """A shadow that learned a 0<->1 label swap on clustered data —
    a scenario where every (lenient) gate should pass."""
    base = make_base(seed=seed)
    shadow = ShadowModel(base, rule="mass", lr=8.0, max_update_norm=8.0,
                         holdout_every=4)
    rng = np.random.default_rng(seed + 100)
    swap = {0: 1, 1: 0, 2: 2}
    for _ in range(samples):
        cluster = int(rng.integers(0, 3))
        hv = np.sign(base[cluster] + rng.normal(0, 0.4, DIM))
        hv[hv == 0] = 1.0
        shadow.ingest(hv[None, :], swap[cluster])
    return shadow, base


def lenient(**overrides):
    kwargs = dict(min_feedback=16, min_validation=8,
                  min_accuracy_gain=0.01, min_shadow_accuracy=0.5,
                  max_confusability_increase=0.6, max_saturation=0.6,
                  max_relative_drift=None)
    kwargs.update(overrides)
    return PromotionController(**kwargs)


class TestControllerConstruction:
    @pytest.mark.parametrize("kwargs", [
        {"min_feedback": -1},
        {"min_validation": -1},
        {"min_shadow_accuracy": 1.5},
        {"max_saturation": 2.0},
        {"max_relative_drift": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PromotionController(**kwargs)

    def test_config_round_trip(self):
        controller = lenient()
        config = controller.config()
        assert config["min_shadow_accuracy"] == 0.5
        assert PromotionController(**config).config() == config


class TestGates:
    def test_all_gates_pass_on_recovered_shadow(self, registry):
        shadow, base = recovered_shadow()
        decision = lenient().evaluate(shadow, base)
        assert decision["promote"] is True
        assert decision["reasons"] == []
        assert all(check["passed"]
                   for check in decision["checks"].values())
        assert registry.counter("online.promotion.evaluations").value == 1

    def test_feedback_gate(self):
        shadow, base = recovered_shadow()
        decision = lenient(min_feedback=10 ** 6).evaluate(shadow, base)
        assert not decision["promote"]
        assert decision["reasons"] == ["feedback"]

    def test_validation_gate(self):
        shadow, base = recovered_shadow()
        decision = lenient(min_validation=10 ** 6).evaluate(shadow, base)
        assert decision["reasons"] == ["validation"]

    def test_accuracy_gate(self):
        shadow, base = recovered_shadow()
        decision = lenient(min_accuracy_gain=1.1).evaluate(shadow, base)
        assert "accuracy" in decision["reasons"]
        assert decision["checks"]["accuracy"]["gain"] is not None

    def test_shadow_accuracy_gate_blocks_poison(self):
        """The poison backstop: random labels leave the shadow near
        chance while the live model is systematically wrong, so the
        *relative* gain can look positive — the absolute floor must
        still veto."""
        base = make_base(seed=5)
        shadow = ShadowModel(base, rule="mass", lr=8.0,
                             max_update_norm=8.0, holdout_every=4)
        rng = np.random.default_rng(6)
        for _ in range(150):
            cluster = int(rng.integers(0, 3))
            wrong = int((cluster + rng.integers(1, 3)) % 3)
            hv = np.sign(base[cluster] + rng.normal(0, 0.4, DIM))
            hv[hv == 0] = 1.0
            shadow.ingest(hv[None, :], wrong)
        decision = lenient(min_accuracy_gain=-1.0).evaluate(shadow, base)
        assert not decision["promote"]
        assert "shadow_accuracy" in decision["reasons"]
        acc = decision["checks"]["shadow_accuracy"]["accuracy"]
        assert acc < 0.5  # near chance on an inconsistent stream

    def test_empty_ring_fails_accuracy_gates(self):
        shadow = ShadowModel(make_base(), holdout_every=0)
        decision = lenient().evaluate(shadow, shadow.base)
        assert not decision["checks"]["accuracy"]["passed"]
        assert not decision["checks"]["shadow_accuracy"]["passed"]
        assert decision["checks"]["accuracy"]["gain"] is None

    def test_confusability_gate(self):
        shadow, base = recovered_shadow()
        # Smash two class rows together: off-diagonal cosine -> 1.0.
        shadow.trainer.class_matrix[1] = shadow.trainer.class_matrix[0]
        decision = lenient(
            max_confusability_increase=0.01).evaluate(shadow, base)
        assert "confusability" in decision["reasons"]
        assert decision["checks"]["confusability"]["off_diag_max"] == \
            pytest.approx(1.0)

    def test_confusability_trivially_passes_without_signal(self):
        """A non-finite off-diagonal cosine (degenerate matrix) means
        there is nothing to confuse — the gate passes vacuously."""
        class _DegenerateShadow:
            applied = 100
            sat_factor = 3.0
            base = np.ones((2, 8))

            def evaluate(self, live_matrix):
                return {"size": 100, "shadow_accuracy": 1.0,
                        "live_accuracy": 0.0}

            def health(self):
                return {"confusability":
                        {"off_diag_max": float("nan")},
                        "saturation_fraction": 0.0,
                        "drift": {"relative": 0.0}}

        decision = lenient().evaluate(_DegenerateShadow(), np.ones((2, 8)))
        assert decision["checks"]["confusability"]["passed"]
        assert decision["checks"]["confusability"]["off_diag_max"] is None

    def test_saturation_gate(self):
        shadow, base = recovered_shadow()
        shadow.trainer.class_matrix[0, :8] = 1e4  # blown dimensions
        decision = lenient(max_saturation=0.01).evaluate(shadow, base)
        assert "saturation" in decision["reasons"]

    def test_drift_gate_disabled_by_default(self):
        shadow, base = recovered_shadow()
        decision = lenient().evaluate(shadow, base)
        assert decision["checks"]["drift"] == {
            "passed": True,
            "relative": decision["checks"]["drift"]["relative"],
            "limit": None}

    def test_drift_gate_enforced(self, registry):
        shadow, base = recovered_shadow()
        decision = lenient(max_relative_drift=1e-9).evaluate(shadow, base)
        assert "drift" in decision["reasons"]
        assert registry.counter("online.promotion.rejected").value == 1


def baselined_bundle(seed=0, classes=4):
    bundle = _synthetic_bundle(dim=DIM, features=FEATURES,
                               classes=classes, seed=seed)
    engine = InferenceEngine(bundle, build_extractor=False)
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(256, FEATURES))
    sims = np.asarray(engine.similarities(engine.encode_features(x)))
    bundle.info["quality_baseline"] = QualityBaseline.from_training(
        x, labels=np.argmax(sims, axis=1), num_classes=classes,
        similarities=sims).to_dict()
    return bundle


class TestBundlePromoted:
    def test_version_bump_and_provenance(self):
        bundle = _synthetic_bundle(dim=DIM, features=FEATURES,
                                   classes=4, seed=1)
        matrix = np.asarray(bundle.arrays["classes"]).copy()
        child = bundle.promoted(matrix, generation=3, feedback_count=77,
                                extra={"rule": "mass"})
        online = child.info["online"]
        assert online["generation"] == 3
        assert online["feedback_count"] == 77
        assert online["rule"] == "mass"
        assert online["classes_added"] == 0
        assert online["parent_fingerprint"] == \
            bundle.info["config_fingerprint"]
        assert child.info["config_fingerprint"] != \
            bundle.info["config_fingerprint"]

    def test_binarized_requantize_keeps_untouched_rows_bit_exact(self):
        bundle = _synthetic_bundle(dim=DIM, features=FEATURES,
                                   classes=4, seed=2)
        matrix = np.asarray(bundle.arrays["classes"],
                            dtype=np.float64).copy()
        matrix[0] += np.random.default_rng(3).normal(0, 5.0, DIM)
        child = bundle.promoted(matrix)
        promoted = child.arrays["classes"]
        assert set(np.unique(promoted)) <= {-1.0, 1.0}  # re-quantized
        assert np.array_equal(promoted[1:],
                              bundle.arrays["classes"][1:])

    def test_class_incremental_growth(self):
        bundle = _synthetic_bundle(dim=DIM, features=FEATURES,
                                   classes=3, seed=4)
        grown = np.vstack([np.asarray(bundle.arrays["classes"]),
                           np.ones((1, DIM))])
        child = bundle.promoted(grown)
        assert child.info["num_classes"] == 4
        assert child.info["online"]["classes_added"] == 1

    def test_rejects_wrong_dim(self):
        bundle = _synthetic_bundle(dim=DIM, classes=3, seed=5)
        with pytest.raises(BundleError, match="dim"):
            bundle.promoted(np.ones((3, DIM + 1)))

    def test_rejects_class_removal(self):
        bundle = _synthetic_bundle(dim=DIM, classes=3, seed=6)
        with pytest.raises(BundleError, match="fewer"):
            bundle.promoted(np.ones((2, DIM)))

    def test_rejects_nonfinite(self):
        bundle = _synthetic_bundle(dim=DIM, classes=3, seed=7)
        bad = np.ones((3, DIM))
        bad[0, 0] = np.nan
        with pytest.raises(BundleError, match="NaN"):
            bundle.promoted(bad)

    def test_priors_require_baseline(self):
        bundle = _synthetic_bundle(dim=DIM, classes=3, seed=8)
        with pytest.raises(BundleError, match="quality_baseline"):
            bundle.promoted(np.ones((3, DIM)),
                            class_priors=np.full(3, 1 / 3))

    def test_growth_on_baselined_bundle_requires_priors(self):
        bundle = baselined_bundle(seed=9, classes=3)
        grown = np.vstack([np.asarray(bundle.arrays["classes"]),
                           np.ones((1, DIM))])
        with pytest.raises(BundleError, match="class_priors"):
            bundle.promoted(grown)

    def test_recomputed_priors_cover_new_class(self):
        bundle = baselined_bundle(seed=10, classes=3)
        grown = np.vstack([np.asarray(bundle.arrays["classes"]),
                           np.ones((1, DIM))])
        priors = np.full(4, 0.25)
        child = bundle.promoted(grown, class_priors=priors)
        baseline = QualityBaseline.from_dict(
            child.info["quality_baseline"])
        np.testing.assert_allclose(baseline.class_priors, priors)

    def test_promoted_survives_save_load(self, tmp_path):
        bundle = _synthetic_bundle(dim=DIM, classes=3, seed=11)
        child = bundle.promoted(np.asarray(bundle.arrays["classes"]),
                                generation=2)
        path = str(tmp_path / "promoted.npz")
        child.save(path)
        loaded = ModelBundle.load(path)
        assert loaded.info["online"]["generation"] == 2


class FakeServer:
    """The slice of ModelServer the learner touches: engine + reload."""

    def __init__(self, bundle, bundle_path=None):
        self.engine = InferenceEngine(bundle, build_extractor=False)
        self.bundle_path = bundle_path
        self.reloads = []

    def reload(self, path=None):
        self.engine = InferenceEngine.from_path(path,
                                                build_extractor=False)
        self.reloads.append(path)
        return {"bundle_path": path}


def feature_prototypes(classes=4, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(classes, FEATURES)) * 3.0


def learner_on(bundle, tmp_path, **overrides):
    kwargs = dict(rule="mass", lr=8.0, max_update_norm=8.0,
                  holdout_every=4, promote_every=0, auto_promote=False,
                  export_dir=str(tmp_path), min_feedback=16,
                  min_validation=8, min_accuracy_gain=0.01,
                  min_shadow_accuracy=0.5,
                  max_confusability_increase=0.6, max_saturation=0.6)
    kwargs.update(overrides)
    server = FakeServer(bundle, bundle_path=None)
    return server, OnlineLearner(server, **kwargs)


def feed(learner, protos, labels, count, seed=0):
    # Random label order: a fixed cycle would alias with holdout_every
    # (every held-out sample the same class, which then never trains).
    rng = np.random.default_rng(seed)
    for i in range(count):
        label = int(labels[rng.integers(0, len(labels))])
        features = protos[label] + rng.normal(0, 0.1, FEATURES)
        status, body = learner.feedback({"label": label,
                                         "features": features.tolist()})
        assert status == 200, body


class TestLearnerFlow:
    def test_feedback_validation(self, tmp_path):
        bundle = _synthetic_bundle(dim=DIM, features=FEATURES,
                                   classes=4, seed=20)
        _, learner = learner_on(bundle, tmp_path)
        assert learner.feedback({"label": True,
                                 "features": [0.0] * FEATURES})[0] == 400
        assert learner.feedback({"label": "3",
                                 "features": [0.0] * FEATURES})[0] == 400
        assert learner.feedback({"label": 0})[0] == 400  # neither
        assert learner.feedback(
            {"label": 0, "features": [0.0] * FEATURES,
             "request_id": "x"})[0] == 400  # both
        assert learner.feedback(
            {"label": 0, "request_id": "missing"})[0] == 404
        assert learner.feedback(
            {"label": 0,
             "features": [float("nan")] * FEATURES})[0] == 400
        assert learner.feedback(
            {"label": 0, "features": [0.0] * (FEATURES + 1)})[0] == 400
        assert learner.feedback(
            {"label": 99, "features": [0.0] * FEATURES})[0] == 400

    def test_remember_recall_bounded(self, tmp_path):
        bundle = _synthetic_bundle(dim=DIM, features=FEATURES,
                                   classes=4, seed=21)
        _, learner = learner_on(bundle, tmp_path, remember_requests=3)
        for i in range(5):
            learner.remember(f"req-{i}", np.zeros((1, FEATURES)) + i)
        assert learner.recall("req-0") is None  # evicted
        assert learner.recall("req-4")[0] == pytest.approx(4.0)
        learner.remember("multi", np.zeros((2, FEATURES)))
        assert learner.recall("multi") is None  # batches are ambiguous

    def test_request_id_feedback_path(self, tmp_path):
        bundle = _synthetic_bundle(dim=DIM, features=FEATURES,
                                   classes=4, seed=22)
        _, learner = learner_on(bundle, tmp_path)
        learner.remember("req-a", np.zeros((1, FEATURES)))
        status, body = learner.feedback({"label": 1,
                                         "request_id": "req-a"})
        assert status == 200
        assert body["status"] in ("applied", "held_out")

    def test_manual_promotion_exports_and_reloads(self, tmp_path):
        bundle = _synthetic_bundle(dim=DIM, features=FEATURES,
                                   classes=4, seed=23)
        server, learner = learner_on(bundle, tmp_path)
        protos = feature_prototypes(seed=23)
        feed(learner, protos, [0, 1, 2, 3], 120, seed=23)
        decision = learner.try_promote()
        assert decision["promote"], decision["reasons"]
        assert decision["promoted"] is True
        assert os.path.exists(decision["bundle_path"])
        assert server.reloads == [decision["bundle_path"]]
        assert learner.generation == 1
        assert learner.shadow.applied == 0  # rebased onto the new live
        assert learner.shadow.base_classes == 4
        assert server.engine.bundle.info["online"]["generation"] == 1

    def test_auto_promote_triggers_on_cadence(self, tmp_path, registry):
        bundle = _synthetic_bundle(dim=DIM, features=FEATURES,
                                   classes=4, seed=24)
        server, learner = learner_on(bundle, tmp_path, promote_every=40,
                                     auto_promote=True)
        protos = feature_prototypes(seed=24)
        feed(learner, protos, [0, 1, 2, 3], 200, seed=24)
        assert learner.generation >= 1
        assert server.reloads
        assert registry.counter("online.promotion.promoted").value >= 1

    def test_promotion_recomputes_priors_after_growth(self, tmp_path):
        bundle = baselined_bundle(seed=25, classes=3)
        server, learner = learner_on(bundle, tmp_path)
        protos = feature_prototypes(classes=4, seed=25)
        feed(learner, protos, [0, 1, 2], 60, seed=25)
        feed(learner, protos, [3], 60, seed=26)  # brand-new class
        decision = learner.try_promote()
        assert decision["promoted"], decision
        baseline = server.engine.bundle.info["quality_baseline"]
        priors = np.asarray(baseline["class_priors"])
        assert priors.shape == (4,)
        assert priors[3] > 0  # the new class has mass
        np.testing.assert_allclose(priors.sum(), 1.0)

    def test_promotion_failure_is_contained(self, tmp_path, registry):
        bundle = _synthetic_bundle(dim=DIM, features=FEATURES,
                                   classes=4, seed=27)
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file where the export dir should be")
        server, learner = learner_on(bundle, tmp_path,
                                     export_dir=str(blocker))
        protos = feature_prototypes(seed=27)
        feed(learner, protos, [0, 1, 2, 3], 120, seed=27)
        old_fingerprint = learner._engine_fingerprint()
        decision = learner.try_promote()
        assert decision["promote"] is True  # gates passed...
        assert decision["promoted"] is False  # ...but export failed
        assert "error" in decision
        assert server.reloads == []
        assert learner._engine_fingerprint() == old_fingerprint
        assert registry.counter("online.promotion.failed").value == 1

    def test_external_reload_rebases_shadow(self, tmp_path):
        bundle = _synthetic_bundle(dim=DIM, features=FEATURES,
                                   classes=4, seed=28)
        server, learner = learner_on(bundle, tmp_path)
        protos = feature_prototypes(seed=28)
        feed(learner, protos, [0, 1], 20, seed=28)
        assert learner.shadow.applied > 0
        # Operator swaps the bundle underneath the learner.
        other = _synthetic_bundle(dim=DIM, features=FEATURES,
                                  classes=5, seed=99)
        server.engine = InferenceEngine(other, build_extractor=False)
        status, body = learner.feedback(
            {"label": 0, "features": [0.0] * FEATURES})
        assert status == 200
        assert learner.shadow.base_classes == 5  # rebased, not stale

    def test_status_payload(self, tmp_path):
        bundle = _synthetic_bundle(dim=DIM, features=FEATURES,
                                   classes=4, seed=29)
        _, learner = learner_on(bundle, tmp_path)
        status = learner.status()
        assert status["enabled"] is True
        assert status["generation"] == 0
        assert status["shadow"]["base_classes"] == 4
        assert status["gates"]["min_shadow_accuracy"] == 0.5
        assert status["last_decision"] is None
