"""Shared fixtures for the test suite (serving helpers)."""

import time

import numpy as np
import pytest

from repro.serve import BUNDLE_VERSION, ModelBundle
from repro.telemetry import config_fingerprint, git_info
from repro.utils.rng import fresh_rng


def _synthetic_bundle(dim=512, features=32, classes=6, seed=0,
                      binary=True):
    """Structurally-valid in-memory bundle with random weights.

    Mirrors ``scripts/serve_bench.synthetic_bundle`` (tests must not
    import from scripts): a bipolar random projection + bipolar class
    matrix exercises exactly the packed fast path's code shape.  With
    ``binary=False`` the class matrix is Gaussian, which forces the
    engine onto the float cosine path.
    """
    rng = fresh_rng((seed, "serve-test-bundle"))
    projection = np.where(rng.random((features, dim)) < 0.5, -1.0, 1.0)
    if binary:
        class_matrix = np.where(rng.random((classes, dim)) < 0.5, -1.0, 1.0)
    else:
        class_matrix = rng.standard_normal((classes, dim))
    config = {"synthetic": True, "dim": dim, "features": features,
              "classes": classes, "seed": seed, "binary": binary}
    arrays = {
        "scaler.mean": np.zeros(features),
        "scaler.std": np.ones(features),
        "encoder.projection": projection,
        "classes": class_matrix,
    }
    info = {
        "bundle_version": BUNDLE_VERSION,
        "pipeline": "SyntheticHD",
        "dim": dim, "num_classes": classes,
        "created_at": float(time.time()),
        "git": git_info(),
        "config": config,
        "config_fingerprint": config_fingerprint(config),
        "binarized": bool(binary), "quantize_bits": None,
        "encoder": {"type": "random_projection", "in_features": features,
                    "dim": dim, "quantize": True},
        "extractor": None, "manifold": None,
        "arrays": sorted(arrays),
    }
    return ModelBundle(arrays, info)


@pytest.fixture
def synthetic_bundle():
    """Factory fixture: ``synthetic_bundle(dim=..., ...)`` → ModelBundle."""
    return _synthetic_bundle
