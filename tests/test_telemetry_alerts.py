"""Alert rules engine: predicates, state machine, TOML loading."""

import pytest

from repro.telemetry import (AlertManager, AlertRule, AlertRuleError,
                             MetricsRegistry, load_alert_rules)


def rule(**kwargs):
    kwargs.setdefault("name", "r")
    kwargs.setdefault("metric", "m")
    return AlertRule(**kwargs)


def manager(rules, registry):
    mgr = AlertManager(rules, registry=registry)
    now = {"t": 0.0}
    mgr._clock = lambda: now["t"]
    return mgr, now


class TestAlertRule:
    def test_defaults(self):
        r = rule()
        assert r.kind == "threshold" and r.op == ">" and r.for_s == 0.0

    @pytest.mark.parametrize("bad", [
        {"name": ""},
        {"metric": ""},
        {"kind": "nope"},
        {"op": "~"},
        {"for_s": -1.0},
    ])
    def test_invalid_rule_raises(self, bad):
        with pytest.raises(AlertRuleError):
            rule(**bad)

    def test_threshold_on_gauge(self):
        registry = MetricsRegistry()
        registry.set_gauge("m", 2.0)
        assert rule(threshold=1.0).evaluate(registry) == (True, 2.0)
        assert rule(threshold=3.0).evaluate(registry) == (False, 2.0)

    def test_threshold_on_histogram_field(self):
        registry = MetricsRegistry()
        registry.observe_many("m", [1.0] * 99 + [100.0])
        holds, value = rule(value_field="p50",
                            threshold=50.0).evaluate(registry)
        assert not holds and value < 50.0
        holds, _ = rule(value_field="max",
                        threshold=50.0).evaluate(registry)
        assert holds

    def test_threshold_missing_metric_does_not_hold(self):
        holds, value = rule(threshold=0.0).evaluate(MetricsRegistry())
        assert not holds and value is None

    def test_threshold_ops(self):
        registry = MetricsRegistry()
        registry.set_gauge("m", 5.0)
        assert rule(op="==", threshold=5.0).evaluate(registry)[0]
        assert rule(op="!=", threshold=4.0).evaluate(registry)[0]
        assert rule(op="<=", threshold=5.0).evaluate(registry)[0]
        assert not rule(op="<", threshold=5.0).evaluate(registry)[0]

    def test_absence_fires_on_missing_and_empty(self):
        registry = MetricsRegistry()
        assert rule(kind="absence").evaluate(registry)[0]
        registry.histogram("m")  # exists but never sampled
        assert rule(kind="absence").evaluate(registry)[0]
        registry.observe("m", 1.0)
        assert not rule(kind="absence").evaluate(registry)[0]

    def test_absence_ok_for_counter(self):
        registry = MetricsRegistry()
        registry.inc("m")
        assert not rule(kind="absence").evaluate(registry)[0]

    def test_burn_rate_needs_both_windows(self):
        registry = MetricsRegistry()
        r = rule(kind="burn_rate", threshold=1.0)
        assert not r.evaluate(registry)[0]           # neither gauge
        registry.set_gauge("m.burn_fast", 5.0)
        assert not r.evaluate(registry)[0]           # slow missing
        registry.set_gauge("m.burn_slow", 0.5)
        assert not r.evaluate(registry)[0]           # slow below
        registry.set_gauge("m.burn_slow", 2.0)
        holds, value = r.evaluate(registry)
        assert holds and value == 5.0

    def test_to_dict_round_trips_through_loader(self):
        r = rule(name="a", threshold=0.5, for_s=2.0, severity="page")
        (back,) = load_alert_rules([r.to_dict()])
        assert back == r


class TestLoadAlertRules:
    def test_field_alias(self):
        (r,) = load_alert_rules([{"name": "a", "metric": "m",
                                  "field": "p99", "threshold": 10}])
        assert r.value_field == "p99" and r.threshold == 10.0

    def test_unknown_key_raises(self):
        with pytest.raises(AlertRuleError, match="unknown"):
            load_alert_rules([{"name": "a", "metric": "m",
                               "treshold": 1}])

    def test_duplicate_names_raise(self):
        rows = [{"name": "a", "metric": "m"},
                {"name": "a", "metric": "n"}]
        with pytest.raises(AlertRuleError, match="duplicate"):
            load_alert_rules(rows)

    def test_non_table_row_raises(self):
        with pytest.raises(AlertRuleError, match="table"):
            load_alert_rules(["oops"])

    def test_empty_input_is_empty(self):
        assert load_alert_rules([]) == []
        assert load_alert_rules(None) == []


class TestStateMachine:
    def test_immediate_fire_without_debounce(self):
        registry = MetricsRegistry()
        mgr, _ = manager([rule(threshold=1.0)], registry)
        registry.set_gauge("m", 2.0)
        events = mgr.evaluate()
        assert [(e["from"], e["to"]) for e in events] == \
            [("inactive", "firing")]
        assert mgr.firing() == ["r"]
        assert registry.get("alert.state.r").value == 2.0
        assert registry.get("alert.transitions.firing").value == 1

    def test_for_duration_debounces(self):
        registry = MetricsRegistry()
        mgr, now = manager([rule(threshold=1.0, for_s=5.0)], registry)
        registry.set_gauge("m", 2.0)
        mgr.evaluate()
        assert mgr.state("r") == "pending"
        assert registry.get("alert.state.r").value == 1.0
        now["t"] = 4.0
        mgr.evaluate()
        assert mgr.state("r") == "pending"   # not held long enough
        now["t"] = 5.0
        mgr.evaluate()
        assert mgr.state("r") == "firing"

    def test_blip_returns_to_inactive(self):
        registry = MetricsRegistry()
        mgr, now = manager([rule(threshold=1.0, for_s=5.0)], registry)
        registry.set_gauge("m", 2.0)
        mgr.evaluate()
        registry.set_gauge("m", 0.0)   # condition clears while pending
        now["t"] = 1.0
        mgr.evaluate()
        assert mgr.state("r") == "inactive"
        assert "alert.transitions.firing" not in registry

    def test_firing_resolves_then_refires(self):
        registry = MetricsRegistry()
        mgr, now = manager([rule(threshold=1.0)], registry)
        registry.set_gauge("m", 2.0)
        mgr.evaluate()
        registry.set_gauge("m", 0.0)
        now["t"] = 1.0
        mgr.evaluate()
        assert mgr.state("r") == "resolved"
        assert registry.get("alert.state.r").value == 0.0
        assert registry.get("alert.transitions.resolved").value == 1
        registry.set_gauge("m", 2.0)
        now["t"] = 2.0
        mgr.evaluate()
        assert mgr.state("r") == "firing"
        status = mgr.snapshot()["rules"][0]
        assert status["fire_count"] == 2

    def test_resolved_is_sticky_while_clear(self):
        registry = MetricsRegistry()
        mgr, now = manager([rule(threshold=1.0)], registry)
        registry.set_gauge("m", 2.0)
        mgr.evaluate()
        registry.set_gauge("m", 0.0)
        now["t"] = 1.0
        mgr.evaluate()
        now["t"] = 100.0
        mgr.evaluate()
        assert mgr.state("r") == "resolved"


class TestAlertManager:
    def test_duplicate_rule_names_raise(self):
        with pytest.raises(AlertRuleError, match="duplicate"):
            AlertManager([rule(), rule()])

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        mgr, _ = manager([rule(threshold=1.0),
                          rule(name="gone", metric="missing",
                               kind="absence")], registry)
        registry.set_gauge("m", 5.0)
        mgr.evaluate()
        snap = mgr.snapshot()
        assert snap["enabled"] and snap["evaluations"] == 1
        assert snap["firing"] == ["gone", "r"]
        assert {s["rule"]["name"] for s in snap["rules"]} == \
            {"r", "gone"}
        assert snap["transitions"][-1]["to"] == "firing"

    def test_transition_history_is_bounded(self):
        registry = MetricsRegistry()
        mgr, now = manager([rule(threshold=1.0)], registry)
        mgr._history_cap = 4
        for i in range(10):
            registry.set_gauge("m", 2.0 if i % 2 == 0 else 0.0)
            now["t"] = float(i)
            mgr.evaluate()
        assert len(mgr.snapshot()["transitions"]) <= 4

    def test_background_evaluator_thread(self):
        import time
        registry = MetricsRegistry()
        registry.set_gauge("m", 2.0)
        mgr = AlertManager([rule(threshold=1.0)], registry=registry)
        mgr.start(interval_s=0.02)
        try:
            deadline = time.monotonic() + 2.0
            while not mgr.firing() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert mgr.firing() == ["r"]
            with pytest.raises(RuntimeError, match="already"):
                mgr.start(interval_s=0.02)
        finally:
            mgr.stop()
        assert mgr._thread is None

    def test_invalid_interval_raises(self):
        mgr = AlertManager([rule()], registry=MetricsRegistry())
        with pytest.raises(ValueError, match="interval"):
            mgr.start(interval_s=0.0)
