"""Fleet supervisor: backoff, quarantine, hang detection, real workers."""

import json
import time
import urllib.request

import pytest

from repro.serve import FleetError, StaticFleet, Supervisor, free_port
from repro.serve.fleet import BACKOFF, QUARANTINED, STARTING, STOPPED, UP


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, seconds):
        self.t += seconds


class FakeProcess:
    """Popen-shaped test double the spawn_fn hands the supervisor."""

    _pids = iter(range(1000, 100000))

    def __init__(self):
        self.pid = next(FakeProcess._pids)
        self.returncode = None
        self.killed = False
        self.signals = []

    def poll(self):
        return self.returncode

    def wait(self, timeout=None):
        return self.returncode

    def kill(self):
        self.killed = True
        self.returncode = -9

    def send_signal(self, signum):
        self.signals.append(signum)
        self.returncode = 0

    def exit(self, code):
        self.returncode = code


class Harness:
    """Supervisor wired to fake processes/probes and a fake clock.

    Tests drive :meth:`Supervisor.tick` by hand — no monitor thread, no
    real sockets — so every state transition is deterministic.
    """

    def __init__(self, workers=2, **overrides):
        self.clock = FakeClock()
        self.procs = {}
        self.probes = {}

        def spawn(worker):
            proc = FakeProcess()
            self.procs[worker.worker_id] = proc
            return proc

        def probe(worker):
            return self.probes.get(worker.worker_id)

        options = dict(probe_interval_s=0.1, probe_timeout_s=0.5,
                       hang_probe_limit=3, startup_timeout_s=10.0,
                       backoff_base_s=1.0, backoff_max_s=8.0,
                       crash_loop_threshold=3, crash_loop_window_s=60.0)
        options.update(overrides)
        self.sup = Supervisor("bundle.npz", workers=workers,
                              spawn_fn=spawn, probe_fn=probe,
                              clock=self.clock, **options)
        # Spawn directly instead of start(): no monitor thread in unit
        # tests, ticks are driven explicitly.
        for worker in self.sup.workers:
            self.sup._spawn(worker)

    def worker(self, worker_id="w0"):
        return self.sup._worker(worker_id)

    def mark_ready(self, *worker_ids):
        for worker_id in worker_ids or [w.worker_id
                                        for w in self.sup.workers]:
            self.probes[worker_id] = {"status": "ok"}


class TestLifecycleStates:
    def test_spawn_then_ready(self):
        h = Harness()
        assert all(w.state == STARTING for w in h.sup.workers)
        assert h.sup.healthy_workers() == []
        h.mark_ready()
        h.sup.tick()
        assert all(w.state == UP for w in h.sup.workers)
        assert len(h.sup.healthy_workers()) == 2

    def test_shedding_status_counts_as_ready(self):
        h = Harness(workers=1)
        h.probes["w0"] = {"status": "shedding"}
        h.sup.tick()
        assert h.worker().state == UP

    def test_unready_status_does_not_join_rotation(self):
        h = Harness(workers=1)
        h.probes["w0"] = {"status": "draining"}
        h.sup.tick()
        assert h.worker().state == STARTING

    def test_describe_shape(self):
        h = Harness()
        h.mark_ready()
        h.sup.tick()
        facts = h.sup.describe()
        assert facts["size"] == 2 and facts["up"] == 2
        assert facts["restarts"] == 0 and facts["quarantined"] == 0
        assert {w["id"] for w in facts["workers"]} == {"w0", "w1"}

    def test_stop_terminates_and_marks_stopped(self):
        h = Harness()
        h.mark_ready()
        h.sup.tick()
        h.sup.stop(grace_s=0.1)
        assert all(w.state == STOPPED for w in h.sup.workers)
        assert all(p.signals or p.killed for p in h.procs.values())


class TestCrashRestart:
    def test_exit_schedules_backoff_then_respawn(self):
        h = Harness(workers=1)
        h.mark_ready()
        h.sup.tick()
        first_pid = h.procs["w0"].pid

        h.procs["w0"].exit(1)
        h.sup.tick()
        worker = h.worker()
        assert worker.state == BACKOFF
        assert worker.restarts == 1
        assert "exited with code 1" in worker.last_failure_reason
        assert worker.backoff_until == pytest.approx(1.0)

        h.sup.tick()  # still inside backoff: no respawn
        assert h.procs["w0"].pid == first_pid

        h.clock.advance(1.1)
        h.sup.tick()
        assert worker.state == STARTING
        assert h.procs["w0"].pid != first_pid

        h.sup.tick()  # probe is still marked ready
        assert worker.state == UP

    def test_backoff_doubles_and_caps(self):
        h = Harness(workers=1, backoff_base_s=1.0, backoff_max_s=4.0,
                    crash_loop_threshold=100)
        delays = []
        h.mark_ready()
        h.sup.tick()
        for _ in range(5):
            h.procs["w0"].exit(1)
            h.sup.tick()
            worker = h.worker()
            assert worker.state == BACKOFF
            delays.append(worker.backoff_until - h.clock())
            h.clock.advance(worker.backoff_until - h.clock() + 0.01)
            h.sup.tick()  # respawn
            h.sup.tick()  # ready again
            assert worker.state == UP
        assert delays == [pytest.approx(d) for d in
                          [1.0, 2.0, 4.0, 4.0, 4.0]]

    def test_crashed_worker_leaves_rotation_until_ready(self):
        h = Harness()
        h.mark_ready()
        h.sup.tick()
        h.procs["w0"].exit(1)
        h.sup.tick()
        assert [w for w, _ in h.sup.healthy_workers()] == ["w1"]

    def test_startup_timeout_counts_as_failure(self):
        h = Harness(workers=1, startup_timeout_s=5.0)
        h.sup.tick()  # no probe answer yet
        assert h.worker().state == STARTING
        h.clock.advance(5.1)
        h.sup.tick()
        assert h.worker().state == BACKOFF
        assert "startup timeout" in h.worker().last_failure_reason


class TestHangDetection:
    def test_probe_timeouts_kill_hung_worker(self):
        h = Harness(workers=1, hang_probe_limit=3)
        h.mark_ready()
        h.sup.tick()
        assert h.worker().state == UP

        del h.probes["w0"]  # worker stops answering, process stays alive
        h.sup.tick()
        h.sup.tick()
        assert h.worker().state == UP  # below the limit: benign blip
        h.sup.tick()
        worker = h.worker()
        assert worker.state == BACKOFF
        assert "hung (3 probes timed out)" in worker.last_failure_reason
        assert h.procs["w0"].killed

    def test_one_good_probe_resets_the_hang_count(self):
        h = Harness(workers=1, hang_probe_limit=3)
        h.mark_ready()
        h.sup.tick()
        for _ in range(5):
            del h.probes["w0"]
            h.sup.tick()
            h.sup.tick()
            h.mark_ready("w0")
            h.sup.tick()
        assert h.worker().state == UP
        assert h.worker().restarts == 0


class TestQuarantine:
    def crash_loop(self, h, times):
        for _ in range(times):
            if h.procs["w0"].poll() is None:
                h.procs["w0"].exit(1)
            h.sup.tick()
            worker = h.worker()
            if worker.state == QUARANTINED:
                return
            h.clock.advance(worker.backoff_until - h.clock() + 0.01)
            h.sup.tick()

    def test_crash_loop_quarantines(self):
        h = Harness(workers=2, crash_loop_threshold=3,
                    crash_loop_window_s=60.0)
        h.mark_ready()
        h.sup.tick()
        self.crash_loop(h, 3)
        worker = h.worker()
        assert worker.state == QUARANTINED
        assert worker.restarts == 3
        # The supervisor stops respawning it...
        h.clock.advance(100.0)
        h.sup.tick()
        assert worker.state == QUARANTINED
        # ...and the fleet degrades to the survivor.
        assert [w for w, _ in h.sup.healthy_workers()] == ["w1"]
        assert h.sup.describe()["quarantined"] == 1

    def test_slow_failures_outside_window_do_not_quarantine(self):
        h = Harness(workers=1, crash_loop_threshold=3,
                    crash_loop_window_s=10.0,
                    backoff_base_s=0.5, backoff_max_s=0.5)
        h.mark_ready()
        h.sup.tick()
        for _ in range(6):  # 6 crashes, but spread far apart
            h.procs["w0"].exit(1)
            h.sup.tick()
            assert h.worker().state == BACKOFF
            h.clock.advance(0.6)
            h.sup.tick()
            h.sup.tick()
            assert h.worker().state == UP
            h.clock.advance(30.0)  # leave the crash-loop window
        assert h.worker().restarts == 6

    def test_revive_clears_quarantine(self):
        h = Harness(workers=1, crash_loop_threshold=2)
        h.mark_ready()
        h.sup.tick()
        self.crash_loop(h, 2)
        assert h.worker().state == QUARANTINED
        h.sup.revive("w0")
        assert h.worker().state == STARTING
        h.sup.tick()
        assert h.worker().state == UP

    def test_revive_requires_quarantine(self):
        h = Harness()
        with pytest.raises(FleetError):
            h.sup.revive("w0")
        with pytest.raises(FleetError):
            h.sup.revive("nope")


class TestChaosSurface:
    def test_kill_worker_needs_live_process(self):
        h = Harness(workers=1)
        h.procs["w0"].exit(0)
        with pytest.raises(FleetError):
            h.sup.kill_worker("w0")

    def test_kill_worker_returns_pid_and_next_tick_restarts(self):
        h = Harness(workers=1)
        h.mark_ready()
        h.sup.tick()
        pid = h.sup.kill_worker("w0")
        assert pid == h.procs["w0"].pid
        h.sup.tick()
        assert h.worker().state == BACKOFF
        assert h.worker().restarts == 1


class TestValidationAndHelpers:
    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            Supervisor("bundle.npz", workers=0)
        with pytest.raises(ValueError):
            Supervisor("bundle.npz", workers=2, ports=[8000])

    def test_free_port_is_bindable_int(self):
        port = free_port()
        assert isinstance(port, int) and 1024 <= port <= 65535

    def test_static_fleet_membership_and_toggle(self):
        fleet = StaticFleet([("127.0.0.1", 9001), ("127.0.0.1", 9002)])
        assert [w for w, _ in fleet.all_workers()] == ["w0", "w1"]
        assert len(fleet.healthy_workers()) == 2
        fleet.set_healthy("w0", False)
        assert [w for w, _ in fleet.healthy_workers()] == ["w1"]
        assert fleet.describe()["up"] == 1
        with pytest.raises(FleetError):
            fleet.set_healthy("nope", True)
        fleet.stop()  # no-op


class TestRealSubprocessFleet:
    """One end-to-end check with real ``python -m repro.serve`` workers."""

    def test_boot_kill_recover(self, synthetic_bundle, tmp_path):
        bundle_path = str(tmp_path / "bundle.npz")
        synthetic_bundle(seed=41).save(bundle_path)
        supervisor = Supervisor(bundle_path, workers=2,
                                probe_interval_s=0.1, probe_timeout_s=1.0,
                                backoff_base_s=0.2, backoff_max_s=1.0,
                                startup_timeout_s=60.0)
        try:
            supervisor.start(wait_ready=True, timeout_s=60.0)
            assert len(supervisor.healthy_workers()) == 2

            # Workers answer /healthz with the bundle identity.
            worker = supervisor.workers[0]
            with urllib.request.urlopen(worker.url + "/healthz",
                                        timeout=5.0) as response:
                health = json.loads(response.read())
            assert health["status"] == "ok"
            assert health["bundle"]["path"] == bundle_path

            # SIGKILL one; the monitor must respawn it into rotation.
            # Health is eventually consistent (the monitor notices the
            # exit on its next tick), so poll for restart + recovery.
            supervisor.kill_worker("w0")
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if (supervisor._worker("w0").restarts >= 1
                        and len(supervisor.healthy_workers()) == 2):
                    break
                time.sleep(0.05)
            assert supervisor._worker("w0").restarts >= 1
            assert len(supervisor.healthy_workers()) == 2
        finally:
            supervisor.stop()
        assert all(w.state == STOPPED for w in supervisor.workers)
