"""Tests for the energy model, FPGA DPU model, and model-size accounting."""

import numpy as np
import pytest

from repro.hardware import (ZCU104_DPU, DPUConfig, DPUModel, EnergyModel,
                            ResourceUsage, baselinehd_inference_energy,
                            baselinehd_size_bytes, cnn_inference_energy,
                            cnn_size_bytes, energy_improvement,
                            nshd_inference_energy, nshd_size_bytes)
from repro.models import create_model


@pytest.fixture(scope="module")
def vgg():
    return create_model("vgg16", num_classes=10, width_mult=0.125, seed=0)


@pytest.fixture(scope="module")
def mobilenet():
    return create_model("mobilenetv2", num_classes=10, width_mult=0.125,
                        seed=0)


class TestEnergyModel:
    def test_component_costs(self):
        model = EnergyModel(mac_pj=2.0, dram_pj_per_byte=10.0)
        assert model.compute(100) == 200.0
        assert model.weights(10) == 100.0

    def test_cnn_energy_breakdown_positive(self, vgg):
        breakdown = cnn_inference_energy(vgg)
        assert breakdown["total"] > 0
        assert breakdown["total"] == pytest.approx(
            breakdown["compute"] + breakdown["weights"] +
            breakdown["activations"])

    def test_nshd_energy_below_cnn_at_early_layer(self, vgg):
        """Fig. 4's core claim: cutting early saves energy vs the CNN."""
        cnn = cnn_inference_energy(vgg)["total"]
        nshd = nshd_inference_energy(vgg, 15, dim=3000, reduced_features=64,
                                     num_classes=10)["total"]
        assert nshd < cnn

    def test_earlier_layer_more_saving(self, vgg):
        """Fig. 4: NSHD saves more energy at earlier cut layers."""
        cnn = cnn_inference_energy(vgg)["total"]
        early = nshd_inference_energy(vgg, 15, 3000, 64, 10)["total"]
        late = nshd_inference_energy(vgg, 29, 3000, 64, 10)["total"]
        assert energy_improvement(cnn, early) > energy_improvement(cnn, late)

    def test_nshd_compute_cheaper_than_baselinehd(self, vgg):
        """The manifold learner cuts compute energy vs the full-F encode
        (the energy counterpart of Fig. 5's MAC comparison).  Total energy
        additionally includes weight traffic, which the paper compares via
        model size (Table II), not Joules."""
        nshd = nshd_inference_energy(vgg, 27, 3000, 64, 10)["compute"]
        base = baselinehd_inference_energy(vgg, 27, 3000, 10)["compute"]
        assert nshd < base

    def test_improvement_bounds(self):
        assert energy_improvement(100.0, 36.0) == pytest.approx(0.64)
        with pytest.raises(ValueError):
            energy_improvement(0.0, 1.0)

    def test_energy_scales_with_dim(self, vgg):
        low = nshd_inference_energy(vgg, 27, 1000, 64, 10)["total"]
        high = nshd_inference_energy(vgg, 27, 10000, 64, 10)["total"]
        assert high > low


class TestDPU:
    def test_table1_resource_ledger(self):
        """Table I exactly: utilization percentages of the DPU on ZCU104."""
        util = ZCU104_DPU.utilization_table()
        assert util["LUT"] == pytest.approx(0.3687, abs=5e-4)
        assert util["FF"] == pytest.approx(0.3180, abs=2e-4)
        assert util["BRAM"] == pytest.approx(0.7179, abs=2e-4)
        assert util["URAM"] == pytest.approx(0.4167, abs=2e-4)
        assert util["DSP"] == pytest.approx(0.4884, abs=2e-4)
        assert ZCU104_DPU.frequency_hz == 200e6
        assert ZCU104_DPU.power_w == pytest.approx(4.427)

    def test_resource_usage_utilization(self):
        assert ResourceUsage(50, 200).utilization == 0.25

    def test_fps_inverse_of_cycles(self):
        dpu = DPUModel()
        assert dpu.fps(200e6) == pytest.approx(1.0)
        assert dpu.fps(100e6) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            dpu.fps(0)

    def test_nshd_fps_above_cnn(self, vgg):
        """Fig. 6: NSHD throughput beats the full CNN on the DPU."""
        dpu = DPUModel()
        assert dpu.nshd_fps(vgg, 27, 3000, 64, 10) > dpu.cnn_fps(vgg)

    def test_fps_decreases_with_dim(self, vgg):
        """Fig. 10: higher D costs throughput."""
        dpu = DPUModel()
        fps = [dpu.nshd_fps(vgg, 27, d, 64, 10)
               for d in (1000, 3000, 10000)]
        assert fps[0] > fps[1] > fps[2]

    def test_nshd_cycles_below_baseline(self, mobilenet):
        dpu = DPUModel()
        nshd = dpu.nshd_cycles(mobilenet, 14, 3000, 64, 10)
        base = dpu.baselinehd_cycles(mobilenet, 14, 3000, 10)
        assert nshd < base

    def test_energy_is_power_times_latency(self):
        dpu = DPUModel()
        cycles = 2e6
        assert dpu.energy_j(cycles) == pytest.approx(
            4.427 * cycles / 200e6)

    def test_custom_config(self):
        config = DPUConfig(frequency_hz=100e6, power_w=2.0,
                           peak_macs_per_cycle=1024)
        dpu = DPUModel(config)
        assert dpu.fps(100e6) == pytest.approx(1.0)


class TestModelSize:
    def test_cnn_size_counts_all_params(self, vgg):
        breakdown = cnn_size_bytes(vgg)
        assert breakdown.total == vgg.num_parameters() * 4

    def test_nshd_smaller_than_cnn_at_early_layer(self, vgg):
        """Table II: NSHD trims the model when cutting early."""
        cnn = cnn_size_bytes(vgg).total
        nshd = nshd_size_bytes(vgg, 15, dim=3000, reduced_features=64,
                               num_classes=10).total
        assert nshd < cnn

    def test_nshd_smaller_than_baselinehd(self, vgg):
        """Table II: the manifold layer shrinks the projection memory."""
        nshd = nshd_size_bytes(vgg, 27, 3000, 64, 10).total
        base = baselinehd_size_bytes(vgg, 27, 3000, 10).total
        assert nshd < base

    def test_projection_stored_binary(self, vgg):
        nshd = nshd_size_bytes(vgg, 27, 3000, 64, 10)
        assert nshd.projection == (64 * 3000 + 7) // 8

    def test_baseline_projection_spans_full_features(self, vgg):
        base = baselinehd_size_bytes(vgg, 27, 3000, 10)
        assert base.projection == (vgg.feature_count(27) * 3000 + 7) // 8

    def test_size_grows_with_cut_depth(self, vgg):
        sizes = [nshd_size_bytes(vgg, layer, 3000, 64, 10).total
                 for layer in (10, 20, 29)]
        assert sizes == sorted(sizes)

    def test_hd_params_shrink_70pct_from_10k_to_3k(self, vgg):
        """Sec. VII-D: D 10,000 -> 3,000 cuts HD-section parameters 70%."""
        def hd_bytes(dim):
            b = nshd_size_bytes(vgg, 27, dim, 64, 10)
            return b.projection + b.class_hvs
        reduction = 1.0 - hd_bytes(3000) / hd_bytes(10000)
        assert reduction == pytest.approx(0.70, abs=0.01)

    def test_total_mb_conversion(self, vgg):
        breakdown = cnn_size_bytes(vgg)
        assert breakdown.total_mb == pytest.approx(
            breakdown.total / 1048576)
