"""Serving-path tracing: id echo, propagation, batcher/router spans,
/tracez + /requestz, SLO burn rates."""

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.reliability import (DeadlineExceededError, LoadShedder,
                               OverloadShedError)
from repro.serve import (InferenceEngine, MicroBatcher, ModelServer,
                         Router, StaticFleet, free_port)
from repro.telemetry import (BurnRateTracker, TraceContext,
                             disable_request_tracing,
                             enable_request_tracing, get_flight_recorder,
                             get_registry, get_request_log)


def http_request(host, port, method, path, body=None, headers=None,
                 timeout=30.0):
    """(status, parsed json, response headers) without raising on 4xx."""
    conn = http.client.HTTPConnection(host, int(port), timeout=timeout)
    try:
        conn.request(method, path, body, headers or {})
        response = conn.getresponse()
        raw = response.read()
        try:
            parsed = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            parsed = {}
        return response.status, parsed, dict(response.getheaders())
    finally:
        conn.close()


def predict(address, payload, headers=None):
    body = json.dumps(payload).encode("utf-8")
    send = {"Content-Type": "application/json"}
    send.update(headers or {})
    return http_request(address[0], address[1], "POST", "/predict",
                        body, send)


@pytest.fixture
def traced():
    """Request tracing on (recorder + request log, no JSONL export)."""
    enable_request_tracing(service="test-worker", sample_rate=1.0)
    yield get_flight_recorder()
    disable_request_tracing()


@pytest.fixture
def server(synthetic_bundle):
    engine = InferenceEngine(synthetic_bundle(seed=77), cache_size=0)
    with ModelServer(engine, port=0, max_batch_size=16,
                     max_latency_ms=1.0, workers=2) as srv:
        yield srv


class TestServerTracing:
    def test_predict_traced_end_to_end(self, traced, server):
        rng = np.random.default_rng(7)
        status, payload, headers = predict(
            server.address, {"features": rng.standard_normal(32).tolist()})
        assert status == 200
        trace_id = headers.get("X-Trace-Id")
        assert trace_id and len(trace_id) == 32
        assert headers.get("traceparent", "").split("-")[1] == trace_id
        assert payload["request_id"] == trace_id

        found = traced.lookup(trace_id)
        assert found is not None
        names = {s["name"] for s in found["spans"]}
        assert {"server.request", "serve.batcher.queue",
                "serve.batcher.dispatch", "serve.predict"} <= names
        assert any(n.startswith("stage.") for n in names)
        root = found["tree"][0]["span"]
        assert root["name"] == "server.request"
        assert root["service"] == "test-worker"

    def test_client_traceparent_propagates(self, traced, server):
        upstream = TraceContext.mint()
        rng = np.random.default_rng(8)
        status, payload, headers = predict(
            server.address,
            {"features": rng.standard_normal(32).tolist()},
            {"traceparent": upstream.to_traceparent()})
        assert status == 200
        assert headers["X-Trace-Id"] == upstream.trace_id
        found = traced.lookup(upstream.trace_id)
        root = next(s for s in found["spans"]
                    if s["name"] == "server.request")
        assert root["parent_id"] == upstream.span_id

    def test_malformed_traceparent_mints_fresh(self, traced, server):
        rng = np.random.default_rng(9)
        status, _, headers = predict(
            server.address,
            {"features": rng.standard_normal(32).tolist()},
            {"traceparent": "zz-not-a-traceparent"})
        assert status == 200
        trace_id = headers["X-Trace-Id"]
        assert len(trace_id) == 32
        int(trace_id, 16)

    def test_error_responses_echo_trace_id(self, traced, server):
        host, port = server.address
        status, _, headers = http_request(host, port, "GET", "/nope")
        assert status == 404
        assert headers.get("X-Trace-Id")
        status, payload, headers = http_request(
            host, port, "POST", "/predict", b"not json",
            {"Content-Type": "application/json"})
        assert status == 400
        assert headers.get("X-Trace-Id")
        assert payload["request_id"] == headers["X-Trace-Id"]

    def test_ids_echo_even_with_tracing_disabled(self, server):
        rng = np.random.default_rng(10)
        status, payload, headers = predict(
            server.address, {"features": rng.standard_normal(32).tolist()})
        assert status == 200
        assert headers.get("X-Trace-Id")
        assert payload["request_id"] == headers["X-Trace-Id"]

    def test_tracez_and_requestz_endpoints(self, traced, server):
        host, port = server.address
        rng = np.random.default_rng(11)
        ids = []
        for _ in range(3):
            _, _, headers = predict(
                server.address,
                {"features": rng.standard_normal(32).tolist()})
            ids.append(headers["X-Trace-Id"])

        status, payload, _ = http_request(host, port, "GET", "/tracez")
        assert status == 200
        assert {t["trace_id"] for t in payload["retained"]} >= set(ids)
        status, payload, _ = http_request(
            host, port, "GET", f"/tracez?trace_id={ids[0]}")
        assert status == 200 and payload["trace_id"] == ids[0]
        status, payload, _ = http_request(
            host, port, "GET", "/tracez?trace_id=" + "f" * 32)
        assert status == 404 and "retained" in payload

        status, payload, _ = http_request(host, port, "GET",
                                          "/requestz?limit=2")
        assert status == 200
        assert payload["appended"] >= 3
        assert len(payload["requests"]) == 2
        assert all(r["trace_id"] for r in payload["requests"])
        status, payload, _ = http_request(
            host, port, "GET", f"/requestz?trace_id={ids[1]}")
        assert [r["trace_id"] for r in payload["requests"]] == [ids[1]]

    def test_probes_not_recorded(self, traced, server):
        host, port = server.address
        before = get_flight_recorder().stats["traces_seen"]
        status, _, headers = http_request(host, port, "GET", "/healthz")
        assert status == 200
        assert headers.get("X-Trace-Id")  # echo yes, record no
        assert get_flight_recorder().stats["traces_seen"] == before


class TestBatcherErrors:
    def test_deadline_error_carries_request_id_and_model(self, traced):
        gate = threading.Event()

        def stalled(batch):
            gate.wait(5.0)
            return np.zeros(len(batch), dtype=int)

        registry = get_registry()
        batcher = MicroBatcher(stalled, max_batch_size=4,
                               max_latency_ms=1.0, workers=1,
                               model_label="TestModel")
        try:
            filler = threading.Thread(
                target=lambda: batcher.submit(np.ones(3), timeout_s=10.0))
            filler.start()
            time.sleep(0.05)
            from repro.telemetry import get_hub
            with get_hub().trace("req") as trace:
                with pytest.raises(DeadlineExceededError) as excinfo:
                    batcher.submit(np.ones(3), timeout_s=0.05)
            assert excinfo.value.request_id == trace.trace_id
            assert excinfo.value.model == "TestModel"
            metric = registry.snapshot()[
                "serve.batcher.deadline.model.TestModel"]
            assert metric["value"] >= 1
        finally:
            gate.set()
            filler.join()
            batcher.shutdown()

    def test_shed_error_carries_request_id_and_model(self, traced):
        gate = threading.Event()

        def stalled(batch):
            gate.wait(5.0)
            return np.zeros(len(batch), dtype=int)

        registry = get_registry()
        batcher = MicroBatcher(stalled, max_batch_size=4,
                               max_latency_ms=1.0, workers=1,
                               shedder=LoadShedder(1),
                               default_timeout_s=10.0,
                               model_label="TestModel")
        shed = []

        def submit_one():
            try:
                batcher.submit(np.ones(3))
            except OverloadShedError as exc:
                shed.append(exc)

        try:
            from repro.telemetry import get_hub
            with get_hub().trace("req"):
                threads = [threading.Thread(target=submit_one)
                           for _ in range(6)]
                for thread in threads:
                    thread.start()
                    time.sleep(0.02)
            gate.set()
            for thread in threads:
                thread.join()
            assert shed
            assert all(exc.model == "TestModel" for exc in shed)
            metric = registry.snapshot()[
                "serve.batcher.shed.model.TestModel"]
            assert metric["value"] >= len(shed)
        finally:
            gate.set()
            batcher.shutdown()


@pytest.fixture
def routed(synthetic_bundle):
    """One live worker + one dead address behind a Router (failover)."""
    bundle = synthetic_bundle(seed=78)
    live = ModelServer(InferenceEngine(bundle, cache_size=0), port=0,
                       max_batch_size=16, max_latency_ms=1.0,
                       workers=1).start()
    dead_address = ("127.0.0.1", free_port())
    fleet = StaticFleet([live.address, dead_address])
    router = Router(fleet, port=0, max_attempts=2,
                    retry_backoff_s=0.005, request_timeout_s=10.0,
                    breaker_options={"failure_threshold": 10_000,
                                     "min_requests": 10_000})
    router.start()
    yield router
    router.stop()
    live.stop()


class TestRouterTracing:
    def test_failover_retry_recorded(self, traced, routed):
        rng = np.random.default_rng(12)
        host, port = routed.address
        retried = None
        for _ in range(16):
            status, payload, headers = predict(
                (host, port),
                {"features": rng.standard_normal(32).tolist()})
            assert status == 200
            trace_id = headers["X-Trace-Id"]
            assert payload["request_id"] == trace_id
            found = traced.lookup(trace_id)
            assert found is not None
            attempts = [s for s in found["spans"]
                        if s["name"] == "router.attempt"]
            if len(attempts) >= 2:
                retried = found
                break
        assert retried is not None, \
            "no request hashed to the dead worker first"
        names = {s["name"] for s in retried["spans"]}
        assert {"router.request", "router.attempt",
                "router.retry_backoff", "server.request"} <= names
        attempts = [s for s in retried["spans"]
                    if s["name"] == "router.attempt"]
        assert any(s["status"] == "error" for s in attempts)
        assert {s["attrs"]["worker"] for s in attempts} == {"w0", "w1"}
        attempt_ids = {s["span_id"] for s in attempts}
        request_root = next(s for s in retried["spans"]
                            if s["name"] == "server.request")
        assert request_root["parent_id"] in attempt_ids

    def test_router_error_payloads_and_slo_gauges(self, traced, routed):
        host, port = routed.address
        status, payload, headers = http_request(
            host, port, "POST", "/predict", b"not json",
            {"Content-Type": "application/json"})
        assert status == 400
        assert headers.get("X-Trace-Id")
        assert payload["request_id"] == headers["X-Trace-Id"]

        rng = np.random.default_rng(13)
        for _ in range(4):
            predict((host, port),
                    {"features": rng.standard_normal(32).tolist()})
        snapshot = get_registry().snapshot()
        for name in ("fleet.slo.availability.burn_fast",
                     "fleet.slo.availability.burn_slow",
                     "fleet.slo.latency.burn_fast",
                     "fleet.slo.latency.burn_slow"):
            assert name in snapshot
        # 400s are the client's fault: availability burn stays 0.
        assert snapshot["fleet.slo.availability.burn_fast"][
            "value"] == 0.0
        health = routed.health()
        assert health["slo"]["availability"]["objective"] == 0.999
        assert "fast_burn_rate" in health["slo"]["availability"]

    def test_router_tracez_requestz(self, traced, routed):
        host, port = routed.address
        rng = np.random.default_rng(14)
        _, _, headers = predict(
            (host, port), {"features": rng.standard_normal(32).tolist()})
        trace_id = headers["X-Trace-Id"]
        status, payload, _ = http_request(
            host, port, "GET", f"/tracez?trace_id={trace_id}")
        assert status == 200
        assert payload["trace_id"] == trace_id
        status, payload, _ = http_request(host, port, "GET", "/requestz")
        assert status == 200
        assert any(r["trace_id"] == trace_id
                   for r in payload["requests"])


class TestBurnRateTracker:
    def test_burn_math_with_fake_clock(self):
        now = [1000.0]
        tracker = BurnRateTracker(objective=0.9, fast_window_s=10.0,
                                  slow_window_s=60.0,
                                  clock=lambda: now[0])
        for i in range(10):
            tracker.record(ok=i % 2 == 0)  # 50% errors
        # error rate 0.5 over budget 0.1 → burning 5x too fast.
        assert tracker.burn_rate(10.0) == pytest.approx(5.0)
        summary = tracker.summary()
        assert summary["objective"] == 0.9
        assert summary["fast_burn_rate"] == pytest.approx(5.0)
        # Idle window: no traffic is no evidence of burning.
        now[0] += 120.0
        assert tracker.burn_rate(10.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BurnRateTracker(objective=1.5)
        with pytest.raises(ValueError):
            BurnRateTracker(fast_window_s=100.0, slow_window_s=10.0)
