"""HD diagnostics: drift/saturation/confusability units, callback wiring,
and the end-to-end smoke-run → ledger-entry integration check."""

import json
import math

import numpy as np
import pytest

from repro.learn import MassTrainer, VanillaHD
from repro.telemetry import (DiagnosticsCallback, Tracer, class_drift,
                             confusability_matrix, confusability_summary,
                             get_tracer, margin_quantiles,
                             saturation_fraction, set_tracer, use_registry)
from repro.telemetry.ledger import RunLedger, RunRecord


@pytest.fixture()
def fresh_tracer():
    previous = set_tracer(Tracer())
    yield get_tracer()
    set_tracer(previous)


class TestClassDrift:
    def test_known_values(self):
        prev = np.zeros((2, 4))
        curr = np.array([[3.0, 4.0, 0.0, 0.0], [0.0, 0.0, 0.0, 0.0]])
        drift = class_drift(prev, curr)
        assert drift["per_class"] == [5.0, 0.0]
        assert drift["total"] == pytest.approx(5.0)

    def test_relative_nan_for_zero_previous(self):
        drift = class_drift(np.zeros((2, 4)), np.ones((2, 4)))
        assert math.isnan(drift["relative"])

    def test_relative_normalised(self):
        prev = np.ones((1, 4))
        drift = class_drift(prev, 2 * prev)
        assert drift["relative"] == pytest.approx(1.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            class_drift(np.zeros((2, 4)), np.zeros((3, 4)))

    def test_no_drift(self):
        matrix = np.random.default_rng(0).standard_normal((3, 8))
        drift = class_drift(matrix, matrix)
        assert drift["total"] == 0.0
        assert drift["relative"] == 0.0


class TestSaturation:
    def test_zero_matrix(self):
        assert saturation_fraction(np.zeros((4, 8))) == 0.0

    def test_empty_matrix(self):
        assert saturation_fraction(np.zeros((0, 8))) == 0.0

    def test_uniform_magnitude_not_saturated(self):
        # Bipolar matrix: every |entry| == RMS, nothing above 3x RMS.
        matrix = np.sign(np.random.default_rng(0).standard_normal((4, 64)))
        assert saturation_fraction(matrix) == 0.0

    def test_spike_detected(self):
        matrix = np.ones((1, 100))
        matrix[0, 0] = 1000.0
        frac = saturation_fraction(matrix, factor=3.0)
        assert frac == pytest.approx(0.01)

    def test_bad_factor_raises(self):
        with pytest.raises(ValueError, match="factor"):
            saturation_fraction(np.ones((2, 2)), factor=0.0)


class TestConfusability:
    def test_orthogonal_classes(self):
        sims = confusability_matrix(np.eye(3))
        assert np.allclose(sims, np.eye(3))

    def test_identical_classes_fully_confusable(self):
        matrix = np.tile(np.arange(1.0, 5.0), (2, 1))
        summary = confusability_summary(matrix)
        assert summary["off_diag_max"] == pytest.approx(1.0)
        assert summary["most_confusable"] == [0, 1]

    def test_zero_rows_do_not_blow_up(self):
        sims = confusability_matrix(np.zeros((2, 4)))
        assert np.all(np.isfinite(sims))

    def test_single_class_nan_summary(self):
        summary = confusability_summary(np.ones((1, 4)))
        assert math.isnan(summary["off_diag_mean"])
        assert summary["most_confusable"] is None

    def test_most_confusable_pair(self):
        matrix = np.array([[1.0, 0.0, 0.0],
                           [0.0, 1.0, 0.0],
                           [0.1, 0.995, 0.0]])
        summary = confusability_summary(matrix)
        assert sorted(summary["most_confusable"]) == [1, 2]

    def test_mixed_zero_norm_row_stays_finite(self):
        # One untrained (all-zero) prototype among live ones must not
        # poison the summary with NaN/inf.
        matrix = np.array([[1.0, 0.0], [0.0, 0.0], [0.0, 1.0]])
        summary = confusability_summary(matrix)
        assert math.isfinite(summary["off_diag_mean"])
        assert math.isfinite(summary["off_diag_max"])

    def test_single_class_summary_is_json_safe(self):
        # json.dumps must not choke on the degenerate k=1 summary once
        # NaNs are mapped out the way the ledger serialises them.
        summary = confusability_summary(np.ones((1, 4)))
        safe = {key: (None if isinstance(value, float)
                      and math.isnan(value) else value)
                for key, value in summary.items()}
        json.dumps(safe)


class TestMarginQuantiles:
    def test_empty_when_absent(self):
        with use_registry():
            assert margin_quantiles() == {}

    def test_populated_from_histogram(self):
        with use_registry() as registry:
            registry.observe_many("train.similarity_margin",
                                  [0.1, 0.2, 0.3, 0.4, 0.5])
            quantiles = margin_quantiles(registry)
        assert quantiles["count"] == 5
        assert quantiles["mean"] == pytest.approx(0.3)
        assert {"p50", "p95", "p99"} <= set(quantiles)

    def test_wrong_kind_ignored(self):
        with use_registry() as registry:
            registry.set_gauge("train.similarity_margin", 1.0)
            assert margin_quantiles(registry) == {}

    def test_empty_histogram_returns_empty(self):
        # A histogram that exists but never sampled any margin must
        # yield {} rather than NaN quantiles.
        with use_registry() as registry:
            registry.histogram("train.similarity_margin")
            assert margin_quantiles(registry) == {}


def make_hv_problem(n=120, dim=128, classes=4, seed=0):
    rng = np.random.default_rng(seed)
    prototypes = np.sign(rng.standard_normal((classes, dim)))
    labels = rng.integers(0, classes, n)
    noise = np.where(rng.random((n, dim)) < 0.2, -1.0, 1.0)
    return prototypes[labels] * noise, labels


class TestDiagnosticsCallback:
    def test_records_one_entry_per_epoch(self, fresh_tracer):
        hvs, labels = make_hv_problem()
        with use_registry() as registry:
            diag = DiagnosticsCallback()
            MassTrainer(4, 128).fit(hvs, labels, epochs=3, batch_size=32,
                                    rng=np.random.default_rng(1),
                                    callbacks=[diag])
            snapshot = registry.snapshot()
        assert len(diag.records) == 3
        assert [r["epoch"] for r in diag.records] == [0, 1, 2]
        first = diag.records[0]
        # Epoch 0 drift is measured against the pre-fit (zero) matrix.
        assert first["drift"]["total"] > 0.0
        assert 0.0 <= first["saturation_fraction"] <= 1.0
        assert "off_diag_max" in first["confusability"]
        assert first["margin"]["count"] > 0
        # Gauges published for dashboards.
        for name in ("hd.drift_total", "hd.saturation_fraction",
                     "hd.confusability_max"):
            assert name in snapshot, name

    def test_drift_shrinks_as_training_converges(self, fresh_tracer):
        hvs, labels = make_hv_problem()
        with use_registry():
            diag = DiagnosticsCallback()
            MassTrainer(4, 128, lr=0.05).fit(
                hvs, labels, epochs=5, batch_size=32,
                rng=np.random.default_rng(1), callbacks=[diag])
        totals = [r["drift"]["total"] for r in diag.records]
        # Later-epoch updates are strictly smaller than the initial
        # zero-to-trained jump.
        assert totals[-1] < totals[0]

    def test_summary_structure_json_safe(self, fresh_tracer):
        hvs, labels = make_hv_problem()
        with use_registry():
            diag = DiagnosticsCallback()
            MassTrainer(4, 128).fit(hvs, labels, epochs=2, batch_size=32,
                                    rng=np.random.default_rng(1),
                                    callbacks=[diag])
        summary = diag.summary()
        assert len(summary["per_epoch"]) == 2
        final = summary["final"]
        for key in ("drift_total", "drift_relative", "saturation_fraction",
                    "confusability", "margin"):
            assert key in final, key
        matrix = summary["confusability_matrix"]
        assert len(matrix) == 4 and len(matrix[0]) == 4
        assert all(m[i][i] == pytest.approx(1.0)
                   for i, m in ((i, matrix) for i in range(4)))
        # Must survive strict-JSON encoding after non-finite tagging.
        from repro.telemetry import encode_non_finite
        json.dumps(encode_non_finite(summary), allow_nan=False)

    def test_no_matrix_no_records(self, fresh_tracer):
        diag = DiagnosticsCallback()  # trainer stays None
        diag.on_fit_start(None, 2)
        diag.on_epoch_end(0, {})
        assert diag.records == []
        assert diag.summary() == {"per_epoch": []}

    def test_works_without_on_fit_start(self, fresh_tracer):
        with use_registry():
            trainer = MassTrainer(3, 32)
            trainer.class_matrix = np.ones((3, 32))
            diag = DiagnosticsCallback(trainer=trainer)
            diag.on_epoch_end(0, {"train_acc": 0.5})
        assert len(diag.records) == 1
        assert diag.records[0]["train_acc"] == 0.5


class TestSmokeRunLedgerIntegration:
    """Acceptance: one smoke pipeline fit appends exactly one well-formed
    ledger entry with non-empty stage timings and drift diagnostics."""

    def test_vanillahd_run_appends_one_entry(self, fresh_tracer, tmp_path):
        rng = np.random.default_rng(0)
        images = rng.standard_normal((60, 3, 8, 8)).astype(np.float64)
        labels = rng.integers(0, 3, 60)
        with use_registry() as registry:
            pipeline = VanillaHD(num_classes=3, image_size=8, dim=256,
                                 seed=0)
            diag = DiagnosticsCallback()
            history = pipeline.fit(images, labels, epochs=2, batch_size=32,
                                   callbacks=[diag])
            record = RunRecord.capture(
                "vanillahd", config={"dim": 256, "seed": 0}, seed=0,
                wall_s=sum(history["epoch_time"]),
                final_accuracy=history["train_acc"][-1],
                history={k: [float(v) for v in vals]
                         for k, vals in history.items()},
                diagnostics=diag.summary(),
                registry=registry, tracer=fresh_tracer)

        ledger = RunLedger(str(tmp_path / "ledger"))
        ledger.append(record)

        # Exactly one line, valid JSON.
        lines = open(ledger.path).read().splitlines()
        assert len(lines) == 1
        json.loads(lines[0])

        restored = ledger.records()[0]
        # Non-empty stage timings covering the instrumented stages.
        assert {"encode", "similarity", "update"} <= set(
            restored.stage_times)
        assert all(t >= 0.0 for t in restored.stage_times.values())
        assert restored.stage_calls["update"] >= 1
        # Drift diagnostics present and populated.
        diagnostics = restored.diagnostics
        assert len(diagnostics["per_epoch"]) == 2
        assert diagnostics["final"]["drift_total"] >= 0.0
        assert 0 <= diagnostics["final"]["saturation_fraction"] <= 1
        # Provenance round-tripped.
        assert restored.pipeline == "vanillahd"
        assert restored.config_fingerprint == record.config_fingerprint
        assert restored.env["numpy"] == np.__version__
        assert restored.final_accuracy == pytest.approx(
            history["train_acc"][-1])
