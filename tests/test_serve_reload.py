"""Hot bundle reload: atomic engine swap, torn-bundle rejection, SIGHUP."""

import json
import signal
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import (InferenceEngine, ModelBundle, ModelServer,
                         ReloadError)
from repro.telemetry import get_registry

from .conftest import _synthetic_bundle


def post(url, payload=None, timeout=30):
    data = (b"" if payload is None
            else json.dumps(payload).encode("utf-8"))
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def get(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read())


@pytest.fixture
def bundles(tmp_path):
    """Two structurally different on-disk bundles (float vs packed)."""
    a = str(tmp_path / "a.npz")
    b = str(tmp_path / "b.npz")
    _synthetic_bundle(seed=1, binary=False).save(a)
    _synthetic_bundle(seed=2, binary=True).save(b)
    return a, b


@pytest.fixture
def server(bundles):
    path_a, _ = bundles
    engine = InferenceEngine.from_path(path_a, cache_size=16)
    with ModelServer(engine, port=0, workers=1,
                     bundle_path=path_a) as srv:
        yield srv


class TestReloadMethod:
    def test_reload_swaps_engine(self, server, bundles):
        _, path_b = bundles
        old_engine = server.engine
        info = server.reload(path_b)
        assert info["reloaded"] is True
        assert info["reloads"] == 1
        assert server.engine is not old_engine
        assert server.bundle_path == path_b
        # the new engine really is the packed one
        assert server.engine.use_packed

    def test_reload_same_path_by_default(self, server, bundles):
        path_a, _ = bundles
        info = server.reload()
        assert info["bundle_path"] == path_a
        assert server.reloads == 1

    def test_predictions_switch_after_reload(self, server, bundles):
        _, path_b = bundles
        rng = np.random.default_rng(0)
        features = rng.standard_normal((4, 32))
        before = server.predict(features)
        server.reload(path_b)
        after = server.predict(features)
        want = InferenceEngine.from_path(path_b).predict_features(features)
        assert after == [int(v) for v in want]
        # engines differ, so at least the model fingerprint changed
        assert (server.engine.bundle.info["config_fingerprint"]
                != ModelBundle.load(bundles[0]).info["config_fingerprint"])
        assert isinstance(before, list)

    def test_missing_file_raises_and_keeps_engine(self, server):
        old_engine = server.engine
        with pytest.raises(ReloadError, match="rejected"):
            server.reload("/nonexistent/bundle.npz")
        assert server.engine is old_engine
        assert server.reloads == 0

    def test_torn_bundle_rejected(self, server, bundles, tmp_path):
        path_a, _ = bundles
        torn = str(tmp_path / "torn.npz")
        with open(path_a, "rb") as handle:
            blob = handle.read()
        with open(torn, "wb") as handle:
            handle.write(blob[:len(blob) // 2])  # truncated mid-write
        old_engine = server.engine
        with pytest.raises(ReloadError, match="previous engine"):
            server.reload(torn)
        assert server.engine is old_engine

    def test_no_path_configured_raises(self, bundles):
        path_a, _ = bundles
        engine = InferenceEngine.from_path(path_a)
        with ModelServer(engine, port=0, workers=1) as srv:
            with pytest.raises(ReloadError, match="no bundle path"):
                srv.reload()

    def test_engine_options_survive_reload(self, bundles):
        path_a, path_b = bundles
        engine = InferenceEngine.from_path(path_a, cache_size=7)
        with ModelServer(engine, port=0, workers=1, bundle_path=path_a,
                         engine_options={"cache_size": 7}) as srv:
            srv.reload(path_b)
            assert srv.engine.cache_info()["max_entries"] == 7


class TestReloadHTTP:
    def test_post_reload_success(self, server, bundles):
        _, path_b = bundles
        out = post(server.url + "/reload", {"bundle": path_b})
        assert out["reloaded"] is True
        assert out["engine"]["packed"] is True
        health = get(server.url + "/healthz")
        assert health["reloads"] == 1
        assert health["bundle_path"] == path_b

    def test_post_reload_empty_body_rereads_configured_path(self, server):
        out = post(server.url + "/reload")
        assert out["reloaded"] is True

    def test_post_reload_bad_path_is_409(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(server.url + "/reload", {"bundle": "/no/such.npz"})
        assert excinfo.value.code == 409
        body = json.loads(excinfo.value.read())
        assert body["reloaded"] is False
        # old engine still serves
        rng = np.random.default_rng(1)
        out = post(server.url + "/predict",
                   {"features": rng.standard_normal((2, 32)).tolist()})
        assert len(out["labels"]) == 2

    def test_post_reload_invalid_json_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/reload", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_post_reload_non_dict_body_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(server.url + "/reload", ["not", "a", "dict"])
        assert excinfo.value.code == 400

    def test_reload_metrics_counted(self, server, bundles):
        _, path_b = bundles
        registry = get_registry()
        before = registry.snapshot().get("serve.reload.success",
                                         {}).get("value", 0)
        post(server.url + "/reload", {"bundle": path_b})
        after = registry.snapshot()["serve.reload.success"]["value"]
        assert after == before + 1


class TestSignalHandler:
    def test_install_on_main_thread(self, server):
        previous = signal.getsignal(signal.SIGHUP)
        try:
            assert server.install_signal_handlers() is True
            handler = signal.getsignal(signal.SIGHUP)
            assert callable(handler)
            # Invoking the handler performs a reload of the configured
            # bundle (exactly what a real SIGHUP delivery does).
            handler(signal.SIGHUP, None)
            assert server.reloads == 1
        finally:
            signal.signal(signal.SIGHUP, previous)

    def test_handler_swallows_reload_failure(self, server):
        previous = signal.getsignal(signal.SIGHUP)
        try:
            server.install_signal_handlers()
            handler = signal.getsignal(signal.SIGHUP)
            server.bundle_path = "/vanished/bundle.npz"
            handler(signal.SIGHUP, None)  # must not raise
            assert server.reloads == 0
        finally:
            signal.signal(signal.SIGHUP, previous)

    def test_install_refused_off_main_thread(self, server):
        result = {}

        def worker():
            result["installed"] = server.install_signal_handlers()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert result["installed"] is False
