"""Regenerate the golden pre-refactor prediction fixtures.

These fixtures pin the *exact* float behaviour of the NSHD / BaselineHD /
VanillaHD inference paths (and their exported serve bundles) at the
commit immediately **before** the stage-graph refactor.  The refactor is
required to be bit-exact, so the committed ``.npz`` files in this
directory must keep reproducing verbatim on every later revision:

* ``golden_inputs.npz`` — the frozen test images plus, per pipeline, the
  expected predicted labels (float path) and — where the packed
  XOR-popcount path applies — the packed-path labels of the binarized
  bundle.
* ``golden_<name>_ckpt.npz`` — a pipeline training checkpoint (legacy
  format: no graph-topology manifest section).
* ``golden_<name>_bundle.npz`` / ``golden_<name>_bundle_packed.npz`` —
  pre-refactor serve bundles (no ``info["graph"]`` key), float and
  binarized exports.
* ``golden_model.npz`` — the tiny trained CNN's weights, so tests can
  reconstruct the NSHD / BaselineHD pipelines deterministically without
  re-training the CNN.

Run from the repo root (only needed when *intentionally* re-pinning,
e.g. after a deliberate numerics change)::

    PYTHONPATH=src python tests/fixtures/make_golden.py
"""

import json
import os
import sys

import numpy as np

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.data import make_dataset, normalize_images  # noqa: E402
from repro.learn import NSHD, BaselineHD, VanillaHD  # noqa: E402
from repro.models import create_model, train_cnn  # noqa: E402
from repro.nn.serialize import save_state  # noqa: E402
from repro.serve import InferenceEngine, ModelBundle  # noqa: E402

#: Shared fixture geometry — keep in sync with tests/test_pipeline_golden.py.
SPEC = {
    "num_classes": 4,
    "num_train": 120,
    "num_test": 48,
    "data_seed": 23,
    "image_size": 32,
    "model": "vgg16",
    "width_mult": 0.125,
    "model_seed": 3,
    "cnn_epochs": 2,
    "layer_index": 21,
    "dim": 256,
    "reduced_features": 16,
    "seed": 0,
    "epochs": 2,
}


def build_dataset():
    x_tr, y_tr, x_te, y_te = make_dataset(
        num_classes=SPEC["num_classes"], num_train=SPEC["num_train"],
        num_test=SPEC["num_test"], seed=SPEC["data_seed"])
    x_tr, mean, std = normalize_images(x_tr)
    x_te, _, _ = normalize_images(x_te, mean, std)
    return x_tr, y_tr, x_te, y_te


def build_model(x_tr, y_tr):
    model = create_model(SPEC["model"], num_classes=SPEC["num_classes"],
                         width_mult=SPEC["width_mult"],
                         seed=SPEC["model_seed"])
    train_cnn(model, x_tr, y_tr, epochs=SPEC["cnn_epochs"], batch_size=32,
              lr=2e-3, seed=SPEC["model_seed"], augment=False)
    return model


def main() -> None:
    x_tr, y_tr, x_te, y_te = build_dataset()
    model = build_model(x_tr, y_tr)
    save_state({name: np.asarray(value)
                for name, value in model.state_dict().items()},
               os.path.join(HERE, "golden_model.npz"),
               meta={"spec": SPEC})

    golden = {
        "x_te": np.asarray(x_te),
        "y_te": np.asarray(y_te),
    }

    pipelines = {
        "nshd": NSHD(model, layer_index=SPEC["layer_index"],
                     dim=SPEC["dim"],
                     reduced_features=SPEC["reduced_features"],
                     seed=SPEC["seed"]),
        "baselinehd": BaselineHD(model, layer_index=SPEC["layer_index"],
                                 dim=SPEC["dim"], seed=SPEC["seed"]),
        "vanillahd": VanillaHD(num_classes=SPEC["num_classes"],
                               image_size=SPEC["image_size"],
                               dim=SPEC["dim"], seed=SPEC["seed"]),
    }

    for name, pipeline in pipelines.items():
        pipeline.fit(x_tr, y_tr, epochs=SPEC["epochs"])
        pipeline.save_checkpoint(
            os.path.join(HERE, f"golden_{name}_ckpt.npz"),
            epoch=SPEC["epochs"])
        golden[f"{name}.labels"] = np.asarray(pipeline.predict(x_te))
        if hasattr(pipeline, "extractor"):
            raw = pipeline.extractor.extract(x_te)
        else:
            raw = np.asarray(x_te).reshape(len(x_te), -1)
        golden[f"{name}.raw_features"] = raw
        golden[f"{name}.encoded"] = np.asarray(pipeline.encode(x_te))

        bundle = ModelBundle.from_pipeline(pipeline,
                                           config={"golden": name, **SPEC})
        bundle.save(os.path.join(HERE, f"golden_{name}_bundle.npz"))
        engine = InferenceEngine(bundle, cache_size=0)
        golden[f"{name}.engine_labels"] = np.asarray(
            engine.predict_features(raw))

        # Packed path: only meaningful for quantizing random-projection
        # encoders (NSHD / BaselineHD).
        if getattr(pipeline.encoder, "quantize", False):
            packed_bundle = ModelBundle.from_pipeline(
                pipeline, config={"golden": name, **SPEC}, binarize=True)
            packed_bundle.save(
                os.path.join(HERE, f"golden_{name}_bundle_packed.npz"))
            packed_engine = InferenceEngine(packed_bundle, cache_size=0)
            assert packed_engine.use_packed
            golden[f"{name}.packed_labels"] = np.asarray(
                packed_engine.predict_features(raw))

    np.savez_compressed(os.path.join(HERE, "golden_inputs.npz"), **golden)
    with open(os.path.join(HERE, "golden_spec.json"), "w") as handle:
        json.dump(SPEC, handle, indent=2, sort_keys=True)
    for key in sorted(golden):
        print(f"{key}: shape={np.asarray(golden[key]).shape}")
    print("golden fixtures written to", HERE)


if __name__ == "__main__":
    main()
