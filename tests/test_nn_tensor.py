"""Unit tests for the autograd Tensor: arithmetic, broadcasting, tape."""

import numpy as np
import pytest

from repro.nn import Tensor, concatenate, no_grad, stack


def numeric_grad(fn, x, eps=1e-6):
    """Central-difference gradient of scalar fn wrt array x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = fn(x)
        flat[i] = orig - eps
        minus = fn(x)
        flat[i] = orig
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_item_shape_guard(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).backward()

    def test_detach_breaks_tape(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * 3).detach()
        assert not y.requires_grad

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))


class TestArithmeticGradients:
    def check(self, op, *shapes, positive=False):
        rng = np.random.default_rng(0)
        arrays = [rng.normal(size=s) + (2.0 if positive else 0.0)
                  for s in shapes]
        tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
        out = op(*tensors)
        loss = (out * out).sum()
        loss.backward()
        for i, (arr, tensor) in enumerate(zip(arrays, tensors)):
            def scalar_fn(a, i=i):
                args = [Tensor(x) for x in arrays]
                args[i] = Tensor(a)
                o = op(*args)
                return float((o.data ** 2).sum())
            expected = numeric_grad(scalar_fn, arr.copy())
            np.testing.assert_allclose(tensor.grad, expected, rtol=1e-4,
                                       atol=1e-6)

    def test_add(self):
        self.check(lambda a, b: a + b, (3, 4), (3, 4))

    def test_add_broadcast(self):
        self.check(lambda a, b: a + b, (3, 4), (4,))

    def test_sub(self):
        self.check(lambda a, b: a - b, (2, 3), (2, 3))

    def test_mul(self):
        self.check(lambda a, b: a * b, (3, 2), (3, 2))

    def test_mul_broadcast_scalar_shape(self):
        self.check(lambda a, b: a * b, (4,), (1,))

    def test_div(self):
        self.check(lambda a, b: a / b, (3,), (3,), positive=True)

    def test_pow(self):
        self.check(lambda a: a ** 3, (4,))

    def test_neg(self):
        self.check(lambda a: -a, (5,))

    def test_matmul(self):
        self.check(lambda a, b: a @ b, (3, 4), (4, 2))

    def test_matmul_batched(self):
        self.check(lambda a, b: a @ b, (2, 3, 4), (2, 4, 5))

    def test_exp(self):
        self.check(lambda a: a.exp(), (3, 3))

    def test_log(self):
        self.check(lambda a: a.log(), (4,), positive=True)

    def test_tanh(self):
        self.check(lambda a: a.tanh(), (3,))

    def test_sigmoid(self):
        self.check(lambda a: a.sigmoid(), (3,))

    def test_relu(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(10,))
        a[np.abs(a) < 0.1] = 0.5  # keep away from the kink
        t = Tensor(a, requires_grad=True)
        (t.relu() * t.relu()).sum().backward()
        expected = 2 * np.maximum(a, 0)
        np.testing.assert_allclose(t.grad, expected)

    def test_clamp(self):
        a = np.array([-2.0, -0.5, 0.5, 2.0])
        t = Tensor(a, requires_grad=True)
        t.clamp(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 1.0, 0.0])

    def test_abs(self):
        self.check(lambda a: a.abs(), (4,), positive=True)

    def test_rsub_and_rdiv(self):
        x = Tensor([2.0], requires_grad=True)
        y = 1.0 - x
        z = 1.0 / x
        assert y.data[0] == pytest.approx(-1.0)
        assert z.data[0] == pytest.approx(0.5)


class TestReductionGradients:
    def test_sum_all(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 3)))

    def test_sum_axis(self):
        t = Tensor(np.ones((2, 3)), requires_grad=True)
        t.sum(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 3)))

    def test_sum_keepdims(self):
        t = Tensor(np.ones((2, 3)), requires_grad=True)
        t.sum(axis=0, keepdims=True).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 3)))

    def test_mean(self):
        t = Tensor(np.ones((4,)), requires_grad=True)
        t.mean().backward()
        np.testing.assert_allclose(t.grad, np.full(4, 0.25))

    def test_mean_axis(self):
        t = Tensor(np.ones((2, 4)), requires_grad=True)
        t.mean(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, np.full((2, 4), 0.25))

    def test_max_gradient_routes_to_argmax(self):
        t = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.0, 1.0, 0.0]])

    def test_max_ties_split_gradient(self):
        t = Tensor(np.array([3.0, 3.0]), requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.5, 0.5])

    def test_var_matches_numpy(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(5, 7))
        v = Tensor(a).var(axis=0)
        np.testing.assert_allclose(v.data, a.var(axis=0), rtol=1e-10)


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self):
        t = Tensor(np.arange(6.0), requires_grad=True)
        (t.reshape(2, 3) * 2).sum().backward()
        np.testing.assert_allclose(t.grad, np.full(6, 2.0))

    def test_transpose_gradient(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        scale = np.arange(6.0).reshape(3, 2)
        (t.transpose() * Tensor(scale)).sum().backward()
        np.testing.assert_allclose(t.grad, scale.T)

    def test_flatten_preserves_batch(self):
        t = Tensor(np.zeros((4, 2, 3, 3)))
        assert t.flatten().shape == (4, 18)

    def test_getitem_gradient_scatter(self):
        t = Tensor(np.arange(4.0), requires_grad=True)
        t[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 0.0, 1.0, 0.0])

    def test_pad2d(self):
        t = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        padded = t.pad2d(1)
        assert padded.shape == (1, 1, 4, 4)
        padded.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((1, 1, 2, 2)))

    def test_stack_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (stack([a, b]) * Tensor([[1.0, 2.0], [3.0, 4.0]])).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])
        np.testing.assert_allclose(b.grad, [3.0, 4.0])

    def test_concatenate_gradient(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        concatenate([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, np.ones((3, 2)))


class TestTapeSemantics:
    def test_grad_accumulates_over_reuse(self):
        x = Tensor([3.0], requires_grad=True)
        y = x * x + x
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_diamond_graph(self):
        x = Tensor([2.0], requires_grad=True)
        a = x * 3
        b = x * 4
        (a + b).sum().backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_no_grad_blocks_recording(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_backward_twice_accumulates(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        (x * 2).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_deep_chain_does_not_recurse(self):
        # The topological sort is iterative; a 5000-op chain must not
        # hit Python's recursion limit.
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(5000):
            y = y + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_sign_ste_forward_bipolar(self):
        x = Tensor(np.array([-0.5, 0.0, 2.0]))
        np.testing.assert_allclose(x.sign_ste().data, [-1.0, 1.0, 1.0])

    def test_sign_ste_gradient_window(self):
        x = Tensor(np.array([-2.0, -0.5, 0.5, 2.0]), requires_grad=True)
        x.sign_ste().sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 1.0, 0.0])

    def test_backward_shape_mismatch_raises(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        y = x * 2
        with pytest.raises(ValueError):
            y.backward(np.ones((3,)))
