"""HTTP model server: routing, error mapping, e2e pipeline parity."""

import json
import socket
import struct
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.data import make_dataset
from repro.learn import VanillaHD
from repro.serve import InferenceEngine, ModelBundle, ModelServer
from repro.telemetry import get_registry


def counter(name):
    entry = get_registry().snapshot().get(name) or {}
    return float(entry.get("value", 0.0))


def post(url, payload, timeout=30):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def get(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


class GatedEngine:
    """Engine façade whose predict blocks until released (503/504 tests)."""

    def __init__(self, engine):
        self.engine = engine
        self.bundle = engine.bundle
        self.gate = threading.Event()

    def predict_features(self, features):
        self.gate.wait(10.0)
        return self.engine.predict_features(features)

    def describe(self):
        return self.engine.describe()


class TestRoutes:
    @pytest.fixture()
    def server(self, synthetic_bundle):
        engine = InferenceEngine(synthetic_bundle(seed=21))
        with ModelServer(engine, port=0, max_batch_size=16,
                         max_latency_ms=2.0, workers=2) as server:
            yield server

    def test_predict_matrix_and_flat(self, server):
        rng = np.random.default_rng(21)
        features = rng.standard_normal((12, 32))
        out = post(server.url + "/predict",
                   {"features": features.tolist()})
        expected = [int(v) for v in
                    server.engine.predict_features(features)]
        assert out["labels"] == expected
        assert out["model"] == server.engine.bundle.info[
            "config_fingerprint"]
        # A flat list is one sample.
        single = post(server.url + "/predict",
                      {"features": features[0].tolist()})
        assert single["labels"] == expected[:1]

    def test_healthz(self, server):
        health = json.loads(get(server.url + "/healthz"))
        assert health["status"] == "ok"
        assert health["engine"]["packed"]
        assert "depth" in health["batcher"]
        assert health["shedder"]["high"] == 128

    def test_metrics_exposition(self, server):
        rng = np.random.default_rng(22)
        post(server.url + "/predict",
             {"features": rng.standard_normal((4, 32)).tolist()})
        metrics = get(server.url + "/metrics").replace(".", "_")
        assert "serve_batcher_completed" in metrics
        assert "serve_batcher_batch_size" in metrics

    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(server.url + "/nope")
        assert excinfo.value.code == 404

    @pytest.mark.parametrize("payload", [
        {"features": "nope"},
        {"wrong_key": [[1.0]]},
        {"features": []},
        {"features": [[1.0, float("nan")] + [0.0] * 30]},
    ])
    def test_malformed_request_400(self, server, payload):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(server.url + "/predict", payload)
        assert excinfo.value.code == 400

    def test_invalid_json_400(self, server):
        request = urllib.request.Request(
            server.url + "/predict", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


class TestDegradationMapping:
    def test_overload_maps_to_503(self, synthetic_bundle):
        gated = GatedEngine(InferenceEngine(synthetic_bundle(seed=23)))
        server = ModelServer(gated, port=0, max_batch_size=4,
                             max_latency_ms=1.0, workers=1,
                             high_watermark=1, timeout_s=10.0)
        server.start()
        try:
            rng = np.random.default_rng(23)
            codes = []

            def fire():
                try:
                    post(server.url + "/predict",
                         {"features": rng.standard_normal(32).tolist()})
                    codes.append(200)
                except urllib.error.HTTPError as exc:
                    codes.append(exc.code)
                    if exc.code == 503:
                        assert exc.headers.get("Retry-After") == "1"

            threads = [threading.Thread(target=fire) for _ in range(6)]
            for t in threads:
                t.start()
            import time
            time.sleep(0.1)
            gated.gate.set()
            for t in threads:
                t.join()
            assert 503 in codes, f"no shed response in {codes}"
            health = json.loads(get(server.url + "/healthz"))
            assert health["shedder"]["shed"] >= 1
        finally:
            gated.gate.set()
            server.stop()

    def test_deadline_maps_to_504(self, synthetic_bundle):
        gated = GatedEngine(InferenceEngine(synthetic_bundle(seed=24)))
        server = ModelServer(gated, port=0, workers=1,
                             high_watermark=None, timeout_s=0.05)
        server.start()
        try:
            rng = np.random.default_rng(24)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(server.url + "/predict",
                     {"features": rng.standard_normal(32).tolist()})
            assert excinfo.value.code == 504
        finally:
            gated.gate.set()
            server.stop()


class TestLifecycle:
    def test_stop_without_start_is_safe(self, synthetic_bundle):
        server = ModelServer(InferenceEngine(synthetic_bundle()), port=0)
        server.stop()  # must not deadlock or raise

    def test_context_manager_releases_port(self, synthetic_bundle):
        engine = InferenceEngine(synthetic_bundle())
        with ModelServer(engine, port=0) as server:
            port = server.address[1]
            assert port > 0
        # Rebinding the same port proves the listener closed.
        with ModelServer(engine, port=port) as server2:
            assert server2.address[1] == port


class BrokenSelfcheckEngine:
    """Engine façade whose deep selfcheck fails (torn-worker detection)."""

    def __init__(self, engine):
        self.engine = engine
        self.bundle = engine.bundle
        self.use_packed = engine.use_packed

    def predict_features(self, features):
        return self.engine.predict_features(features)

    def describe(self):
        return self.engine.describe()

    def selfcheck(self):
        raise RuntimeError("packed path diverged from float reference")


class TestHealthzIdentity:
    def test_shallow_health_reports_bundle_and_mode(self, synthetic_bundle,
                                                    tmp_path):
        bundle = synthetic_bundle(seed=61)
        path = str(tmp_path / "bundle.npz")
        bundle.save(path)
        engine = InferenceEngine(bundle)
        with ModelServer(engine, port=0, bundle_path=path) as server:
            health = json.loads(get(server.url + "/healthz"))
        assert health["mode"] == "packed"
        assert health["bundle"]["fingerprint"] == bundle.info[
            "config_fingerprint"]
        assert health["bundle"]["version"] == bundle.info["bundle_version"]
        assert health["bundle"]["pipeline"] == "SyntheticHD"
        assert health["bundle"]["path"] == path
        assert "selfcheck" not in health  # shallow probes stay cheap

    def test_float_engine_reports_float_mode(self, synthetic_bundle):
        engine = InferenceEngine(synthetic_bundle(seed=62, binary=False))
        assert not engine.use_packed
        with ModelServer(engine, port=0) as server:
            health = json.loads(get(server.url + "/healthz"))
        assert health["mode"] == "float"

    def test_deep_health_runs_selfcheck(self, synthetic_bundle):
        engine = InferenceEngine(synthetic_bundle(seed=63))
        with ModelServer(engine, port=0) as server:
            health = json.loads(get(server.url + "/healthz?deep=1"))
        assert health["selfcheck"] == "ok"
        assert health["status"] == "ok"

    def test_deep_health_failure_maps_to_500(self, synthetic_bundle):
        engine = BrokenSelfcheckEngine(
            InferenceEngine(synthetic_bundle(seed=64)))
        with ModelServer(engine, port=0) as server:
            # Shallow stays 200 (probe traffic must not run the check)…
            health = json.loads(get(server.url + "/healthz"))
            assert health["status"] == "ok"
            # …deep runs it and degrades the answer to 500.
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(server.url + "/healthz?deep=1")
            assert excinfo.value.code == 500
            payload = json.loads(excinfo.value.read())
            assert payload["status"] == "selfcheck_failed"
            assert "diverged" in payload["selfcheck"]


class TestChaosEndpoint:
    def test_slow_is_404_when_chaos_unarmed(self, synthetic_bundle):
        engine = InferenceEngine(synthetic_bundle(seed=65))
        with ModelServer(engine, port=0, chaos=False) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(server.url + "/slow", {"stall_s": 0.1})
            assert excinfo.value.code == 404

    def test_slow_stalls_healthz_when_armed(self, synthetic_bundle):
        engine = InferenceEngine(synthetic_bundle(seed=66))
        with ModelServer(engine, port=0, chaos=True) as server:
            out = post(server.url + "/slow", {"stall_s": 0.5})
            assert out["stalled_s"] == 0.5
            t0 = time.monotonic()
            health = json.loads(get(server.url + "/healthz"))
            assert time.monotonic() - t0 >= 0.3  # probe was wedged
            assert health["status"] == "ok"  # …but answers once unstuck

    def test_slow_validates_body(self, synthetic_bundle):
        engine = InferenceEngine(synthetic_bundle(seed=67))
        with ModelServer(engine, port=0, chaos=True) as server:
            for payload in ({}, {"stall_s": -1.0}, {"stall_s": 1e9}):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    post(server.url + "/slow", payload)
                assert excinfo.value.code == 400


class TestClientDisconnect:
    def test_mid_request_reset_is_counted_not_crashed(self,
                                                      synthetic_bundle):
        engine = InferenceEngine(synthetic_bundle(seed=68))
        with ModelServer(engine, port=0) as server:
            before = counter("serve.client_disconnect")
            sock = socket.create_connection(server.address, timeout=5)
            # Claim a large body, then slam the door with an RST while
            # the handler is blocked reading it.
            sock.sendall(b"POST /predict HTTP/1.1\r\n"
                         b"Host: test\r\n"
                         b"Content-Type: application/json\r\n"
                         b"Content-Length: 1000000\r\n\r\n")
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            struct.pack("ii", 1, 0))
            sock.close()
            deadline = time.monotonic() + 5.0
            while (counter("serve.client_disconnect") <= before
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            assert counter("serve.client_disconnect") > before
            # The server survived: normal requests still answer.
            out = post(server.url + "/predict",
                       {"features": [0.0] * 32})
            assert len(out["labels"]) == 1


class TestGracefulDrain:
    def test_drain_stops_accepting_and_is_idempotent(self,
                                                     synthetic_bundle):
        engine = InferenceEngine(synthetic_bundle(seed=69))
        server = ModelServer(engine, port=0).start()
        url = server.url
        post(url + "/predict", {"features": [0.0] * 32})
        before = counter("serve.drain")
        server.drain()
        server.drain()  # second call is a no-op
        assert server.draining
        assert counter("serve.drain") == before + 1
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            try:
                post(url + "/predict", {"features": [0.0] * 32},
                     timeout=1)
            except (urllib.error.URLError, ConnectionError, OSError):
                break
            time.sleep(0.05)
        else:
            pytest.fail("listener still accepting after drain")
        server.stop()  # safe after drain


class TestReloadUnderLoad:
    def test_concurrent_reload_never_tears_responses(self,
                                                     synthetic_bundle,
                                                     tmp_path):
        """Satellite acceptance: /predict hammered during good + torn
        reloads sees zero 5xx and every answer consistent with exactly
        one of the two engines (never a half-swapped state)."""
        bundle_a = synthetic_bundle(seed=71)
        bundle_b = synthetic_bundle(seed=72)
        path_a = str(tmp_path / "a.npz")
        path_b = str(tmp_path / "b.npz")
        torn = str(tmp_path / "torn.npz")
        bundle_a.save(path_a)
        bundle_b.save(path_b)
        with open(path_a, "rb") as handle:
            blob = handle.read()
        with open(torn, "wb") as handle:
            handle.write(blob[: len(blob) // 2])

        rng = np.random.default_rng(71)
        pool = rng.standard_normal((16, 32))
        fingerprints = {}
        expected = {}
        for bundle in (bundle_a, bundle_b):
            fp = bundle.info["config_fingerprint"]
            engine = InferenceEngine(bundle)
            fingerprints[fp] = bundle
            expected[fp] = [int(v) for v in
                            engine.predict_features(pool)]
        assert len(fingerprints) == 2

        server = ModelServer(InferenceEngine(bundle_a), port=0,
                             max_batch_size=8, max_latency_ms=1.0,
                             workers=2, bundle_path=path_a).start()
        stop = threading.Event()
        bad = []

        def hammer(cid):
            i = cid
            while not stop.is_set():
                idx = i % len(pool)
                i += 1
                try:
                    out = post(server.url + "/predict",
                               {"features": pool[idx].tolist()})
                except urllib.error.HTTPError as exc:
                    bad.append(("http", exc.code))
                    continue
                fp = out["model"]
                if fp not in expected:
                    bad.append(("unknown-model", fp))
                elif out["labels"] != [expected[fp][idx]]:
                    bad.append(("torn-labels", fp, idx, out["labels"]))

        threads = [threading.Thread(target=hammer, args=(cid,))
                   for cid in range(4)]
        try:
            for thread in threads:
                thread.start()
            reloads = rejected = 0
            deadline = time.monotonic() + 3.0
            cycle = [path_b, torn, path_a, torn]
            while time.monotonic() < deadline:
                target = cycle[reloads % len(cycle)]
                try:
                    post(server.url + "/reload", {"bundle": target})
                except urllib.error.HTTPError as exc:
                    assert exc.code == 409 and target == torn
                    rejected += 1
                reloads += 1
        finally:
            stop.set()
            for thread in threads:
                thread.join()
            server.stop()
        assert not bad, bad[:10]
        assert reloads >= 4 and rejected >= 1
        assert server.reloads >= 2  # the good swaps landed


class TestEndToEnd:
    def test_served_predictions_match_pipeline_bitexact(self):
        """Satellite acceptance: /predict == pipeline.predict exactly."""
        x_tr, y_tr, x_te, _ = make_dataset(num_classes=3, num_train=60,
                                           num_test=40, seed=31)
        pipeline = VanillaHD(num_classes=3, image_size=x_tr.shape[-1],
                             dim=256, seed=31)
        pipeline.fit(x_tr, y_tr, epochs=2)
        bundle = ModelBundle.from_pipeline(pipeline)
        engine = InferenceEngine(bundle)
        flat = np.asarray(x_te).reshape(len(x_te), -1)
        with ModelServer(engine, port=0, max_batch_size=16,
                         max_latency_ms=2.0, workers=2) as server:
            served = []
            for start in range(0, len(flat), 16):
                out = post(server.url + "/predict",
                           {"features": flat[start:start + 16].tolist()})
                served.extend(out["labels"])
        expected = [int(v) for v in pipeline.predict(x_te)]
        assert served == expected
