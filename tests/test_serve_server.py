"""HTTP model server: routing, error mapping, e2e pipeline parity."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.data import make_dataset
from repro.learn import VanillaHD
from repro.serve import InferenceEngine, ModelBundle, ModelServer


def post(url, payload, timeout=30):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def get(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


class GatedEngine:
    """Engine façade whose predict blocks until released (503/504 tests)."""

    def __init__(self, engine):
        self.engine = engine
        self.bundle = engine.bundle
        self.gate = threading.Event()

    def predict_features(self, features):
        self.gate.wait(10.0)
        return self.engine.predict_features(features)

    def describe(self):
        return self.engine.describe()


class TestRoutes:
    @pytest.fixture()
    def server(self, synthetic_bundle):
        engine = InferenceEngine(synthetic_bundle(seed=21))
        with ModelServer(engine, port=0, max_batch_size=16,
                         max_latency_ms=2.0, workers=2) as server:
            yield server

    def test_predict_matrix_and_flat(self, server):
        rng = np.random.default_rng(21)
        features = rng.standard_normal((12, 32))
        out = post(server.url + "/predict",
                   {"features": features.tolist()})
        expected = [int(v) for v in
                    server.engine.predict_features(features)]
        assert out["labels"] == expected
        assert out["model"] == server.engine.bundle.info[
            "config_fingerprint"]
        # A flat list is one sample.
        single = post(server.url + "/predict",
                      {"features": features[0].tolist()})
        assert single["labels"] == expected[:1]

    def test_healthz(self, server):
        health = json.loads(get(server.url + "/healthz"))
        assert health["status"] == "ok"
        assert health["engine"]["packed"]
        assert "depth" in health["batcher"]
        assert health["shedder"]["high"] == 128

    def test_metrics_exposition(self, server):
        rng = np.random.default_rng(22)
        post(server.url + "/predict",
             {"features": rng.standard_normal((4, 32)).tolist()})
        metrics = get(server.url + "/metrics").replace(".", "_")
        assert "serve_batcher_completed" in metrics
        assert "serve_batcher_batch_size" in metrics

    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(server.url + "/nope")
        assert excinfo.value.code == 404

    @pytest.mark.parametrize("payload", [
        {"features": "nope"},
        {"wrong_key": [[1.0]]},
        {"features": []},
        {"features": [[1.0, float("nan")] + [0.0] * 30]},
    ])
    def test_malformed_request_400(self, server, payload):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(server.url + "/predict", payload)
        assert excinfo.value.code == 400

    def test_invalid_json_400(self, server):
        request = urllib.request.Request(
            server.url + "/predict", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


class TestDegradationMapping:
    def test_overload_maps_to_503(self, synthetic_bundle):
        gated = GatedEngine(InferenceEngine(synthetic_bundle(seed=23)))
        server = ModelServer(gated, port=0, max_batch_size=4,
                             max_latency_ms=1.0, workers=1,
                             high_watermark=1, timeout_s=10.0)
        server.start()
        try:
            rng = np.random.default_rng(23)
            codes = []

            def fire():
                try:
                    post(server.url + "/predict",
                         {"features": rng.standard_normal(32).tolist()})
                    codes.append(200)
                except urllib.error.HTTPError as exc:
                    codes.append(exc.code)
                    if exc.code == 503:
                        assert exc.headers.get("Retry-After") == "1"

            threads = [threading.Thread(target=fire) for _ in range(6)]
            for t in threads:
                t.start()
            import time
            time.sleep(0.1)
            gated.gate.set()
            for t in threads:
                t.join()
            assert 503 in codes, f"no shed response in {codes}"
            health = json.loads(get(server.url + "/healthz"))
            assert health["shedder"]["shed"] >= 1
        finally:
            gated.gate.set()
            server.stop()

    def test_deadline_maps_to_504(self, synthetic_bundle):
        gated = GatedEngine(InferenceEngine(synthetic_bundle(seed=24)))
        server = ModelServer(gated, port=0, workers=1,
                             high_watermark=None, timeout_s=0.05)
        server.start()
        try:
            rng = np.random.default_rng(24)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(server.url + "/predict",
                     {"features": rng.standard_normal(32).tolist()})
            assert excinfo.value.code == 504
        finally:
            gated.gate.set()
            server.stop()


class TestLifecycle:
    def test_stop_without_start_is_safe(self, synthetic_bundle):
        server = ModelServer(InferenceEngine(synthetic_bundle()), port=0)
        server.stop()  # must not deadlock or raise

    def test_context_manager_releases_port(self, synthetic_bundle):
        engine = InferenceEngine(synthetic_bundle())
        with ModelServer(engine, port=0) as server:
            port = server.address[1]
            assert port > 0
        # Rebinding the same port proves the listener closed.
        with ModelServer(engine, port=port) as server2:
            assert server2.address[1] == port


class TestEndToEnd:
    def test_served_predictions_match_pipeline_bitexact(self):
        """Satellite acceptance: /predict == pipeline.predict exactly."""
        x_tr, y_tr, x_te, _ = make_dataset(num_classes=3, num_train=60,
                                           num_test=40, seed=31)
        pipeline = VanillaHD(num_classes=3, image_size=x_tr.shape[-1],
                             dim=256, seed=31)
        pipeline.fit(x_tr, y_tr, epochs=2)
        bundle = ModelBundle.from_pipeline(pipeline)
        engine = InferenceEngine(bundle)
        flat = np.asarray(x_te).reshape(len(x_te), -1)
        with ModelServer(engine, port=0, max_batch_size=16,
                         max_latency_ms=2.0, workers=2) as server:
            served = []
            for start in range(0, len(flat), 16):
                out = post(server.url + "/predict",
                           {"features": flat[start:start + 16].tolist()})
                served.extend(out["labels"])
        expected = [int(v) for v in pipeline.predict(x_te)]
        assert served == expected
